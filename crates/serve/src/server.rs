//! Line transports: stdio (tests, `vpd serve --stdio`) and TCP
//! (`vpd serve`), plus the thin [`call`] client used by `vpd call`.
//!
//! Both transports share one shape: read a request line, submit it to
//! the bounded [`WorkerPool`], and let the worker write the response
//! line. Every accepted line gets **exactly one** response line —
//! rejections included — so clients can count instead of guessing.
//!
//! Shutdown semantics (see DESIGN §12):
//!
//! * A `shutdown` request is acknowledged, then the pool **drains**:
//!   in-flight requests complete and their responses are written;
//!   queued requests are handed back and answered with
//!   `{"code":"draining"}`; the listener closes.
//! * End of input (stdio EOF / client disconnect) **finishes** instead:
//!   everything already accepted runs to completion. On TCP, a single
//!   client hanging up does not stop the server; only a `shutdown`
//!   request (or killing the process) does. The workspace forbids
//!   `unsafe`, so no signal handler is installed — drive shutdown
//!   through the protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::engine::Dispatcher;
use crate::pool::{SubmitError, WorkerPool};
use crate::proto::{ErrorCode, Request, Response, Work};
use vpd_core::Architecture;
use vpd_report::Json;

/// Service tuning knobs; the CLI flags map onto these 1:1.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads executing analyses (min 1).
    pub workers: usize,
    /// Bounded queue depth; a full queue rejects with `queue_full`.
    pub queue_depth: usize,
    /// Scenario-cache capacity in compiled entries (0 disables).
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 64,
            cache_capacity: 32,
        }
    }
}

/// One queued unit: the parsed request plus where its response goes.
struct Job<W: Write + Send + 'static> {
    request: Request,
    accepted_at: Instant,
    writer: Arc<Mutex<W>>,
}

fn write_line<W: Write>(writer: &Mutex<W>, response: &Response) {
    let mut w = writer.lock().expect("response writer poisoned");
    // A torn-down connection makes writes fail; that request's client
    // is gone, which is not the server's problem.
    let _ = writeln!(w, "{}", response.to_json());
    let _ = w.flush();
}

fn run_job<W: Write + Send + 'static>(dispatcher: &Dispatcher, job: Job<W>) {
    vpd_obs::incr("serve.requests");
    let _span = vpd_obs::span("serve.request_ns");
    let Job {
        request,
        accepted_at,
        writer,
    } = job;
    if let Work::TransientStream { arch, chunk } = request.work {
        // Streams own their deadline: the budget is re-checked between
        // chunks, so expiry mid-stream ends the stream with a typed
        // error record instead of a silent truncation.
        run_stream(
            dispatcher,
            request.id,
            arch,
            chunk,
            accepted_at,
            request.deadline_ms,
            &writer,
        );
        return;
    }
    if let Some(budget_ms) = request.deadline_ms {
        let waited = accepted_at.elapsed();
        // `>=` so a zero deadline deterministically expires (useful for
        // tests and as an explicit "reject unless immediate" probe).
        if waited.as_millis() >= u128::from(budget_ms) {
            vpd_obs::incr("serve.rejected.deadline");
            write_line(
                &writer,
                &Response::error(
                    request.id,
                    ErrorCode::DeadlineExceeded,
                    format!(
                        "request waited {} ms in queue, past its {budget_ms} ms deadline",
                        waited.as_millis()
                    ),
                ),
            );
            return;
        }
    }
    let response = match dispatcher.dispatch(&request.work) {
        Ok((result, cached)) => {
            vpd_obs::incr("serve.ok");
            Response::ok(request.id, request.work.kind(), cached, result)
        }
        Err((code, message)) => {
            vpd_obs::incr("serve.errors");
            Response::error(request.id, code, message)
        }
    };
    write_line(&writer, &response);
}

/// Drives one `transient_stream` request: chunk records with
/// `"done":false` and ascending `seq`, then a terminal record — the
/// summary on success, a typed error on deadline expiry or solver
/// failure. The deadline is checked before the compile/check-out and
/// again between chunks; an expired stream still returns its compiled
/// scenario to the cache (the run drops, the drop checks it back in).
fn run_stream<W: Write + Send + 'static>(
    dispatcher: &Dispatcher,
    id: Option<i64>,
    arch: Architecture,
    chunk: usize,
    accepted_at: Instant,
    deadline_ms: Option<u64>,
    writer: &Mutex<W>,
) {
    let deadline_expired = |emitted: usize| -> bool {
        let Some(budget_ms) = deadline_ms else {
            return false;
        };
        let waited = accepted_at.elapsed();
        if waited.as_millis() >= u128::from(budget_ms) {
            vpd_obs::incr("serve.rejected.deadline");
            write_line(
                writer,
                &Response::error(
                    id,
                    ErrorCode::DeadlineExceeded,
                    format!(
                        "stream deadline of {budget_ms} ms expired after {emitted} chunk records"
                    ),
                ),
            );
            return true;
        }
        false
    };
    if deadline_expired(0) {
        return;
    }
    let mut run = match dispatcher.begin_transient_stream(arch, chunk) {
        Ok(run) => run,
        Err((code, message)) => {
            vpd_obs::incr("serve.errors");
            write_line(writer, &Response::error(id, code, message));
            return;
        }
    };
    let cached = run.cached();
    let mut seq = 0usize;
    loop {
        match run.next_chunk() {
            Ok(Some(doc)) => {
                write_line(
                    writer,
                    &Response::stream(id, "transient_stream", cached, seq, false, doc),
                );
                seq += 1;
                if deadline_expired(seq) {
                    return;
                }
            }
            Ok(None) => break,
            Err((code, message)) => {
                vpd_obs::incr("serve.errors");
                write_line(writer, &Response::error(id, code, message));
                return;
            }
        }
    }
    vpd_obs::incr("serve.ok");
    write_line(
        writer,
        &Response::stream(id, "transient_stream", cached, seq, true, run.finish()),
    );
}

/// What ended a serve session.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ended {
    /// Input exhausted; all accepted work completed.
    Eof,
    /// A `shutdown` request drained the service.
    Shutdown,
}

/// Builds the worker pool around a shared dispatcher.
fn build_pool<W: Write + Send + 'static>(
    dispatcher: &Arc<Dispatcher>,
    cfg: &ServeConfig,
) -> WorkerPool<Job<W>> {
    let dispatcher = Arc::clone(dispatcher);
    WorkerPool::new(cfg.workers, cfg.queue_depth, move |job: Job<W>| {
        run_job(&dispatcher, job)
    })
}

/// Handles one request line; returns `true` when the line was a
/// `shutdown` request (the caller then drains).
fn handle_line<W: Write + Send + 'static>(
    line: &str,
    pool: &WorkerPool<Job<W>>,
    writer: &Arc<Mutex<W>>,
) -> bool {
    if line.trim().is_empty() {
        return false;
    }
    let request = match Request::parse_line(line) {
        Ok(req) => req,
        Err(e) => {
            vpd_obs::incr("serve.rejected.invalid");
            write_line(writer, &Response::error(e.id, e.code, e.message));
            return false;
        }
    };
    if request.work == Work::Shutdown {
        return true;
    }
    let job = Job {
        request,
        accepted_at: Instant::now(),
        writer: Arc::clone(writer),
    };
    if let Err(err) = pool.submit(job) {
        let (job, code, message) = match err {
            SubmitError::QueueFull(job) => {
                vpd_obs::incr("serve.rejected.queue_full");
                (job, ErrorCode::QueueFull, "queue is full; retry later")
            }
            SubmitError::Draining(job) => {
                vpd_obs::incr("serve.rejected.draining");
                (job, ErrorCode::Draining, "server is draining")
            }
        };
        write_line(writer, &Response::error(job.request.id, code, message));
    }
    false
}

/// Acknowledges a shutdown request and drains the pool, answering every
/// pulled-back queued job with a typed `draining` rejection.
fn drain_with_rejections<W: Write + Send + 'static>(
    id: Option<i64>,
    pool: &WorkerPool<Job<W>>,
    writer: &Arc<Mutex<W>>,
) {
    write_line(
        writer,
        &Response::ok(
            id,
            "shutdown",
            false,
            vpd_report::Json::obj([("command", vpd_report::Json::from("shutdown"))]),
        ),
    );
    for job in pool.drain() {
        vpd_obs::incr("serve.rejected.draining");
        write_line(
            &job.writer,
            &Response::error(
                job.request.id,
                ErrorCode::Draining,
                "server is draining for shutdown",
            ),
        );
    }
}

/// Serves one NDJSON session over arbitrary line I/O — the stdio mode,
/// and the deterministic harness the shutdown tests drive.
///
/// Returns the writer (all workers joined, so it is exclusively owned
/// again) plus how the session ended.
///
/// # Errors
///
/// Propagates read errors from `reader`.
pub fn serve_lines<R, W>(reader: R, writer: W, cfg: &ServeConfig) -> std::io::Result<(W, Ended)>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let dispatcher = Arc::new(Dispatcher::new(cfg.cache_capacity));
    let writer = Arc::new(Mutex::new(writer));
    let pool = build_pool(&dispatcher, cfg);
    let mut ended = Ended::Eof;
    for line in reader.lines() {
        let line = line?;
        if handle_line(&line, &pool, &writer) {
            let id = Request::parse_line(&line).ok().and_then(|r| r.id);
            drain_with_rejections(id, &pool, &writer);
            ended = Ended::Shutdown;
            break;
        }
    }
    if ended == Ended::Eof {
        pool.finish();
    }
    let writer = Arc::into_inner(writer)
        .expect("workers joined; no writer clones remain")
        .into_inner()
        .expect("response writer poisoned");
    Ok((writer, ended))
}

/// A bound TCP service, not yet accepting.
pub struct Server {
    listener: TcpListener,
    cfg: ServeConfig,
}

struct TcpShared {
    pool: WorkerPool<Job<TcpStream>>,
    shutting_down: AtomicBool,
    conns: Mutex<Vec<TcpStream>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7171`, or port 0 for an ephemeral
    /// port — see [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, cfg: ServeConfig) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            cfg,
        })
    }

    /// The actually-bound address.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves connections until a `shutdown` request
    /// arrives, then drains and returns.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop failures.
    pub fn run(self) -> std::io::Result<()> {
        let dispatcher = Arc::new(Dispatcher::new(self.cfg.cache_capacity));
        let shared = Arc::new(TcpShared {
            pool: build_pool(&dispatcher, &self.cfg),
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let local = self.listener.local_addr()?;
        let mut handles = Vec::new();
        for stream in self.listener.incoming() {
            if shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            // One-line requests and responses are far smaller than a
            // segment; Nagle + delayed ACK would add ~40 ms per turn.
            let _ = stream.set_nodelay(true);
            vpd_obs::incr("serve.connections");
            let shared = Arc::clone(&shared);
            if let Ok(track) = stream.try_clone() {
                shared
                    .conns
                    .lock()
                    .expect("connection list poisoned")
                    .push(track);
            }
            handles.push(std::thread::spawn(move || {
                serve_connection(stream, &shared, local);
            }));
        }
        for h in handles {
            let _ = h.join();
        }
        Ok(())
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<TcpShared>, local: std::net::SocketAddr) {
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::parse_line(&line) {
            Ok(req) => req,
            Err(e) => {
                vpd_obs::incr("serve.rejected.invalid");
                write_line(&writer, &Response::error(e.id, e.code, e.message));
                continue;
            }
        };
        if request.work == Work::Shutdown {
            if shared.shutting_down.swap(true, Ordering::SeqCst) {
                // A concurrent shutdown is already draining; just ack.
                write_line(
                    &writer,
                    &Response::error(request.id, ErrorCode::Draining, "server is draining"),
                );
                break;
            }
            drain_with_rejections(request.id, &shared.pool, &writer);
            // Unblock every connection reader, then the accept loop.
            for conn in shared
                .conns
                .lock()
                .expect("connection list poisoned")
                .iter()
            {
                let _ = conn.shutdown(std::net::Shutdown::Both);
            }
            let _ = TcpStream::connect(local);
            break;
        }
        let job = Job {
            request,
            accepted_at: Instant::now(),
            writer: Arc::clone(&writer),
        };
        if let Err(err) = shared.pool.submit(job) {
            let (job, code, message) = match err {
                SubmitError::QueueFull(job) => {
                    vpd_obs::incr("serve.rejected.queue_full");
                    (job, ErrorCode::QueueFull, "queue is full; retry later")
                }
                SubmitError::Draining(job) => {
                    vpd_obs::incr("serve.rejected.draining");
                    (job, ErrorCode::Draining, "server is draining")
                }
            };
            write_line(&writer, &Response::error(job.request.id, code, message));
        }
    }
}

/// Sends request lines over one connection and reads one **terminal**
/// response line per request — the `vpd call` client.
///
/// When `shutdown` is true a `{"kind":"shutdown"}` request is appended
/// after the payload lines. Responses arrive in completion order; match
/// them up by `id`. Streaming requests (`transient_stream`) emit chunk
/// records carrying `"done":false` before their terminal record — the
/// chunks are collected into the returned lines but do not count toward
/// the per-request tally, so a stream of any length still satisfies
/// exactly one expected response.
///
/// # Errors
///
/// Propagates connection and I/O failures. A clean server-side close
/// before all terminal responses arrive yields `UnexpectedEof`.
pub fn call(addr: &str, lines: &[String], shutdown: bool) -> std::io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut expected = 0usize;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        writeln!(writer, "{line}")?;
        expected += 1;
    }
    if shutdown {
        writer.write_all(b"{\"kind\":\"shutdown\",\"id\":-1}\n")?;
        expected += 1;
    }
    writer.flush()?;
    let mut responses = Vec::with_capacity(expected);
    let mut terminal = 0usize;
    let mut buf = String::new();
    while terminal < expected {
        buf.clear();
        let n = reader.read_line(&mut buf)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("server closed after {terminal} of {expected} responses"),
            ));
        }
        let text = buf.trim_end().to_owned();
        // A chunk record (`"done":false`) belongs to a still-open
        // stream; anything else — plain results, errors, and stream
        // summaries (`"done":true`) — terminates its request.
        let is_chunk = Json::parse(&text)
            .ok()
            .is_some_and(|j| matches!(j.get("done"), Some(Json::Bool(false))));
        if !is_chunk {
            terminal += 1;
        }
        responses.push(text);
    }
    Ok(responses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn serve_script(lines: &[&str], cfg: &ServeConfig) -> (Vec<String>, Ended) {
        let input = lines.join("\n");
        let (out, ended) =
            serve_lines(Cursor::new(input), Vec::<u8>::new(), cfg).expect("serve session");
        let text = String::from_utf8(out).expect("utf8 output");
        (text.lines().map(str::to_owned).collect(), ended)
    }

    #[test]
    fn stdio_session_answers_every_line_and_finishes_on_eof() {
        let cfg = ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        };
        let (out, ended) = serve_script(
            &[
                r#"{"id":1,"kind":"ping"}"#,
                "",
                r#"{"id":2,"kind":"sharing","params":{"modules":12}}"#,
                "not json",
                r#"{"id":4,"kind":"stats"}"#,
            ],
            &cfg,
        );
        assert_eq!(ended, Ended::Eof);
        assert_eq!(out.len(), 4, "one response per non-empty line: {out:?}");
        // The reader thread answers parse errors inline while the
        // worker writes results, so only membership is deterministic —
        // clients match responses by id, and so does this test.
        let ping = out.iter().find(|l| l.contains(r#""id":1"#)).unwrap();
        assert!(ping.contains(r#""ok":true"#) && ping.contains(r#""command":"ping""#));
        let sharing = out.iter().find(|l| l.contains(r#""id":2"#)).unwrap();
        assert!(sharing.contains(r#""command":"sharing""#), "{sharing}");
        assert!(out.iter().any(|l| l.contains(r#""code":"parse""#)));
        let stats = out.iter().find(|l| l.contains(r#""id":4"#)).unwrap();
        assert!(stats.contains(r#""command":"stats""#));
    }

    #[test]
    fn shutdown_request_acks_then_rejects_queued_work() {
        // Single worker and a script whose first request occupies it
        // long enough for the rest to queue is inherently racy — so
        // drive the deterministic half here (shutdown first, work
        // after) and leave the in-flight half to the pool tests.
        let cfg = ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        };
        let (out, ended) = serve_script(
            &[
                r#"{"id":10,"kind":"shutdown"}"#,
                r#"{"id":11,"kind":"ping"}"#,
                r#"{"id":12,"kind":"ping"}"#,
            ],
            &cfg,
        );
        assert_eq!(ended, Ended::Shutdown);
        // The ack is written; the lines after shutdown are never read.
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains(r#""id":10"#) && out[0].contains(r#""kind":"shutdown""#));
    }

    #[test]
    fn transient_stream_emits_ordered_chunks_then_a_summary() {
        let cfg = ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        };
        let (out, ended) = serve_script(
            &[r#"{"id":7,"kind":"transient_stream","params":{"arch":"a2","chunk":2000}}"#],
            &cfg,
        );
        assert_eq!(ended, Ended::Eof);
        // 60 µs at 10 ns is 6001 samples: chunks of 2000, 2000, 2000,
        // and 1, then the summary record.
        assert_eq!(out.len(), 5, "{}", out.len());
        for (i, line) in out[..4].iter().enumerate() {
            assert!(line.contains(&format!(r#""seq":{i}"#)), "{line}");
            assert!(line.contains(r#""done":false"#), "{line}");
            assert!(line.contains(r#""id":7"#), "{line}");
        }
        assert!(out[4].contains(r#""done":true"#), "{}", out[4]);
        assert!(out[4].contains(r#""seq":4"#), "{}", out[4]);
        assert!(out[4].contains(r#""command":"transient_stream""#));
        assert!(out[4].contains(r#""samples":6001"#) && out[4].contains(r#""chunks":4"#));
    }

    #[test]
    fn expired_stream_deadline_yields_a_typed_error_record() {
        let cfg = ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        };
        // A zero budget has always expired by the stream's first
        // deadline check: the stream terminates with one typed error
        // record and zero chunk records.
        let (out, _) = serve_script(
            &[r#"{"id":8,"kind":"transient_stream","params":{"arch":"a0"},"deadline_ms":0}"#],
            &cfg,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].contains(r#""code":"deadline_exceeded""#) && out[0].contains("0 chunk records"),
            "{}",
            out[0]
        );
    }

    #[test]
    fn deadline_zero_rejects_at_dequeue() {
        let cfg = ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        };
        // A zero deadline has always expired by dequeue time.
        let (out, _) = serve_script(&[r#"{"id":5,"kind":"ping","deadline_ms":0}"#], &cfg);
        assert_eq!(out.len(), 1);
        assert!(
            out[0].contains(r#""code":"deadline_exceeded""#),
            "{}",
            out[0]
        );
    }
}
