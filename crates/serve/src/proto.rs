//! The wire protocol: one JSON document per line in both directions.
//!
//! A request names an analysis `kind` plus a `params` object, and may
//! carry a client-chosen `id` (echoed back verbatim so responses can be
//! matched over a pipelined connection) and a `deadline_ms` budget.
//! Responses are either `{"ok":true,...}` with the analysis result or
//! `{"ok":false,"error":{...}}` with a stable machine-readable code,
//! and every response carries the server's [`PROTOCOL_VERSION`] so
//! clients can fail fast across incompatible upgrades.
//!
//! The `result` field of a successful response is byte-identical to the
//! JSON document the one-shot `vpd --format json <command>` invocation
//! prints for the same parameters — the service is a resident,
//! plan-caching front end to the exact same engines.
//!
//! # The field-spec table
//!
//! Every request kind is described **declaratively** by a [`KindSpec`]:
//! one row per parameter with its wire name, type, default, and range.
//! The same table drives
//!
//! * parsing and validation (one generic walk instead of per-kind
//!   accessor chains),
//! * unknown-parameter rejection (a misspelled name fails loudly,
//!   listing the spec's accepted names),
//! * the machine-readable catalog served by the `kinds` request
//!   ([`kind_catalog`]), and
//! * the CLI defaults (via [`wire_default_f64`] and friends), so serve
//!   defaults and `vpd` flag defaults cannot drift.

use std::sync::OnceLock;

use vpd_converters::VrTopologyKind;
use vpd_core::{Architecture, VrPlacement};
use vpd_report::Json;
use vpd_scenario::{builtin_doc, ScenarioDoc, BUILTIN_NAMES};

/// Version tag carried by every response. Version 1 is the original
/// (unversioned) PR 5 protocol; version 2 added the `version` field
/// itself, the `kinds` catalog request, the `shed` reject code, and the
/// batched `sharing_sweep` dispatch (which never changes result bits).
pub const PROTOCOL_VERSION: i64 = 2;

/// Ceiling on one request's coalesced block width, bounding the
/// block-solve scratch a single line can demand.
pub const MAX_SWEEP_SETPOINTS: usize = 256;
/// Ceiling on one `transient_stream` chunk's samples, bounding a single
/// record's size.
pub const MAX_STREAM_CHUNK: usize = 4096;
/// Ceiling on an inline `.vpd` scenario document's length in bytes,
/// bounding what one request line can make the parser chew.
pub const MAX_SCENARIO_DOC: usize = 64 * 1024;

/// Machine-readable failure class carried by error responses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorCode {
    /// The request line was not valid JSON.
    Parse,
    /// The request was well-formed JSON but not a valid request.
    BadRequest,
    /// The bounded queue was full; retry later (backpressure).
    QueueFull,
    /// Admission control shed the request: its deadline cannot be met
    /// at the current queue depth (retry with backoff or a larger
    /// budget).
    Shed,
    /// The server is draining for shutdown and refuses new work.
    Draining,
    /// The request waited in the queue past its `deadline_ms`.
    DeadlineExceeded,
    /// The analysis engine itself failed (infeasible configuration…).
    Engine,
    /// A recognized request the service deliberately does not serve, or
    /// a kind this protocol version does not know (the message lists
    /// the supported kinds).
    Unsupported,
}

impl ErrorCode {
    /// The stable wire spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Parse => "parse",
            Self::BadRequest => "bad_request",
            Self::QueueFull => "queue_full",
            Self::Shed => "shed",
            Self::Draining => "draining",
            Self::DeadlineExceeded => "deadline_exceeded",
            Self::Engine => "engine",
            Self::Unsupported => "unsupported",
        }
    }
}

/// A rejected request line: the echoed id (when one could be read) plus
/// the typed reason.
#[derive(Clone, Debug)]
pub struct RequestError {
    /// Client id, echoed when the document yielded one.
    pub id: Option<i64>,
    /// Failure class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// One unit of analysis work, fully parsed and defaulted.
///
/// Parameter names and defaults deliberately mirror the CLI flags, so a
/// request's `result` matches the one-shot invocation bit for bit.
#[derive(Clone, Debug, PartialEq)]
pub enum Work {
    /// Liveness probe; returns immediately.
    Ping,
    /// Server statistics: cache counters plus an obs metrics snapshot.
    Stats,
    /// The machine-readable request catalog generated from the
    /// field-spec table (kinds, params, types, defaults, ranges).
    Kinds,
    /// Graceful shutdown: finish in-flight work, reject queued work.
    Shutdown,
    /// Loss breakdown for one architecture × topology point.
    Analyze {
        /// Delivery architecture.
        arch: Architecture,
        /// POL-stage topology.
        topology: VrTopologyKind,
        /// Die power draw in watts.
        power_w: f64,
        /// Current density in A/mm².
        density: f64,
    },
    /// Die-grid current sharing for a placement pattern.
    Sharing {
        /// Regulator placement pattern.
        placement: VrPlacement,
        /// Module count.
        modules: usize,
    },
    /// Rail-setpoint sweep over a sharing grid, coalesced into one
    /// factorization plus a multi-RHS block solve (direct-Cholesky
    /// plan mode). Queued `sharing_sweep` requests sharing the same
    /// `(placement, modules)` plan are additionally batched into one
    /// block solve by the dispatcher — bitwise-identical to dispatching
    /// them one at a time.
    SharingSweep {
        /// Regulator placement pattern.
        placement: VrPlacement,
        /// Module count.
        modules: usize,
        /// Swept regulator setpoints, volts (all modules move together).
        setpoints: Vec<f64>,
    },
    /// Transient droop response to the paper's load step.
    Droop {
        /// Delivery architecture.
        arch: Architecture,
    },
    /// Streaming transient run: incremental waveform chunks
    /// (`done:false`) followed by one summary record (`done:true`)
    /// whose droop report is bitwise-identical to the one-shot `droop`
    /// result for the same architecture.
    TransientStream {
        /// Delivery architecture.
        arch: Architecture,
        /// Samples per emitted chunk.
        chunk: usize,
    },
    /// Monte-Carlo tolerance sweep.
    Mc {
        /// Delivery architecture.
        arch: Architecture,
        /// POL-stage topology.
        topology: VrTopologyKind,
        /// Sample count.
        samples: usize,
        /// RNG seed.
        seed: u64,
        /// Worker threads (0 = auto); never changes the result bits.
        threads: usize,
    },
    /// PDN impedance profile over a log frequency sweep.
    Impedance {
        /// Delivery architecture.
        arch: Architecture,
        /// Sweep start, Hz.
        fmin_hz: f64,
        /// Sweep end, Hz.
        fmax_hz: f64,
        /// Number of points.
        points: usize,
        /// Emit every swept point instead of the summary.
        profile: bool,
    },
    /// Fault-injection sweep (N-1 or random-k scenarios).
    Faults {
        /// Delivery architecture.
        arch: Architecture,
        /// POL-stage topology.
        topology: VrTopologyKind,
        /// `None` = N-1 contingency; `Some(k)` = random k-fault draws.
        random_k: Option<usize>,
        /// Scenario count for random-k mode.
        count: usize,
        /// RNG seed for random-k mode.
        seed: u64,
    },
    /// Faulted impedance profiles: every fault scenario restamped onto
    /// one compiled AC plan, one degraded |Z(f)| profile per scenario.
    FaultImpedance {
        /// Delivery architecture.
        arch: Architecture,
        /// `None` = N-1 contingency; `Some(k)` = random k-fault draws.
        random_k: Option<usize>,
        /// Scenario count for random-k mode.
        count: usize,
        /// RNG seed for random-k mode.
        seed: u64,
        /// Sweep start, Hz.
        fmin_hz: f64,
        /// Sweep end, Hz.
        fmax_hz: f64,
        /// Number of swept points.
        points: usize,
    },
    /// Mid-run VR-failure transients: the regulator bank dies at a grid
    /// of failure times while the paper's load step plays out.
    FaultTransient {
        /// Delivery architecture.
        arch: Architecture,
        /// Number of failure times in the grid (plus the healthy
        /// baseline).
        count: usize,
    },
    /// Electro-thermal cascade survival envelope over the architecture's
    /// full N-1 contingency set.
    Survival {
        /// Delivery architecture.
        arch: Architecture,
        /// POL-stage topology.
        topology: VrTopologyKind,
    },
    /// A declarative `.vpd` scenario document, compiled and analyzed.
    /// The document is fully parsed and validated at admission, so a
    /// malformed document is rejected with its line/column diagnostic
    /// before it can occupy a queue slot. Compiled sessions are cached
    /// under the document's spelling-invariant content hash.
    Scenario {
        /// The validated document (boxed: it dwarfs the other variants).
        doc: Box<ScenarioDoc>,
    },
}

impl Work {
    /// The wire `kind` tag.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Ping => "ping",
            Self::Stats => "stats",
            Self::Kinds => "kinds",
            Self::Shutdown => "shutdown",
            Self::Analyze { .. } => "analyze",
            Self::Sharing { .. } => "sharing",
            Self::SharingSweep { .. } => "sharing_sweep",
            Self::Droop { .. } => "droop",
            Self::TransientStream { .. } => "transient_stream",
            Self::Mc { .. } => "mc",
            Self::Impedance { .. } => "impedance",
            Self::Faults { .. } => "faults",
            Self::FaultImpedance { .. } => "fault_impedance",
            Self::FaultTransient { .. } => "fault_transient",
            Self::Survival { .. } => "survival",
            Self::Scenario { .. } => "scenario",
        }
    }
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: Option<i64>,
    /// Queue-wait budget in milliseconds (checked at admission and
    /// again at dequeue).
    pub deadline_ms: Option<u64>,
    /// The analysis to run.
    pub work: Work,
}

// The architecture/topology/placement wire spellings live in
// `vpd_core::wire` (shared with the CLI and the scenario compiler);
// re-exported here so existing `vpd_serve::proto::parse_architecture`
// callers keep working and the wire format cannot drift.
pub use vpd_core::wire::{
    architecture_wire_name, parse_architecture, parse_placement, parse_topology,
    placement_wire_name, topology_wire_name,
};

// ---------------------------------------------------------------------
// The declarative field-spec table
// ---------------------------------------------------------------------

/// Wire type (plus range validator) of one request parameter.
#[derive(Clone, Copy, Debug)]
pub enum FieldType {
    /// A finite JSON number; `positive` additionally requires `> 0`.
    F64 {
        /// Reject zero and negative values.
        positive: bool,
    },
    /// A non-negative integer within `[min, max]`.
    Count {
        /// Inclusive lower bound (violations say "must be at least").
        min: usize,
        /// Inclusive upper bound (violations say "is capped at").
        max: usize,
    },
    /// A non-negative 64-bit RNG seed.
    Seed,
    /// A JSON boolean.
    Flag,
    /// An architecture tag (`a0|a1|a2|a3-12|a3-6`).
    Arch,
    /// A topology tag (`dpmih|dsch|3lhd`).
    Topology,
    /// A placement tag (`periphery|below`).
    Placement,
    /// A non-empty array of finite numbers, at most `max_len` long.
    F64List {
        /// Inclusive length ceiling.
        max_len: usize,
    },
    /// An *optional* positive integer (absent ≠ zero; e.g. `random_k`).
    OptionalCount,
    /// A non-empty string of at most `max_len` bytes (e.g. an inline
    /// scenario document). Always optional on the wire.
    Text {
        /// Inclusive byte-length ceiling.
        max_len: usize,
    },
}

impl FieldType {
    /// The catalog spelling of the type.
    #[must_use]
    pub fn type_name(self) -> &'static str {
        match self {
            Self::F64 { .. } => "number",
            Self::Count { .. } => "count",
            Self::Seed => "seed",
            Self::Flag => "flag",
            Self::Arch => "architecture",
            Self::Topology => "topology",
            Self::Placement => "placement",
            Self::F64List { .. } => "number[]",
            Self::OptionalCount => "count?",
            Self::Text { .. } => "text",
        }
    }
}

/// Default of one request parameter. [`FieldDefault::Required`] makes
/// the parameter mandatory; [`FieldDefault::Absent`] makes it optional
/// with no substituted value (only [`FieldType::OptionalCount`]).
#[derive(Clone, Copy, Debug)]
pub enum FieldDefault {
    /// The request must carry the parameter.
    Required,
    /// Optional with no default value.
    Absent,
    /// Defaulted number.
    F64(f64),
    /// Defaulted count.
    Count(usize),
    /// Defaulted seed.
    Seed(u64),
    /// Defaulted flag.
    Flag(bool),
    /// Defaulted topology.
    Topology(VrTopologyKind),
    /// Defaulted placement.
    Placement(VrPlacement),
}

/// One row of the table: a parameter's wire name, type, default, and
/// one-line doc.
#[derive(Clone, Debug)]
pub struct FieldSpec {
    /// Wire name inside `params`.
    pub name: &'static str,
    /// Type and range validator.
    pub ty: FieldType,
    /// Default (or required-ness).
    pub default: FieldDefault,
    /// One-line description for the catalog.
    pub doc: &'static str,
}

/// The declarative description of one request kind.
#[derive(Clone, Debug)]
pub struct KindSpec {
    /// The wire `kind` tag.
    pub kind: &'static str,
    /// One-line description for the catalog.
    pub doc: &'static str,
    /// Parameter rows; requests carrying names outside this list are
    /// rejected.
    pub fields: Vec<FieldSpec>,
}

fn field(name: &'static str, ty: FieldType, default: FieldDefault, doc: &'static str) -> FieldSpec {
    FieldSpec {
        name,
        ty,
        default,
        doc,
    }
}

/// The table itself. Built once; defaults that mirror engine settings
/// (the impedance sweep grid) are read from the engine defaults so the
/// three consumers — serve parsing, the CLI, and the catalog — cannot
/// drift from each other or from the one-shot code path.
#[must_use]
pub fn kind_specs() -> &'static [KindSpec] {
    static SPECS: OnceLock<Vec<KindSpec>> = OnceLock::new();
    SPECS.get_or_init(|| {
        let z = vpd_core::ImpedanceSweepSettings::default();
        let arch = || {
            field(
                "arch",
                FieldType::Arch,
                FieldDefault::Required,
                "delivery architecture (a0|a1|a2|a3-12|a3-6)",
            )
        };
        let topology = || {
            field(
                "topology",
                FieldType::Topology,
                FieldDefault::Topology(VrTopologyKind::Dsch),
                "POL-stage topology (dpmih|dsch|3lhd)",
            )
        };
        let placement = || {
            field(
                "placement",
                FieldType::Placement,
                FieldDefault::Placement(VrPlacement::Periphery),
                "regulator placement pattern (periphery|below)",
            )
        };
        let modules = || {
            field(
                "modules",
                FieldType::Count {
                    min: 1,
                    max: 10_000,
                },
                FieldDefault::Count(48),
                "regulator module count",
            )
        };
        vec![
            KindSpec {
                kind: "ping",
                doc: "liveness probe; returns immediately",
                fields: Vec::new(),
            },
            KindSpec {
                kind: "stats",
                doc: "server statistics: cache, batching, and shed counters",
                fields: Vec::new(),
            },
            KindSpec {
                kind: "kinds",
                doc: "this catalog: every kind with its params, types, defaults, and ranges",
                fields: Vec::new(),
            },
            KindSpec {
                kind: "shutdown",
                doc: "graceful shutdown: finish in-flight work, reject queued work",
                fields: Vec::new(),
            },
            KindSpec {
                kind: "analyze",
                doc: "loss breakdown for one architecture x topology point",
                fields: vec![
                    arch(),
                    topology(),
                    field(
                        "power_w",
                        FieldType::F64 { positive: true },
                        FieldDefault::F64(1000.0),
                        "die power draw in watts",
                    ),
                    field(
                        "density",
                        FieldType::F64 { positive: true },
                        FieldDefault::F64(2.0),
                        "current density in A/mm^2",
                    ),
                ],
            },
            KindSpec {
                kind: "sharing",
                doc: "die-grid current sharing for a placement pattern",
                fields: vec![placement(), modules()],
            },
            KindSpec {
                kind: "sharing_sweep",
                doc: "rail-setpoint sweep coalesced into one multi-RHS block solve; \
                      queued requests sharing a plan batch together",
                fields: vec![
                    placement(),
                    modules(),
                    field(
                        "setpoints",
                        FieldType::F64List {
                            max_len: MAX_SWEEP_SETPOINTS,
                        },
                        FieldDefault::Required,
                        "swept regulator setpoints in volts",
                    ),
                ],
            },
            KindSpec {
                kind: "droop",
                doc: "transient droop response to the paper's load step",
                fields: vec![arch()],
            },
            KindSpec {
                kind: "transient_stream",
                doc: "streaming transient run: waveform chunks, then a summary record",
                fields: vec![
                    arch(),
                    field(
                        "chunk",
                        FieldType::Count {
                            min: 1,
                            max: MAX_STREAM_CHUNK,
                        },
                        FieldDefault::Count(1024),
                        "samples per emitted chunk",
                    ),
                ],
            },
            KindSpec {
                kind: "mc",
                doc: "Monte-Carlo tolerance sweep",
                fields: vec![
                    arch(),
                    topology(),
                    field(
                        "samples",
                        FieldType::Count {
                            min: 1,
                            max: 1_000_000,
                        },
                        FieldDefault::Count(200),
                        "sample count",
                    ),
                    field(
                        "seed",
                        FieldType::Seed,
                        FieldDefault::Seed(0x5eed),
                        "RNG seed",
                    ),
                    field(
                        "threads",
                        FieldType::Count {
                            min: 0,
                            max: 10_000,
                        },
                        FieldDefault::Count(0),
                        "worker threads (0 = auto); never changes result bits",
                    ),
                ],
            },
            KindSpec {
                kind: "impedance",
                doc: "PDN impedance profile over a log frequency sweep",
                fields: vec![
                    arch(),
                    field(
                        "fmin_hz",
                        FieldType::F64 { positive: true },
                        FieldDefault::F64(z.fmin.value()),
                        "sweep start in Hz",
                    ),
                    field(
                        "fmax_hz",
                        FieldType::F64 { positive: true },
                        FieldDefault::F64(z.fmax.value()),
                        "sweep end in Hz",
                    ),
                    field(
                        "points",
                        FieldType::Count {
                            min: 1,
                            max: 100_000,
                        },
                        FieldDefault::Count(z.points),
                        "number of swept points",
                    ),
                    field(
                        "profile",
                        FieldType::Flag,
                        FieldDefault::Flag(false),
                        "emit every swept point instead of the summary",
                    ),
                ],
            },
            KindSpec {
                kind: "faults",
                doc: "fault-injection sweep (N-1 or random-k scenarios)",
                fields: vec![
                    arch(),
                    topology(),
                    field(
                        "random_k",
                        FieldType::OptionalCount,
                        FieldDefault::Absent,
                        "absent = N-1 contingency; k = random k-fault draws",
                    ),
                    field(
                        "count",
                        FieldType::Count {
                            min: 1,
                            max: 1_000_000,
                        },
                        FieldDefault::Count(32),
                        "scenario count for random-k mode",
                    ),
                    field(
                        "seed",
                        FieldType::Seed,
                        FieldDefault::Seed(64023),
                        "RNG seed for random-k mode",
                    ),
                ],
            },
            KindSpec {
                kind: "fault_impedance",
                doc: "faulted impedance profiles: one degraded |Z(f)| per fault scenario, \
                      restamped onto one compiled AC plan",
                fields: vec![
                    arch(),
                    field(
                        "random_k",
                        FieldType::OptionalCount,
                        FieldDefault::Absent,
                        "absent = N-1 contingency; k = random k-fault draws",
                    ),
                    field(
                        "count",
                        FieldType::Count {
                            min: 1,
                            max: 1_000_000,
                        },
                        FieldDefault::Count(32),
                        "scenario count for random-k mode",
                    ),
                    field(
                        "seed",
                        FieldType::Seed,
                        FieldDefault::Seed(64023),
                        "RNG seed for random-k mode",
                    ),
                    field(
                        "fmin_hz",
                        FieldType::F64 { positive: true },
                        FieldDefault::F64(z.fmin.value()),
                        "sweep start in Hz",
                    ),
                    field(
                        "fmax_hz",
                        FieldType::F64 { positive: true },
                        FieldDefault::F64(z.fmax.value()),
                        "sweep end in Hz",
                    ),
                    field(
                        "points",
                        FieldType::Count {
                            min: 2,
                            max: 100_000,
                        },
                        FieldDefault::Count(z.points),
                        "number of swept points",
                    ),
                ],
            },
            KindSpec {
                kind: "fault_transient",
                doc: "mid-run VR-failure transients: the bank dies at a grid of failure \
                      times while the paper's load step plays out",
                fields: vec![
                    arch(),
                    field(
                        "count",
                        FieldType::Count { min: 1, max: 64 },
                        FieldDefault::Count(4),
                        "failure times in the grid (plus the healthy baseline)",
                    ),
                ],
            },
            KindSpec {
                kind: "survival",
                doc: "electro-thermal cascade survival envelope over the N-1 contingency set",
                fields: vec![arch(), topology()],
            },
            KindSpec {
                kind: "scenario",
                doc: "compile and analyze a declarative .vpd scenario document \
                      (exactly one of inline `doc` or builtin `name`)",
                fields: vec![
                    field(
                        "doc",
                        FieldType::Text {
                            max_len: MAX_SCENARIO_DOC,
                        },
                        FieldDefault::Absent,
                        "inline .vpd scenario document text",
                    ),
                    field(
                        "name",
                        FieldType::Text { max_len: 64 },
                        FieldDefault::Absent,
                        "builtin scenario name (a0|a1|a2|a3-12|a3-6)",
                    ),
                ],
            },
        ]
    })
}

/// Looks a kind's spec up in the table.
#[must_use]
pub fn kind_spec(kind: &str) -> Option<&'static KindSpec> {
    kind_specs().iter().find(|s| s.kind == kind)
}

/// Every supported kind tag, in table order.
#[must_use]
pub fn supported_kinds() -> Vec<&'static str> {
    kind_specs().iter().map(|s| s.kind).collect()
}

/// The machine-readable catalog generated from the table: one entry per
/// kind with its params, types, defaults, and ranges. Served by the
/// `kinds` request and printed by documentation tooling.
#[must_use]
pub fn kind_catalog() -> Json {
    let kinds: Vec<Json> = kind_specs()
        .iter()
        .map(|spec| {
            let params: Vec<Json> =
                spec.fields
                    .iter()
                    .map(|f| {
                        let mut pairs = vec![
                            ("name", Json::from(f.name)),
                            ("type", Json::from(f.ty.type_name())),
                            (
                                "required",
                                Json::from(matches!(f.default, FieldDefault::Required)),
                            ),
                        ];
                        match f.default {
                            FieldDefault::Required | FieldDefault::Absent => {}
                            FieldDefault::F64(v) => pairs.push(("default", Json::from(v))),
                            FieldDefault::Count(v) => pairs.push(("default", Json::from(v))),
                            FieldDefault::Seed(v) => pairs
                                .push(("default", Json::Int(i64::try_from(v).unwrap_or(i64::MAX)))),
                            FieldDefault::Flag(v) => pairs.push(("default", Json::from(v))),
                            FieldDefault::Topology(t) => {
                                pairs.push(("default", Json::from(topology_wire_name(t))));
                            }
                            FieldDefault::Placement(p) => {
                                pairs.push(("default", Json::from(placement_wire_name(p))));
                            }
                        }
                        match f.ty {
                            FieldType::Count { min, max } => {
                                pairs.push(("min", Json::from(min)));
                                pairs.push(("max", Json::from(max)));
                            }
                            FieldType::F64List { max_len } | FieldType::Text { max_len } => {
                                pairs.push(("max_len", Json::from(max_len)));
                            }
                            _ => {}
                        }
                        pairs.push(("doc", Json::from(f.doc)));
                        Json::obj(pairs)
                    })
                    .collect();
            Json::obj([
                ("kind", Json::from(spec.kind)),
                ("doc", Json::from(spec.doc)),
                ("params", Json::Array(params)),
            ])
        })
        .collect();
    Json::Array(kinds)
}

fn table_default<T>(kind: &str, name: &str, pick: impl Fn(&FieldDefault) -> Option<T>) -> T {
    let spec = kind_spec(kind).unwrap_or_else(|| panic!("unknown kind `{kind}` in spec table"));
    let f = spec
        .fields
        .iter()
        .find(|f| f.name == name)
        .unwrap_or_else(|| panic!("kind `{kind}` has no param `{name}`"));
    pick(&f.default).unwrap_or_else(|| panic!("param `{kind}.{name}` has no default of that type"))
}

/// The table's default for a numeric parameter — the CLI reads its flag
/// defaults through these so `vpd` and serve cannot drift.
///
/// # Panics
///
/// On a kind/param name not in the table (a programmer error, caught by
/// the CLI's own parse tests).
#[must_use]
pub fn wire_default_f64(kind: &str, name: &str) -> f64 {
    table_default(kind, name, |d| match d {
        FieldDefault::F64(v) => Some(*v),
        _ => None,
    })
}

/// The table's default for a count parameter (see [`wire_default_f64`]).
///
/// # Panics
///
/// On a kind/param name not in the table.
#[must_use]
pub fn wire_default_count(kind: &str, name: &str) -> usize {
    table_default(kind, name, |d| match d {
        FieldDefault::Count(v) => Some(*v),
        _ => None,
    })
}

/// The table's default for a seed parameter (see [`wire_default_f64`]).
///
/// # Panics
///
/// On a kind/param name not in the table.
#[must_use]
pub fn wire_default_seed(kind: &str, name: &str) -> u64 {
    table_default(kind, name, |d| match d {
        FieldDefault::Seed(v) => Some(*v),
        _ => None,
    })
}

// ---------------------------------------------------------------------
// Table-driven parsing
// ---------------------------------------------------------------------

/// One parsed parameter value.
#[derive(Clone, Debug)]
enum FieldValue {
    F64(f64),
    Count(usize),
    Seed(u64),
    Flag(bool),
    Arch(Architecture),
    Topology(VrTopologyKind),
    Placement(VrPlacement),
    List(Vec<f64>),
    Text(String),
    /// An optional parameter the request did not carry.
    Absent,
}

/// The validated parameter set of one request, keyed by wire name.
struct ParsedFields(Vec<(&'static str, FieldValue)>);

impl ParsedFields {
    fn value(&self, name: &str) -> &FieldValue {
        &self
            .0
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("field `{name}` missing from parsed set"))
            .1
    }

    fn f64(&self, name: &str) -> f64 {
        match self.value(name) {
            FieldValue::F64(v) => *v,
            other => panic!("field `{name}` is not a number: {other:?}"),
        }
    }

    fn count(&self, name: &str) -> usize {
        match self.value(name) {
            FieldValue::Count(v) => *v,
            other => panic!("field `{name}` is not a count: {other:?}"),
        }
    }

    fn seed(&self, name: &str) -> u64 {
        match self.value(name) {
            FieldValue::Seed(v) => *v,
            other => panic!("field `{name}` is not a seed: {other:?}"),
        }
    }

    fn flag(&self, name: &str) -> bool {
        match self.value(name) {
            FieldValue::Flag(v) => *v,
            other => panic!("field `{name}` is not a flag: {other:?}"),
        }
    }

    fn arch(&self, name: &str) -> Architecture {
        match self.value(name) {
            FieldValue::Arch(v) => *v,
            other => panic!("field `{name}` is not an architecture: {other:?}"),
        }
    }

    fn topology(&self, name: &str) -> VrTopologyKind {
        match self.value(name) {
            FieldValue::Topology(v) => *v,
            other => panic!("field `{name}` is not a topology: {other:?}"),
        }
    }

    fn placement(&self, name: &str) -> VrPlacement {
        match self.value(name) {
            FieldValue::Placement(v) => *v,
            other => panic!("field `{name}` is not a placement: {other:?}"),
        }
    }

    fn list(&self, name: &str) -> Vec<f64> {
        match self.value(name) {
            FieldValue::List(v) => v.clone(),
            other => panic!("field `{name}` is not a list: {other:?}"),
        }
    }

    fn optional_count(&self, name: &str) -> Option<usize> {
        match self.value(name) {
            FieldValue::Count(v) => Some(*v),
            FieldValue::Absent => None,
            other => panic!("field `{name}` is not an optional count: {other:?}"),
        }
    }

    fn optional_text(&self, name: &str) -> Option<&str> {
        match self.value(name) {
            FieldValue::Text(v) => Some(v.as_str()),
            FieldValue::Absent => None,
            other => panic!("field `{name}` is not a text: {other:?}"),
        }
    }
}

/// Raw access to the request's `params` object.
struct Params<'a> {
    doc: Option<&'a Json>,
}

impl<'a> Params<'a> {
    fn get(&self, key: &str) -> Option<&'a Json> {
        self.doc.and_then(|d| d.get(key))
    }

    /// Rejects params outside the spec's field list, so a misspelled
    /// name fails loudly instead of silently falling back to the
    /// default.
    fn reject_unknown(&self, spec: &KindSpec) -> Result<(), String> {
        let Some(doc) = self.doc else {
            return Ok(());
        };
        let Json::Object(pairs) = doc else {
            return Err("`params` must be an object".into());
        };
        for (key, _) in pairs {
            if !spec.fields.iter().any(|f| f.name == key.as_str()) {
                return Err(if spec.fields.is_empty() {
                    format!("unknown param `{key}` (this kind takes no params)")
                } else {
                    let names: Vec<&str> = spec.fields.iter().map(|f| f.name).collect();
                    format!(
                        "unknown param `{key}` (expected one of: {})",
                        names.join(", ")
                    )
                });
            }
        }
        Ok(())
    }
}

/// Validates one parameter against its spec row: type check, range
/// check, and default substitution.
fn parse_field(f: &FieldSpec, p: &Params<'_>) -> Result<FieldValue, (ErrorCode, String)> {
    let key = f.name;
    let plain = |m: String| (ErrorCode::BadRequest, m);
    let raw = p.get(key);
    if raw.is_none() {
        return match f.default {
            FieldDefault::Required => Err(plain(format!("param `{key}` is required"))),
            FieldDefault::Absent => Ok(FieldValue::Absent),
            FieldDefault::F64(v) => Ok(FieldValue::F64(v)),
            FieldDefault::Count(v) => Ok(FieldValue::Count(v)),
            FieldDefault::Seed(v) => Ok(FieldValue::Seed(v)),
            FieldDefault::Flag(v) => Ok(FieldValue::Flag(v)),
            FieldDefault::Topology(t) => Ok(FieldValue::Topology(t)),
            FieldDefault::Placement(pl) => Ok(FieldValue::Placement(pl)),
        };
    }
    let raw = raw.expect("raw value present");
    let want_str = || -> Result<&str, (ErrorCode, String)> {
        raw.as_str()
            .ok_or_else(|| plain(format!("param `{key}` expects a string")))
    };
    let want_count = |min: usize, max: usize| -> Result<usize, (ErrorCode, String)> {
        let n = raw
            .as_i64()
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| plain(format!("param `{key}` expects a non-negative integer")))?;
        if n < min {
            return Err(plain(format!("param `{key}` must be at least {min}")));
        }
        if n > max {
            return Err(plain(format!("param `{key}` is capped at {max}")));
        }
        Ok(n)
    };
    match f.ty {
        FieldType::F64 { positive } => {
            let v = raw
                .as_f64()
                .filter(|x| x.is_finite())
                .ok_or_else(|| plain(format!("param `{key}` expects a number")))?;
            if positive && v <= 0.0 {
                return Err(plain(format!("param `{key}` must be positive")));
            }
            Ok(FieldValue::F64(v))
        }
        FieldType::Count { min, max } => Ok(FieldValue::Count(want_count(min, max)?)),
        FieldType::Seed => {
            let v = raw
                .as_i64()
                .and_then(|n| u64::try_from(n).ok())
                .ok_or_else(|| plain(format!("param `{key}` expects a non-negative integer")))?;
            Ok(FieldValue::Seed(v))
        }
        FieldType::Flag => {
            let v = raw
                .as_bool()
                .ok_or_else(|| plain(format!("param `{key}` expects a boolean")))?;
            Ok(FieldValue::Flag(v))
        }
        FieldType::Arch => {
            let s = want_str()?;
            parse_architecture(s)
                .map(FieldValue::Arch)
                .ok_or_else(|| plain(format!("unknown architecture '{s}'")))
        }
        FieldType::Topology => {
            let s = want_str()?;
            parse_topology(s)
                .map(FieldValue::Topology)
                .ok_or_else(|| plain(format!("unknown topology '{s}'")))
        }
        FieldType::Placement => {
            let s = want_str()?;
            parse_placement(s)
                .map(FieldValue::Placement)
                .ok_or_else(|| plain(format!("unknown placement '{s}'")))
        }
        FieldType::F64List { max_len } => {
            let Json::Array(items) = raw else {
                return Err(plain(format!("param `{key}` expects an array of numbers")));
            };
            if items.is_empty() {
                return Err(plain(format!("param `{key}` must not be empty")));
            }
            if items.len() > max_len {
                return Err(plain(format!(
                    "param `{key}` is capped at {max_len} values"
                )));
            }
            let values = items
                .iter()
                .map(|v| {
                    v.as_f64()
                        .filter(|x| x.is_finite())
                        .ok_or_else(|| plain(format!("param `{key}` expects finite numbers")))
                })
                .collect::<Result<Vec<f64>, _>>()?;
            Ok(FieldValue::List(values))
        }
        FieldType::OptionalCount => {
            let v = raw
                .as_i64()
                .and_then(|n| usize::try_from(n).ok())
                .filter(|&k| k > 0)
                .ok_or_else(|| plain(format!("param `{key}` expects a positive integer")))?;
            Ok(FieldValue::Count(v))
        }
        FieldType::Text { max_len } => {
            let s = want_str()?;
            if s.is_empty() {
                return Err(plain(format!("param `{key}` must not be empty")));
            }
            if s.len() > max_len {
                return Err(plain(format!("param `{key}` is capped at {max_len} bytes")));
            }
            Ok(FieldValue::Text(s.to_string()))
        }
    }
}

impl Request {
    /// Parses one NDJSON request line.
    ///
    /// # Errors
    ///
    /// [`RequestError`] with [`ErrorCode::Parse`] for malformed JSON,
    /// [`ErrorCode::BadRequest`] for a well-formed document that is not
    /// a valid request, and [`ErrorCode::Unsupported`] for a kind this
    /// protocol version does not serve (the message lists the supported
    /// kinds) or the `impedance` architecture comparison
    /// (`"arch":"all"`), which only the one-shot CLI serves.
    pub fn parse_line(line: &str) -> Result<Self, RequestError> {
        let doc = Json::parse(line).map_err(|e| RequestError {
            id: None,
            code: ErrorCode::Parse,
            message: e.to_string(),
        })?;
        let id = doc.get("id").and_then(Json::as_i64);
        let bad = |code: ErrorCode, message: String| RequestError { id, code, message };
        let kind = doc.get("kind").and_then(Json::as_str).ok_or_else(|| {
            bad(
                ErrorCode::BadRequest,
                "request needs a string `kind`".into(),
            )
        })?;
        let deadline_ms = doc
            .get("deadline_ms")
            .and_then(Json::as_i64)
            .map(|v| u64::try_from(v.max(0)).unwrap_or(0));
        let p = Params {
            doc: doc.get("params"),
        };
        let work = parse_work(kind, &p).map_err(|(code, message)| bad(code, message))?;
        Ok(Self {
            id,
            deadline_ms,
            work,
        })
    }
}

fn parse_work(kind: &str, p: &Params<'_>) -> Result<Work, (ErrorCode, String)> {
    let Some(spec) = kind_spec(kind) else {
        return Err((
            ErrorCode::Unsupported,
            format!(
                "unsupported kind '{kind}' (supported: {})",
                supported_kinds().join(", ")
            ),
        ));
    };
    p.reject_unknown(spec)
        .map_err(|m| (ErrorCode::BadRequest, m))?;
    // The one per-kind special case the table cannot express: the CLI's
    // multi-architecture impedance comparison is deliberately unserved.
    if kind == "impedance" && p.get("arch").and_then(Json::as_str) == Some("all") {
        return Err((
            ErrorCode::Unsupported,
            "the multi-architecture impedance comparison is only served by the one-shot \
             CLI (`vpd impedance --arch all`)"
                .into(),
        ));
    }
    let mut values = Vec::with_capacity(spec.fields.len());
    for f in &spec.fields {
        values.push((f.name, parse_field(f, p)?));
    }
    let v = ParsedFields(values);
    Ok(match kind {
        "ping" => Work::Ping,
        "stats" => Work::Stats,
        "kinds" => Work::Kinds,
        "shutdown" => Work::Shutdown,
        "analyze" => Work::Analyze {
            arch: v.arch("arch"),
            topology: v.topology("topology"),
            power_w: v.f64("power_w"),
            density: v.f64("density"),
        },
        "sharing" => Work::Sharing {
            placement: v.placement("placement"),
            modules: v.count("modules"),
        },
        "sharing_sweep" => Work::SharingSweep {
            placement: v.placement("placement"),
            modules: v.count("modules"),
            setpoints: v.list("setpoints"),
        },
        "droop" => Work::Droop {
            arch: v.arch("arch"),
        },
        "transient_stream" => Work::TransientStream {
            arch: v.arch("arch"),
            chunk: v.count("chunk"),
        },
        "mc" => Work::Mc {
            arch: v.arch("arch"),
            topology: v.topology("topology"),
            samples: v.count("samples"),
            seed: v.seed("seed"),
            threads: v.count("threads"),
        },
        "impedance" => Work::Impedance {
            arch: v.arch("arch"),
            fmin_hz: v.f64("fmin_hz"),
            fmax_hz: v.f64("fmax_hz"),
            points: v.count("points"),
            profile: v.flag("profile"),
        },
        "faults" => Work::Faults {
            arch: v.arch("arch"),
            topology: v.topology("topology"),
            random_k: v.optional_count("random_k"),
            count: v.count("count"),
            seed: v.seed("seed"),
        },
        "fault_impedance" => Work::FaultImpedance {
            arch: v.arch("arch"),
            random_k: v.optional_count("random_k"),
            count: v.count("count"),
            seed: v.seed("seed"),
            fmin_hz: v.f64("fmin_hz"),
            fmax_hz: v.f64("fmax_hz"),
            points: v.count("points"),
        },
        "fault_transient" => Work::FaultTransient {
            arch: v.arch("arch"),
            count: v.count("count"),
        },
        "survival" => Work::Survival {
            arch: v.arch("arch"),
            topology: v.topology("topology"),
        },
        "scenario" => {
            // Full parse + validation at admission: a malformed document
            // is rejected here, with its line/column diagnostic, before
            // it can occupy a queue slot or reach a worker.
            let text = match (v.optional_text("doc"), v.optional_text("name")) {
                (Some(_), Some(_)) => {
                    return Err((
                        ErrorCode::BadRequest,
                        "params `doc` and `name` are mutually exclusive".into(),
                    ));
                }
                (None, None) => {
                    return Err((
                        ErrorCode::BadRequest,
                        "param `doc` (inline document) or `name` (builtin) is required".into(),
                    ));
                }
                (Some(d), None) => d,
                (None, Some(n)) => builtin_doc(n).ok_or_else(|| {
                    (
                        ErrorCode::BadRequest,
                        format!(
                            "unknown builtin scenario '{n}' (builtins: {})",
                            BUILTIN_NAMES.join(", ")
                        ),
                    )
                })?,
            };
            let doc = ScenarioDoc::parse(text)
                .map_err(|e| (ErrorCode::BadRequest, format!("scenario document: {e}")))?;
            Work::Scenario { doc: Box::new(doc) }
        }
        other => unreachable!("kind `{other}` is in the table but not constructed"),
    })
}

/// A response line, ready to serialize.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Echoed request id (absent when the request carried none or the
    /// line was too malformed to read one).
    pub id: Option<i64>,
    /// Success or typed failure.
    pub body: ResponseBody,
}

/// The payload half of a [`Response`].
#[derive(Clone, Debug, PartialEq)]
pub enum ResponseBody {
    /// The analysis succeeded.
    Ok {
        /// Request kind, echoed for log readability.
        kind: &'static str,
        /// Whether compiled state was found in the scenario cache. Meta
        /// only — `result` is bitwise-identical either way.
        cached: bool,
        /// The analysis result document (matches the one-shot CLI).
        result: Json,
    },
    /// One record of a streaming response. Records with `done: false`
    /// are incremental chunks; the record with `done: true` is the
    /// final summary. Streams that fail mid-flight end with a plain
    /// [`ResponseBody::Err`] record instead of a summary.
    Stream {
        /// Request kind, echoed for log readability.
        kind: &'static str,
        /// Whether compiled state was found in the scenario cache.
        cached: bool,
        /// Zero-based record sequence number within the stream.
        seq: usize,
        /// `false` for chunks, `true` for the final summary record.
        done: bool,
        /// Chunk payload or summary document.
        result: Json,
    },
    /// The request was rejected or failed.
    Err {
        /// Failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// A success response.
    #[must_use]
    pub fn ok(id: Option<i64>, kind: &'static str, cached: bool, result: Json) -> Self {
        Self {
            id,
            body: ResponseBody::Ok {
                kind,
                cached,
                result,
            },
        }
    }

    /// One record of a streaming response (`done = false` for chunks,
    /// `true` for the final summary).
    #[must_use]
    pub fn stream(
        id: Option<i64>,
        kind: &'static str,
        cached: bool,
        seq: usize,
        done: bool,
        result: Json,
    ) -> Self {
        Self {
            id,
            body: ResponseBody::Stream {
                kind,
                cached,
                seq,
                done,
                result,
            },
        }
    }

    /// Whether more records of the same response follow this one on the
    /// wire. Only a stream chunk (`done: false`) is non-terminal; plain
    /// responses, summaries, and errors all end their response.
    #[must_use]
    pub fn has_more(&self) -> bool {
        matches!(self.body, ResponseBody::Stream { done: false, .. })
    }

    /// A typed failure response.
    #[must_use]
    pub fn error(id: Option<i64>, code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            id,
            body: ResponseBody::Err {
                code,
                message: message.into(),
            },
        }
    }

    /// Serializes to the single-line wire form. Every variant leads
    /// with the echoed `id` and the server's [`PROTOCOL_VERSION`].
    #[must_use]
    pub fn to_json(&self) -> Json {
        let id = match self.id {
            Some(id) => Json::Int(id),
            None => Json::Null,
        };
        let version = Json::Int(PROTOCOL_VERSION);
        match &self.body {
            ResponseBody::Ok {
                kind,
                cached,
                result,
            } => Json::obj([
                ("id", id),
                ("version", version),
                ("ok", Json::from(true)),
                ("kind", Json::from(*kind)),
                ("cached", Json::from(*cached)),
                ("result", result.clone()),
            ]),
            ResponseBody::Stream {
                kind,
                cached,
                seq,
                done,
                result,
            } => Json::obj([
                ("id", id),
                ("version", version),
                ("ok", Json::from(true)),
                ("kind", Json::from(*kind)),
                ("cached", Json::from(*cached)),
                ("done", Json::from(*done)),
                ("seq", Json::from(*seq)),
                ("result", result.clone()),
            ]),
            ResponseBody::Err { code, message } => Json::obj([
                ("id", id),
                ("version", version),
                ("ok", Json::from(false)),
                (
                    "error",
                    Json::obj([
                        ("code", Json::from(code.as_str())),
                        ("message", Json::from(message.as_str())),
                    ]),
                ),
            ]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_unknown_params_instead_of_defaulting() {
        let err =
            Request::parse_line(r#"{"id":3,"kind":"analyze","params":{"power":800}}"#).unwrap_err();
        assert_eq!(err.id, Some(3));
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("unknown param `power`"), "{err:?}");
        assert!(err.message.contains("power_w"), "{err:?}");

        let err = Request::parse_line(r#"{"id":4,"kind":"ping","params":{"x":1}}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);

        let err = Request::parse_line(r#"{"id":5,"kind":"mc","params":[1,2]}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("must be an object"), "{err:?}");
    }

    #[test]
    fn parses_a_full_analyze_request() {
        let req = Request::parse_line(
            r#"{"id":7,"kind":"analyze","deadline_ms":250,
               "params":{"arch":"a2","topology":"dpmih","power_w":500,"density":1.5}}"#,
        )
        .unwrap();
        assert_eq!(req.id, Some(7));
        assert_eq!(req.deadline_ms, Some(250));
        assert_eq!(
            req.work,
            Work::Analyze {
                arch: Architecture::InterposerEmbedded,
                topology: VrTopologyKind::Dpmih,
                power_w: 500.0,
                density: 1.5,
            }
        );
    }

    #[test]
    fn defaults_mirror_the_cli() {
        let req = Request::parse_line(r#"{"kind":"analyze","params":{"arch":"a1"}}"#).unwrap();
        assert_eq!(
            req.work,
            Work::Analyze {
                arch: Architecture::InterposerPeriphery,
                topology: VrTopologyKind::Dsch,
                power_w: 1000.0,
                density: 2.0,
            }
        );
        let req = Request::parse_line(r#"{"kind":"sharing"}"#).unwrap();
        assert_eq!(
            req.work,
            Work::Sharing {
                placement: VrPlacement::Periphery,
                modules: 48,
            }
        );
        let req = Request::parse_line(r#"{"kind":"mc","params":{"arch":"a0"}}"#).unwrap();
        assert_eq!(
            req.work,
            Work::Mc {
                arch: Architecture::Reference,
                topology: VrTopologyKind::Dsch,
                samples: 200,
                seed: 0x5eed,
                threads: 0,
            }
        );
        let req = Request::parse_line(r#"{"kind":"faults","params":{"arch":"a2"}}"#).unwrap();
        assert_eq!(
            req.work,
            Work::Faults {
                arch: Architecture::InterposerEmbedded,
                topology: VrTopologyKind::Dsch,
                random_k: None,
                count: 32,
                seed: 64023,
            }
        );
    }

    #[test]
    fn table_defaults_are_reachable_by_name() {
        assert_eq!(wire_default_f64("analyze", "power_w"), 1000.0);
        assert_eq!(wire_default_f64("analyze", "density"), 2.0);
        assert_eq!(wire_default_count("sharing", "modules"), 48);
        assert_eq!(wire_default_count("mc", "samples"), 200);
        assert_eq!(wire_default_seed("mc", "seed"), 0x5eed);
        assert_eq!(wire_default_count("faults", "count"), 32);
        assert_eq!(wire_default_seed("faults", "seed"), 64023);
        let z = vpd_core::ImpedanceSweepSettings::default();
        assert_eq!(wire_default_f64("impedance", "fmin_hz"), z.fmin.value());
        assert_eq!(wire_default_f64("impedance", "fmax_hz"), z.fmax.value());
        assert_eq!(wire_default_count("impedance", "points"), z.points);
    }

    #[test]
    fn catalog_lists_every_kind_with_typed_params() {
        let catalog = kind_catalog();
        let Json::Array(kinds) = &catalog else {
            panic!("catalog must be an array: {catalog}");
        };
        assert_eq!(kinds.len(), kind_specs().len());
        let analyze = kinds
            .iter()
            .find(|k| k.get("kind").and_then(Json::as_str) == Some("analyze"))
            .expect("analyze in catalog");
        let Some(Json::Array(params)) = analyze.get("params") else {
            panic!("analyze params: {analyze}");
        };
        let arch = params
            .iter()
            .find(|p| p.get("name").and_then(Json::as_str) == Some("arch"))
            .expect("arch param");
        assert_eq!(arch.get("required").and_then(Json::as_bool), Some(true));
        assert_eq!(
            arch.get("type").and_then(Json::as_str),
            Some("architecture")
        );
        let power = params
            .iter()
            .find(|p| p.get("name").and_then(Json::as_str) == Some("power_w"))
            .expect("power_w param");
        assert_eq!(power.get("default").and_then(Json::as_f64), Some(1000.0));
        // Range validators surface in the catalog.
        let mc = kinds
            .iter()
            .find(|k| k.get("kind").and_then(Json::as_str) == Some("mc"))
            .unwrap();
        let Some(Json::Array(mc_params)) = mc.get("params") else {
            panic!("mc params");
        };
        let samples = mc_params
            .iter()
            .find(|p| p.get("name").and_then(Json::as_str) == Some("samples"))
            .unwrap();
        assert_eq!(samples.get("min").and_then(Json::as_i64), Some(1));
    }

    #[test]
    fn parses_a_sharing_sweep_request() {
        let req = Request::parse_line(
            r#"{"kind":"sharing_sweep","params":{"placement":"below","modules":24,"setpoints":[1.0,1.01,1.02]}}"#,
        )
        .unwrap();
        assert_eq!(
            req.work,
            Work::SharingSweep {
                placement: VrPlacement::BelowDie,
                modules: 24,
                setpoints: vec![1.0, 1.01, 1.02],
            }
        );
        assert_eq!(req.work.kind(), "sharing_sweep");

        for bad in [
            r#"{"kind":"sharing_sweep"}"#,
            r#"{"kind":"sharing_sweep","params":{"setpoints":[]}}"#,
            r#"{"kind":"sharing_sweep","params":{"setpoints":"1.0"}}"#,
            r#"{"kind":"sharing_sweep","params":{"setpoints":[1.0,"x"]}}"#,
            r#"{"kind":"sharing_sweep","params":{"setpoints":[1.0],"modules":0}}"#,
        ] {
            let e = Request::parse_line(bad).unwrap_err();
            assert_eq!(e.code, ErrorCode::BadRequest, "{bad}");
        }
    }

    #[test]
    fn parses_the_dynamic_fault_kinds() {
        let z = vpd_core::ImpedanceSweepSettings::default();
        let req =
            Request::parse_line(r#"{"kind":"fault_impedance","params":{"arch":"a2"}}"#).unwrap();
        assert_eq!(
            req.work,
            Work::FaultImpedance {
                arch: Architecture::InterposerEmbedded,
                random_k: None,
                count: 32,
                seed: 64023,
                fmin_hz: z.fmin.value(),
                fmax_hz: z.fmax.value(),
                points: z.points,
            }
        );
        assert_eq!(req.work.kind(), "fault_impedance");
        let req = Request::parse_line(
            r#"{"kind":"fault_impedance","params":{"arch":"a1","random_k":2,"count":8,"seed":5,"points":16}}"#,
        )
        .unwrap();
        assert!(matches!(
            req.work,
            Work::FaultImpedance {
                random_k: Some(2),
                count: 8,
                seed: 5,
                points: 16,
                ..
            }
        ));

        let req =
            Request::parse_line(r#"{"kind":"fault_transient","params":{"arch":"a2"}}"#).unwrap();
        assert_eq!(
            req.work,
            Work::FaultTransient {
                arch: Architecture::InterposerEmbedded,
                count: 4,
            }
        );
        assert_eq!(req.work.kind(), "fault_transient");

        let req = Request::parse_line(r#"{"kind":"survival","params":{"arch":"a1"}}"#).unwrap();
        assert_eq!(
            req.work,
            Work::Survival {
                arch: Architecture::InterposerPeriphery,
                topology: VrTopologyKind::Dsch,
            }
        );
        assert_eq!(req.work.kind(), "survival");

        for bad in [
            r#"{"kind":"fault_impedance"}"#,
            r#"{"kind":"fault_impedance","params":{"arch":"a1","points":1}}"#,
            r#"{"kind":"fault_transient","params":{"arch":"a1","count":0}}"#,
            r#"{"kind":"survival","params":{"arch":"a1","topology":"nope"}}"#,
        ] {
            let e = Request::parse_line(bad).unwrap_err();
            assert_eq!(e.code, ErrorCode::BadRequest, "{bad}");
        }
    }

    #[test]
    fn malformed_lines_give_typed_errors() {
        let e = Request::parse_line("{nope").unwrap_err();
        assert_eq!(e.code, ErrorCode::Parse);
        assert_eq!(e.id, None);

        let e = Request::parse_line(r#"{"id":4,"kind":"analyze"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        assert!(e.message.contains("arch"));

        let e = Request::parse_line(r#"{"kind":"analyze","params":{"arch":"a9"}}"#).unwrap_err();
        assert!(e.message.contains("unknown architecture"));

        let e =
            Request::parse_line(r#"{"kind":"mc","params":{"arch":"a1","samples":0}}"#).unwrap_err();
        assert!(e.message.contains("samples"));
    }

    #[test]
    fn unknown_kind_is_unsupported_and_lists_supported_kinds() {
        let e = Request::parse_line(r#"{"id":3,"kind":"frobnicate"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::Unsupported);
        assert_eq!(e.id, Some(3), "id echoed even on unsupported kinds");
        for kind in supported_kinds() {
            assert!(
                e.message.contains(kind),
                "unsupported-kind message must list `{kind}`: {}",
                e.message
            );
        }
    }

    #[test]
    fn parses_a_transient_stream_request() {
        let req = Request::parse_line(
            r#"{"kind":"transient_stream","params":{"arch":"a2","chunk":256}}"#,
        )
        .unwrap();
        assert_eq!(
            req.work,
            Work::TransientStream {
                arch: Architecture::InterposerEmbedded,
                chunk: 256,
            }
        );
        assert_eq!(req.work.kind(), "transient_stream");
        // Default chunk size.
        let req =
            Request::parse_line(r#"{"kind":"transient_stream","params":{"arch":"a0"}}"#).unwrap();
        assert!(matches!(
            req.work,
            Work::TransientStream { chunk: 1024, .. }
        ));

        for bad in [
            r#"{"kind":"transient_stream"}"#,
            r#"{"kind":"transient_stream","params":{"arch":"a0","chunk":0}}"#,
            r#"{"kind":"transient_stream","params":{"arch":"a0","chunk":65536}}"#,
            r#"{"kind":"transient_stream","params":{"arch":"a0","chunks":8}}"#,
        ] {
            let e = Request::parse_line(bad).unwrap_err();
            assert_eq!(e.code, ErrorCode::BadRequest, "{bad}");
        }
    }

    #[test]
    fn stream_records_serialize_and_classify_termination() {
        let chunk = Response::stream(
            Some(4),
            "transient_stream",
            true,
            0,
            false,
            Json::obj([("samples", Json::from(2usize))]),
        );
        assert_eq!(
            chunk.to_json().to_string(),
            r#"{"id":4,"version":2,"ok":true,"kind":"transient_stream","cached":true,"done":false,"seq":0,"result":{"samples":2}}"#
        );
        assert!(chunk.has_more());
        let summary = Response::stream(Some(4), "transient_stream", true, 3, true, Json::Null);
        assert!(!summary.has_more());
        assert!(summary.to_json().to_string().contains("\"done\":true"));
        // Plain responses and errors never have more records.
        assert!(!Response::ok(Some(1), "ping", false, Json::Null).has_more());
        assert!(!Response::error(None, ErrorCode::Engine, "x").has_more());
    }

    #[test]
    fn parses_scenario_requests() {
        // Builtin by name.
        let req = Request::parse_line(r#"{"kind":"scenario","params":{"name":"a3-6"}}"#).unwrap();
        let Work::Scenario { doc } = &req.work else {
            panic!("not a scenario: {req:?}");
        };
        assert_eq!(doc.name, "a3-6");
        assert_eq!(req.work.kind(), "scenario");

        // Inline document; equivalent spelling hits the same hash.
        let inline =
            r#"{"kind":"scenario","params":{"doc":"[scenario]\narchitecture = \"a2\"\n"}}"#;
        let req = Request::parse_line(inline).unwrap();
        let Work::Scenario { doc } = &req.work else {
            panic!("not a scenario: {req:?}");
        };
        assert_eq!(doc.name, "a2");
        let canonical = vpd_scenario::builtin_doc("a2").unwrap();
        assert_eq!(
            doc.content_hash(),
            ScenarioDoc::parse(canonical).unwrap().content_hash(),
            "inline defaulted a2 and the checked-in a2 document must share a cache key"
        );

        // Exactly one of doc|name; unknown builtins and malformed
        // documents are rejected at admission with their diagnostics.
        let e = Request::parse_line(r#"{"kind":"scenario"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        let e = Request::parse_line(
            r#"{"kind":"scenario","params":{"name":"a0","doc":"[scenario]\n"}}"#,
        )
        .unwrap_err();
        assert!(e.message.contains("mutually exclusive"), "{e:?}");
        let e = Request::parse_line(r#"{"kind":"scenario","params":{"name":"a9"}}"#).unwrap_err();
        assert!(e.message.contains("unknown builtin"), "{e:?}");
        let e = Request::parse_line(
            r#"{"kind":"scenario","params":{"doc":"[scenario]\narchitecture = \"a9\"\n"}}"#,
        )
        .unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        assert!(e.message.contains("error[bad-enum] at 2:16"), "{e:?}");
    }

    #[test]
    fn impedance_all_is_unsupported() {
        let e = Request::parse_line(r#"{"id":9,"kind":"impedance","params":{"arch":"all"}}"#)
            .unwrap_err();
        assert_eq!(e.code, ErrorCode::Unsupported);
        assert_eq!(e.id, Some(9));
    }

    #[test]
    fn responses_serialize_to_one_line_with_the_protocol_version() {
        let ok = Response::ok(
            Some(1),
            "ping",
            false,
            Json::obj([("command", Json::from("ping"))]),
        );
        assert_eq!(
            ok.to_json().to_string(),
            r#"{"id":1,"version":2,"ok":true,"kind":"ping","cached":false,"result":{"command":"ping"}}"#
        );
        let err = Response::error(None, ErrorCode::QueueFull, "queue is full (depth 2)");
        assert_eq!(
            err.to_json().to_string(),
            r#"{"id":null,"version":2,"ok":false,"error":{"code":"queue_full","message":"queue is full (depth 2)"}}"#
        );
        assert!(!err.to_json().to_string().contains('\n'));
        let shed = Response::error(Some(7), ErrorCode::Shed, "x");
        assert!(shed.to_json().to_string().contains(r#""code":"shed""#));
    }
}
