//! The wire protocol: one JSON document per line in both directions.
//!
//! A request names an analysis `kind` plus a `params` object, and may
//! carry a client-chosen `id` (echoed back verbatim so responses can be
//! matched over a pipelined connection) and a `deadline_ms` budget.
//! Responses are either `{"ok":true,...}` with the analysis result or
//! `{"ok":false,"error":{...}}` with a stable machine-readable code.
//!
//! The `result` field of a successful response is byte-identical to the
//! JSON document the one-shot `vpd --format json <command>` invocation
//! prints for the same parameters — the service is a resident,
//! plan-caching front end to the exact same engines.

use vpd_converters::VrTopologyKind;
use vpd_core::{Architecture, VrPlacement};
use vpd_report::Json;
use vpd_units::Volts;

/// Machine-readable failure class carried by error responses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorCode {
    /// The request line was not valid JSON.
    Parse,
    /// The request was well-formed JSON but not a valid request.
    BadRequest,
    /// The bounded queue was full; retry later (backpressure).
    QueueFull,
    /// The server is draining for shutdown and refuses new work.
    Draining,
    /// The request waited in the queue past its `deadline_ms`.
    DeadlineExceeded,
    /// The analysis engine itself failed (infeasible configuration…).
    Engine,
    /// A recognized request the service deliberately does not serve.
    Unsupported,
}

impl ErrorCode {
    /// The stable wire spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Parse => "parse",
            Self::BadRequest => "bad_request",
            Self::QueueFull => "queue_full",
            Self::Draining => "draining",
            Self::DeadlineExceeded => "deadline_exceeded",
            Self::Engine => "engine",
            Self::Unsupported => "unsupported",
        }
    }
}

/// A rejected request line: the echoed id (when one could be read) plus
/// the typed reason.
#[derive(Clone, Debug)]
pub struct RequestError {
    /// Client id, echoed when the document yielded one.
    pub id: Option<i64>,
    /// Failure class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// One unit of analysis work, fully parsed and defaulted.
///
/// Parameter names and defaults deliberately mirror the CLI flags, so a
/// request's `result` matches the one-shot invocation bit for bit.
#[derive(Clone, Debug, PartialEq)]
pub enum Work {
    /// Liveness probe; returns immediately.
    Ping,
    /// Server statistics: cache counters plus an obs metrics snapshot.
    Stats,
    /// Graceful shutdown: finish in-flight work, reject queued work.
    Shutdown,
    /// Loss breakdown for one architecture × topology point.
    Analyze {
        /// Delivery architecture.
        arch: Architecture,
        /// POL-stage topology.
        topology: VrTopologyKind,
        /// Die power draw in watts.
        power_w: f64,
        /// Current density in A/mm².
        density: f64,
    },
    /// Die-grid current sharing for a placement pattern.
    Sharing {
        /// Regulator placement pattern.
        placement: VrPlacement,
        /// Module count.
        modules: usize,
    },
    /// Rail-setpoint sweep over a sharing grid, coalesced into one
    /// factorization plus a multi-RHS block solve (direct-Cholesky
    /// plan mode).
    SharingSweep {
        /// Regulator placement pattern.
        placement: VrPlacement,
        /// Module count.
        modules: usize,
        /// Swept regulator setpoints, volts (all modules move together).
        setpoints: Vec<f64>,
    },
    /// Transient droop response to the paper's load step.
    Droop {
        /// Delivery architecture.
        arch: Architecture,
    },
    /// Streaming transient run: incremental waveform chunks
    /// (`done:false`) followed by one summary record (`done:true`)
    /// whose droop report is bitwise-identical to the one-shot `droop`
    /// result for the same architecture.
    TransientStream {
        /// Delivery architecture.
        arch: Architecture,
        /// Samples per emitted chunk.
        chunk: usize,
    },
    /// Monte-Carlo tolerance sweep.
    Mc {
        /// Delivery architecture.
        arch: Architecture,
        /// POL-stage topology.
        topology: VrTopologyKind,
        /// Sample count.
        samples: usize,
        /// RNG seed.
        seed: u64,
        /// Worker threads (0 = auto); never changes the result bits.
        threads: usize,
    },
    /// PDN impedance profile over a log frequency sweep.
    Impedance {
        /// Delivery architecture.
        arch: Architecture,
        /// Sweep start, Hz.
        fmin_hz: f64,
        /// Sweep end, Hz.
        fmax_hz: f64,
        /// Number of points.
        points: usize,
        /// Emit every swept point instead of the summary.
        profile: bool,
    },
    /// Fault-injection sweep (N-1 or random-k scenarios).
    Faults {
        /// Delivery architecture.
        arch: Architecture,
        /// POL-stage topology.
        topology: VrTopologyKind,
        /// `None` = N-1 contingency; `Some(k)` = random k-fault draws.
        random_k: Option<usize>,
        /// Scenario count for random-k mode.
        count: usize,
        /// RNG seed for random-k mode.
        seed: u64,
    },
}

impl Work {
    /// The wire `kind` tag.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Ping => "ping",
            Self::Stats => "stats",
            Self::Shutdown => "shutdown",
            Self::Analyze { .. } => "analyze",
            Self::Sharing { .. } => "sharing",
            Self::SharingSweep { .. } => "sharing_sweep",
            Self::Droop { .. } => "droop",
            Self::TransientStream { .. } => "transient_stream",
            Self::Mc { .. } => "mc",
            Self::Impedance { .. } => "impedance",
            Self::Faults { .. } => "faults",
        }
    }
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: Option<i64>,
    /// Queue-wait budget in milliseconds (checked at dequeue).
    pub deadline_ms: Option<u64>,
    /// The analysis to run.
    pub work: Work,
}

/// Parses the CLI/wire spelling of an architecture
/// (`a0|a1|a2|a3-12|a3-6`).
#[must_use]
pub fn parse_architecture(s: &str) -> Option<Architecture> {
    match s {
        "a0" => Some(Architecture::Reference),
        "a1" => Some(Architecture::InterposerPeriphery),
        "a2" => Some(Architecture::InterposerEmbedded),
        "a3-12" => Some(Architecture::TwoStage {
            bus: Volts::new(12.0),
        }),
        "a3-6" => Some(Architecture::TwoStage {
            bus: Volts::new(6.0),
        }),
        _ => None,
    }
}

/// Parses the CLI/wire spelling of a topology (`dpmih|dsch|3lhd`).
#[must_use]
pub fn parse_topology(s: &str) -> Option<VrTopologyKind> {
    match s {
        "dpmih" => Some(VrTopologyKind::Dpmih),
        "dsch" => Some(VrTopologyKind::Dsch),
        "3lhd" => Some(VrTopologyKind::ThreeLevelHybridDickson),
        _ => None,
    }
}

/// Parses the CLI/wire spelling of a placement (`periphery|below`).
#[must_use]
pub fn parse_placement(s: &str) -> Option<VrPlacement> {
    match s {
        "periphery" => Some(VrPlacement::Periphery),
        "below" => Some(VrPlacement::BelowDie),
        _ => None,
    }
}

/// Typed access to the request's `params` object.
struct Params<'a> {
    doc: Option<&'a Json>,
}

impl<'a> Params<'a> {
    fn get(&self, key: &str) -> Option<&'a Json> {
        self.doc.and_then(|d| d.get(key))
    }

    /// Rejects params outside `allowed`, so a misspelled name fails
    /// loudly instead of silently falling back to the default.
    fn reject_unknown(&self, allowed: &[&str]) -> Result<(), String> {
        let Some(doc) = self.doc else {
            return Ok(());
        };
        let Json::Object(pairs) = doc else {
            return Err("`params` must be an object".into());
        };
        for (key, _) in pairs {
            if !allowed.contains(&key.as_str()) {
                return Err(if allowed.is_empty() {
                    format!("unknown param `{key}` (this kind takes no params)")
                } else {
                    format!(
                        "unknown param `{key}` (expected one of: {})",
                        allowed.join(", ")
                    )
                });
            }
        }
        Ok(())
    }

    fn f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_f64()
                .ok_or_else(|| format!("param `{key}` expects a number")),
        }
    }

    fn usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_i64()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| format!("param `{key}` expects a non-negative integer")),
        }
    }

    fn u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_i64()
                .and_then(|n| u64::try_from(n).ok())
                .ok_or_else(|| format!("param `{key}` expects a non-negative integer")),
        }
    }

    fn bool(&self, key: &str, default: bool) -> Result<bool, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_bool()
                .ok_or_else(|| format!("param `{key}` expects a boolean")),
        }
    }

    fn f64_array(&self, key: &str) -> Result<Option<Vec<f64>>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(Json::Array(items)) => items
                .iter()
                .map(|v| {
                    v.as_f64()
                        .filter(|x| x.is_finite())
                        .ok_or_else(|| format!("param `{key}` expects finite numbers"))
                })
                .collect::<Result<Vec<f64>, String>>()
                .map(Some),
            Some(_) => Err(format!("param `{key}` expects an array of numbers")),
        }
    }

    fn str(&self, key: &str) -> Result<Option<&'a str>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_str()
                .map(Some)
                .ok_or_else(|| format!("param `{key}` expects a string")),
        }
    }

    fn arch(&self) -> Result<Architecture, String> {
        match self.str("arch")? {
            None => Err("param `arch` is required".into()),
            Some(s) => parse_architecture(s).ok_or_else(|| format!("unknown architecture '{s}'")),
        }
    }

    fn topology(&self) -> Result<VrTopologyKind, String> {
        match self.str("topology")? {
            None => Ok(VrTopologyKind::Dsch),
            Some(s) => parse_topology(s).ok_or_else(|| format!("unknown topology '{s}'")),
        }
    }
}

impl Request {
    /// Parses one NDJSON request line.
    ///
    /// # Errors
    ///
    /// [`RequestError`] with [`ErrorCode::Parse`] for malformed JSON,
    /// [`ErrorCode::BadRequest`] for a well-formed document that is not
    /// a valid request, and [`ErrorCode::Unsupported`] for the
    /// `impedance` architecture comparison (`"arch":"all"`), which only
    /// the one-shot CLI serves.
    pub fn parse_line(line: &str) -> Result<Self, RequestError> {
        let doc = Json::parse(line).map_err(|e| RequestError {
            id: None,
            code: ErrorCode::Parse,
            message: e.to_string(),
        })?;
        let id = doc.get("id").and_then(Json::as_i64);
        let bad = |code: ErrorCode, message: String| RequestError { id, code, message };
        let kind = doc.get("kind").and_then(Json::as_str).ok_or_else(|| {
            bad(
                ErrorCode::BadRequest,
                "request needs a string `kind`".into(),
            )
        })?;
        let deadline_ms = doc
            .get("deadline_ms")
            .and_then(Json::as_i64)
            .map(|v| u64::try_from(v.max(0)).unwrap_or(0));
        let p = Params {
            doc: doc.get("params"),
        };
        let work = parse_work(kind, &p).map_err(|(code, message)| bad(code, message))?;
        Ok(Self {
            id,
            deadline_ms,
            work,
        })
    }
}

/// Defaults shared with the CLI so serve results match one-shot runs.
mod defaults {
    pub const POWER_W: f64 = 1000.0;
    pub const DENSITY: f64 = 2.0;
    pub const MODULES: usize = 48;
    pub const MC_SAMPLES: usize = 200;
    pub const MC_SEED: u64 = 0x5eed;
    pub const FAULT_COUNT: usize = 32;
    pub const FAULT_SEED: u64 = 64023;
    /// Ceiling on one request's coalesced block width, bounding the
    /// block-solve scratch a single line can demand.
    pub const MAX_SWEEP_SETPOINTS: usize = 256;
    /// Default samples per `transient_stream` chunk.
    pub const STREAM_CHUNK: usize = 1024;
    /// Ceiling on one chunk's samples, bounding a single record's size.
    pub const MAX_STREAM_CHUNK: usize = 4096;
}

fn parse_work(kind: &str, p: &Params<'_>) -> Result<Work, (ErrorCode, String)> {
    let plain = |m: String| (ErrorCode::BadRequest, m);
    let allowed: &[&str] = match kind {
        "ping" | "stats" | "shutdown" => &[],
        "analyze" => &["arch", "topology", "power_w", "density"],
        "sharing" => &["placement", "modules"],
        "sharing_sweep" => &["placement", "modules", "setpoints"],
        "droop" => &["arch"],
        "transient_stream" => &["arch", "chunk"],
        "mc" => &["arch", "topology", "samples", "seed", "threads"],
        "impedance" => &["arch", "fmin_hz", "fmax_hz", "points", "profile"],
        "faults" => &["arch", "topology", "random_k", "count", "seed"],
        other => return Err(plain(format!("unknown request kind '{other}'"))),
    };
    p.reject_unknown(allowed).map_err(plain)?;
    match kind {
        "ping" => Ok(Work::Ping),
        "stats" => Ok(Work::Stats),
        "shutdown" => Ok(Work::Shutdown),
        "analyze" => Ok(Work::Analyze {
            arch: p.arch().map_err(plain)?,
            topology: p.topology().map_err(plain)?,
            power_w: p.f64("power_w", defaults::POWER_W).map_err(plain)?,
            density: p.f64("density", defaults::DENSITY).map_err(plain)?,
        }),
        "sharing" => {
            let placement = match p.str("placement").map_err(plain)? {
                None => VrPlacement::Periphery,
                Some(s) => {
                    parse_placement(s).ok_or_else(|| plain(format!("unknown placement '{s}'")))?
                }
            };
            let modules = p.usize("modules", defaults::MODULES).map_err(plain)?;
            if modules == 0 {
                return Err(plain("param `modules` must be at least 1".into()));
            }
            Ok(Work::Sharing { placement, modules })
        }
        "sharing_sweep" => {
            let placement = match p.str("placement").map_err(plain)? {
                None => VrPlacement::Periphery,
                Some(s) => {
                    parse_placement(s).ok_or_else(|| plain(format!("unknown placement '{s}'")))?
                }
            };
            let modules = p.usize("modules", defaults::MODULES).map_err(plain)?;
            if modules == 0 {
                return Err(plain("param `modules` must be at least 1".into()));
            }
            let setpoints = p
                .f64_array("setpoints")
                .map_err(plain)?
                .ok_or_else(|| plain("param `setpoints` is required".into()))?;
            if setpoints.is_empty() {
                return Err(plain("param `setpoints` must not be empty".into()));
            }
            if setpoints.len() > defaults::MAX_SWEEP_SETPOINTS {
                return Err(plain(format!(
                    "param `setpoints` is capped at {} values",
                    defaults::MAX_SWEEP_SETPOINTS
                )));
            }
            Ok(Work::SharingSweep {
                placement,
                modules,
                setpoints,
            })
        }
        "droop" => Ok(Work::Droop {
            arch: p.arch().map_err(plain)?,
        }),
        "transient_stream" => {
            let chunk = p.usize("chunk", defaults::STREAM_CHUNK).map_err(plain)?;
            if chunk == 0 {
                return Err(plain("param `chunk` must be at least 1".into()));
            }
            if chunk > defaults::MAX_STREAM_CHUNK {
                return Err(plain(format!(
                    "param `chunk` is capped at {} samples",
                    defaults::MAX_STREAM_CHUNK
                )));
            }
            Ok(Work::TransientStream {
                arch: p.arch().map_err(plain)?,
                chunk,
            })
        }
        "mc" => {
            let samples = p.usize("samples", defaults::MC_SAMPLES).map_err(plain)?;
            if samples == 0 {
                return Err(plain("param `samples` must be at least 1".into()));
            }
            Ok(Work::Mc {
                arch: p.arch().map_err(plain)?,
                topology: p.topology().map_err(plain)?,
                samples,
                seed: p.u64("seed", defaults::MC_SEED).map_err(plain)?,
                threads: p.usize("threads", 0).map_err(plain)?,
            })
        }
        "impedance" => {
            if p.str("arch").map_err(plain)? == Some("all") {
                return Err((
                    ErrorCode::Unsupported,
                    "the multi-architecture impedance comparison is only served by the one-shot \
                     CLI (`vpd impedance --arch all`)"
                        .into(),
                ));
            }
            let d = vpd_core::ImpedanceSweepSettings::default();
            Ok(Work::Impedance {
                arch: p.arch().map_err(plain)?,
                fmin_hz: p.f64("fmin_hz", d.fmin.value()).map_err(plain)?,
                fmax_hz: p.f64("fmax_hz", d.fmax.value()).map_err(plain)?,
                points: p.usize("points", d.points).map_err(plain)?,
                profile: p.bool("profile", false).map_err(plain)?,
            })
        }
        "faults" => {
            let random_k = match p.get("random_k") {
                None => None,
                Some(v) => Some(
                    v.as_i64()
                        .and_then(|n| usize::try_from(n).ok())
                        .filter(|&k| k > 0)
                        .ok_or_else(|| {
                            plain("param `random_k` expects a positive integer".into())
                        })?,
                ),
            };
            Ok(Work::Faults {
                arch: p.arch().map_err(plain)?,
                topology: p.topology().map_err(plain)?,
                random_k,
                count: p.usize("count", defaults::FAULT_COUNT).map_err(plain)?,
                seed: p.u64("seed", defaults::FAULT_SEED).map_err(plain)?,
            })
        }
        other => Err(plain(format!("unknown request kind '{other}'"))),
    }
}

/// A response line, ready to serialize.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Echoed request id (absent when the request carried none or the
    /// line was too malformed to read one).
    pub id: Option<i64>,
    /// Success or typed failure.
    pub body: ResponseBody,
}

/// The payload half of a [`Response`].
#[derive(Clone, Debug, PartialEq)]
pub enum ResponseBody {
    /// The analysis succeeded.
    Ok {
        /// Request kind, echoed for log readability.
        kind: &'static str,
        /// Whether compiled state was found in the scenario cache. Meta
        /// only — `result` is bitwise-identical either way.
        cached: bool,
        /// The analysis result document (matches the one-shot CLI).
        result: Json,
    },
    /// One record of a streaming response. Records with `done: false`
    /// are incremental chunks; the record with `done: true` is the
    /// final summary. Streams that fail mid-flight end with a plain
    /// [`ResponseBody::Err`] record instead of a summary.
    Stream {
        /// Request kind, echoed for log readability.
        kind: &'static str,
        /// Whether compiled state was found in the scenario cache.
        cached: bool,
        /// Zero-based record sequence number within the stream.
        seq: usize,
        /// `false` for chunks, `true` for the final summary record.
        done: bool,
        /// Chunk payload or summary document.
        result: Json,
    },
    /// The request was rejected or failed.
    Err {
        /// Failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// A success response.
    #[must_use]
    pub fn ok(id: Option<i64>, kind: &'static str, cached: bool, result: Json) -> Self {
        Self {
            id,
            body: ResponseBody::Ok {
                kind,
                cached,
                result,
            },
        }
    }

    /// One record of a streaming response (`done = false` for chunks,
    /// `true` for the final summary).
    #[must_use]
    pub fn stream(
        id: Option<i64>,
        kind: &'static str,
        cached: bool,
        seq: usize,
        done: bool,
        result: Json,
    ) -> Self {
        Self {
            id,
            body: ResponseBody::Stream {
                kind,
                cached,
                seq,
                done,
                result,
            },
        }
    }

    /// Whether more records of the same response follow this one on the
    /// wire. Only a stream chunk (`done: false`) is non-terminal; plain
    /// responses, summaries, and errors all end their response.
    #[must_use]
    pub fn has_more(&self) -> bool {
        matches!(self.body, ResponseBody::Stream { done: false, .. })
    }

    /// A typed failure response.
    #[must_use]
    pub fn error(id: Option<i64>, code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            id,
            body: ResponseBody::Err {
                code,
                message: message.into(),
            },
        }
    }

    /// Serializes to the single-line wire form.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let id = match self.id {
            Some(id) => Json::Int(id),
            None => Json::Null,
        };
        match &self.body {
            ResponseBody::Ok {
                kind,
                cached,
                result,
            } => Json::obj([
                ("id", id),
                ("ok", Json::from(true)),
                ("kind", Json::from(*kind)),
                ("cached", Json::from(*cached)),
                ("result", result.clone()),
            ]),
            ResponseBody::Stream {
                kind,
                cached,
                seq,
                done,
                result,
            } => Json::obj([
                ("id", id),
                ("ok", Json::from(true)),
                ("kind", Json::from(*kind)),
                ("cached", Json::from(*cached)),
                ("done", Json::from(*done)),
                ("seq", Json::from(*seq)),
                ("result", result.clone()),
            ]),
            ResponseBody::Err { code, message } => Json::obj([
                ("id", id),
                ("ok", Json::from(false)),
                (
                    "error",
                    Json::obj([
                        ("code", Json::from(code.as_str())),
                        ("message", Json::from(message.as_str())),
                    ]),
                ),
            ]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_unknown_params_instead_of_defaulting() {
        let err =
            Request::parse_line(r#"{"id":3,"kind":"analyze","params":{"power":800}}"#).unwrap_err();
        assert_eq!(err.id, Some(3));
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("unknown param `power`"), "{err:?}");
        assert!(err.message.contains("power_w"), "{err:?}");

        let err = Request::parse_line(r#"{"id":4,"kind":"ping","params":{"x":1}}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);

        let err = Request::parse_line(r#"{"id":5,"kind":"mc","params":[1,2]}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("must be an object"), "{err:?}");
    }

    #[test]
    fn parses_a_full_analyze_request() {
        let req = Request::parse_line(
            r#"{"id":7,"kind":"analyze","deadline_ms":250,
               "params":{"arch":"a2","topology":"dpmih","power_w":500,"density":1.5}}"#,
        )
        .unwrap();
        assert_eq!(req.id, Some(7));
        assert_eq!(req.deadline_ms, Some(250));
        assert_eq!(
            req.work,
            Work::Analyze {
                arch: Architecture::InterposerEmbedded,
                topology: VrTopologyKind::Dpmih,
                power_w: 500.0,
                density: 1.5,
            }
        );
    }

    #[test]
    fn defaults_mirror_the_cli() {
        let req = Request::parse_line(r#"{"kind":"analyze","params":{"arch":"a1"}}"#).unwrap();
        assert_eq!(
            req.work,
            Work::Analyze {
                arch: Architecture::InterposerPeriphery,
                topology: VrTopologyKind::Dsch,
                power_w: 1000.0,
                density: 2.0,
            }
        );
        let req = Request::parse_line(r#"{"kind":"sharing"}"#).unwrap();
        assert_eq!(
            req.work,
            Work::Sharing {
                placement: VrPlacement::Periphery,
                modules: 48,
            }
        );
        let req = Request::parse_line(r#"{"kind":"mc","params":{"arch":"a0"}}"#).unwrap();
        assert_eq!(
            req.work,
            Work::Mc {
                arch: Architecture::Reference,
                topology: VrTopologyKind::Dsch,
                samples: 200,
                seed: 0x5eed,
                threads: 0,
            }
        );
        let req = Request::parse_line(r#"{"kind":"faults","params":{"arch":"a2"}}"#).unwrap();
        assert_eq!(
            req.work,
            Work::Faults {
                arch: Architecture::InterposerEmbedded,
                topology: VrTopologyKind::Dsch,
                random_k: None,
                count: 32,
                seed: 64023,
            }
        );
    }

    #[test]
    fn parses_a_sharing_sweep_request() {
        let req = Request::parse_line(
            r#"{"kind":"sharing_sweep","params":{"placement":"below","modules":24,"setpoints":[1.0,1.01,1.02]}}"#,
        )
        .unwrap();
        assert_eq!(
            req.work,
            Work::SharingSweep {
                placement: VrPlacement::BelowDie,
                modules: 24,
                setpoints: vec![1.0, 1.01, 1.02],
            }
        );
        assert_eq!(req.work.kind(), "sharing_sweep");

        for bad in [
            r#"{"kind":"sharing_sweep"}"#,
            r#"{"kind":"sharing_sweep","params":{"setpoints":[]}}"#,
            r#"{"kind":"sharing_sweep","params":{"setpoints":"1.0"}}"#,
            r#"{"kind":"sharing_sweep","params":{"setpoints":[1.0,"x"]}}"#,
            r#"{"kind":"sharing_sweep","params":{"setpoints":[1.0],"modules":0}}"#,
        ] {
            let e = Request::parse_line(bad).unwrap_err();
            assert_eq!(e.code, ErrorCode::BadRequest, "{bad}");
        }
    }

    #[test]
    fn malformed_lines_give_typed_errors() {
        let e = Request::parse_line("{nope").unwrap_err();
        assert_eq!(e.code, ErrorCode::Parse);
        assert_eq!(e.id, None);

        let e = Request::parse_line(r#"{"id":3,"kind":"frobnicate"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        assert_eq!(e.id, Some(3), "id echoed even on bad requests");

        let e = Request::parse_line(r#"{"id":4,"kind":"analyze"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        assert!(e.message.contains("arch"));

        let e = Request::parse_line(r#"{"kind":"analyze","params":{"arch":"a9"}}"#).unwrap_err();
        assert!(e.message.contains("unknown architecture"));

        let e =
            Request::parse_line(r#"{"kind":"mc","params":{"arch":"a1","samples":0}}"#).unwrap_err();
        assert!(e.message.contains("samples"));
    }

    #[test]
    fn parses_a_transient_stream_request() {
        let req = Request::parse_line(
            r#"{"kind":"transient_stream","params":{"arch":"a2","chunk":256}}"#,
        )
        .unwrap();
        assert_eq!(
            req.work,
            Work::TransientStream {
                arch: Architecture::InterposerEmbedded,
                chunk: 256,
            }
        );
        assert_eq!(req.work.kind(), "transient_stream");
        // Default chunk size.
        let req =
            Request::parse_line(r#"{"kind":"transient_stream","params":{"arch":"a0"}}"#).unwrap();
        assert!(matches!(
            req.work,
            Work::TransientStream { chunk: 1024, .. }
        ));

        for bad in [
            r#"{"kind":"transient_stream"}"#,
            r#"{"kind":"transient_stream","params":{"arch":"a0","chunk":0}}"#,
            r#"{"kind":"transient_stream","params":{"arch":"a0","chunk":65536}}"#,
            r#"{"kind":"transient_stream","params":{"arch":"a0","chunks":8}}"#,
        ] {
            let e = Request::parse_line(bad).unwrap_err();
            assert_eq!(e.code, ErrorCode::BadRequest, "{bad}");
        }
    }

    #[test]
    fn stream_records_serialize_and_classify_termination() {
        let chunk = Response::stream(
            Some(4),
            "transient_stream",
            true,
            0,
            false,
            Json::obj([("samples", Json::from(2usize))]),
        );
        assert_eq!(
            chunk.to_json().to_string(),
            r#"{"id":4,"ok":true,"kind":"transient_stream","cached":true,"done":false,"seq":0,"result":{"samples":2}}"#
        );
        assert!(chunk.has_more());
        let summary = Response::stream(Some(4), "transient_stream", true, 3, true, Json::Null);
        assert!(!summary.has_more());
        assert!(summary.to_json().to_string().contains("\"done\":true"));
        // Plain responses and errors never have more records.
        assert!(!Response::ok(Some(1), "ping", false, Json::Null).has_more());
        assert!(!Response::error(None, ErrorCode::Engine, "x").has_more());
    }

    #[test]
    fn impedance_all_is_unsupported() {
        let e = Request::parse_line(r#"{"id":9,"kind":"impedance","params":{"arch":"all"}}"#)
            .unwrap_err();
        assert_eq!(e.code, ErrorCode::Unsupported);
        assert_eq!(e.id, Some(9));
    }

    #[test]
    fn responses_serialize_to_one_line() {
        let ok = Response::ok(
            Some(1),
            "ping",
            false,
            Json::obj([("command", Json::from("ping"))]),
        );
        assert_eq!(
            ok.to_json().to_string(),
            r#"{"id":1,"ok":true,"kind":"ping","cached":false,"result":{"command":"ping"}}"#
        );
        let err = Response::error(None, ErrorCode::QueueFull, "queue is full (depth 2)");
        assert_eq!(
            err.to_json().to_string(),
            r#"{"id":null,"ok":false,"error":{"code":"queue_full","message":"queue is full (depth 2)"}}"#
        );
        assert!(!err.to_json().to_string().contains('\n'));
    }
}
