//! A bounded-queue worker pool on std threads, built for typed
//! backpressure: a full queue or a draining pool hands the job *back*
//! to the caller instead of blocking or dropping it, so the server can
//! answer with a machine-readable rejection.
//!
//! Each worker runs the handler with a [`WorkerScope`] carrying its
//! worker index (which addresses the worker's home cache shard) and a
//! coalescing hook, [`WorkerScope::take_matching`]: while holding a
//! job, a worker may pull further queued jobs that satisfy a predicate
//! — the mechanism behind batched block solves, where queued requests
//! sharing a compiled plan are dispatched as one multi-RHS solve.
//!
//! Two shutdown flavors match the two ways a serve session ends:
//!
//! * [`WorkerPool::finish`] — the input is exhausted (stdio EOF):
//!   everything already accepted runs to completion, then workers exit.
//! * [`WorkerPool::drain`] — a `shutdown` request arrived: in-flight
//!   jobs complete, queued jobs are handed back for typed rejection,
//!   new submissions are refused.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Why [`WorkerPool::submit`] handed a job back.
#[derive(Debug)]
pub enum SubmitError<T> {
    /// The bounded queue is at capacity (backpressure).
    QueueFull(T),
    /// The pool is draining or finished and refuses new work.
    Draining(T),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    Running,
    Finishing,
    Draining,
}

struct State<T> {
    queue: VecDeque<T>,
    mode: Mode,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    depth: usize,
}

/// The handler's view of the worker running it: the worker index plus
/// access to the shared queue for coalescing.
pub struct WorkerScope<'a, T> {
    inner: &'a Inner<T>,
    index: usize,
}

impl<T> WorkerScope<'_, T> {
    /// This worker's stable index in `0..workers` — used to address
    /// per-worker state (home cache shards).
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Pulls up to `max` queued jobs satisfying `pred` out of the
    /// shared queue, preserving their FIFO order; non-matching jobs
    /// keep their positions. Called by a handler that is already
    /// holding a job to coalesce compatible work into one dispatch
    /// (the queue lock is held only for the scan, never across the
    /// dispatch). Draining pools have no queued jobs left to match.
    pub fn take_matching(&self, max: usize, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        if max == 0 {
            return Vec::new();
        }
        let mut st = self.inner.state.lock().expect("pool state poisoned");
        let mut taken = Vec::new();
        let mut keep = VecDeque::with_capacity(st.queue.len());
        while let Some(job) = st.queue.pop_front() {
            if taken.len() < max && pred(&job) {
                taken.push(job);
            } else {
                keep.push_back(job);
            }
        }
        st.queue = keep;
        taken
    }
}

/// A fixed-size pool of workers draining a bounded FIFO queue.
pub struct WorkerPool<T: Send + 'static> {
    inner: Arc<Inner<T>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawns `workers` threads (min 1) running `handler` over
    /// submitted jobs, with at most `depth` jobs queued (min 1). The
    /// handler receives the [`WorkerScope`] of the worker running it.
    pub fn new<F>(workers: usize, depth: usize, handler: F) -> Self
    where
        F: Fn(&WorkerScope<'_, T>, T) + Send + Sync + 'static,
    {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                mode: Mode::Running,
            }),
            available: Condvar::new(),
            depth: depth.max(1),
        });
        let handler = Arc::new(handler);
        let handles = (0..workers.max(1))
            .map(|index| {
                let inner = Arc::clone(&inner);
                let handler = Arc::clone(&handler);
                std::thread::spawn(move || {
                    let scope = WorkerScope {
                        inner: &inner,
                        index,
                    };
                    loop {
                        let job = {
                            let mut st = inner.state.lock().expect("pool state poisoned");
                            loop {
                                if let Some(job) = st.queue.pop_front() {
                                    break Some(job);
                                }
                                if st.mode != Mode::Running {
                                    break None;
                                }
                                st = inner.available.wait(st).expect("pool state poisoned");
                            }
                        };
                        match job {
                            Some(job) => handler(&scope, job),
                            None => return,
                        }
                    }
                })
            })
            .collect();
        Self {
            inner,
            workers: Mutex::new(handles),
        }
    }

    /// Enqueues a job, or hands it back with a typed reason.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] at capacity, [`SubmitError::Draining`]
    /// once any shutdown has begun. The job rides inside the error so
    /// the caller can still answer it.
    pub fn submit(&self, job: T) -> Result<(), SubmitError<T>> {
        let mut st = self.inner.state.lock().expect("pool state poisoned");
        if st.mode != Mode::Running {
            return Err(SubmitError::Draining(job));
        }
        if st.queue.len() >= self.inner.depth {
            return Err(SubmitError::QueueFull(job));
        }
        st.queue.push_back(job);
        drop(st);
        self.inner.available.notify_one();
        Ok(())
    }

    /// Jobs currently waiting (diagnostic, and the admission-control
    /// depth signal).
    pub fn queued(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("pool state poisoned")
            .queue
            .len()
    }

    fn join_workers(&self) {
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("pool workers poisoned")
            .drain(..)
            .collect();
        for h in handles {
            h.join().expect("pool worker panicked");
        }
    }

    /// Completes **all** accepted jobs (queued included), then stops the
    /// workers and joins them. Idempotent; later submissions are
    /// refused as draining.
    pub fn finish(&self) {
        {
            let mut st = self.inner.state.lock().expect("pool state poisoned");
            if st.mode == Mode::Running {
                st.mode = Mode::Finishing;
            }
        }
        self.inner.available.notify_all();
        self.join_workers();
    }

    /// Completes only the jobs already **in flight**; queued jobs are
    /// pulled back and returned so the caller can reject them. Joins
    /// the workers. Idempotent (a second call returns an empty list).
    pub fn drain(&self) -> Vec<T> {
        let rejected = {
            let mut st = self.inner.state.lock().expect("pool state poisoned");
            st.mode = Mode::Draining;
            st.queue.drain(..).collect()
        };
        self.inner.available.notify_all();
        self.join_workers();
        rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn jobs_run_and_finish_completes_everything() {
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        let pool = WorkerPool::new(3, 64, move |_scope, n: usize| {
            d.fetch_add(n, Ordering::SeqCst);
        });
        for i in 1..=10 {
            pool.submit(i).expect("queue has room");
        }
        pool.finish();
        assert_eq!(done.load(Ordering::SeqCst), 55);
        assert!(matches!(pool.submit(99), Err(SubmitError::Draining(99))));
    }

    #[test]
    fn workers_know_their_index() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = Arc::clone(&seen);
        let pool = WorkerPool::new(1, 8, move |scope, _n: usize| {
            s.lock().unwrap().push(scope.index());
        });
        pool.submit(1).unwrap();
        pool.submit(2).unwrap();
        pool.finish();
        assert_eq!(*seen.lock().unwrap(), vec![0, 0]);
    }

    #[test]
    fn queue_full_hands_the_job_back() {
        // One worker blocked on a handshake; depth-1 queue: the first
        // job occupies the worker, the second fills the queue, and the
        // third must bounce with QueueFull.
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Mutex::new(release_rx);
        let pool = WorkerPool::new(1, 1, move |_scope, n: usize| {
            if n == 0 {
                started_tx.send(()).unwrap();
                release_rx.lock().unwrap().recv().unwrap();
            }
        });
        pool.submit(0).unwrap();
        started_rx.recv().unwrap(); // worker is now busy with job 0
        pool.submit(1).unwrap(); // fills the depth-1 queue
        match pool.submit(2) {
            Err(SubmitError::QueueFull(2)) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        release_tx.send(()).unwrap();
        pool.finish();
    }

    #[test]
    fn take_matching_coalesces_queued_jobs_in_fifo_order() {
        // A single worker holds job 0 on a handshake while the queue
        // fills; its handler then pulls the even jobs and leaves the
        // odd ones, which run normally afterwards.
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Mutex::new(release_rx);
        let batched = Arc::new(Mutex::new(Vec::new()));
        let solo = Arc::new(Mutex::new(Vec::new()));
        let (batched_in, solo_in) = (Arc::clone(&batched), Arc::clone(&solo));
        let pool = WorkerPool::new(1, 16, move |scope, n: usize| {
            if n == 0 {
                started_tx.send(()).unwrap();
                release_rx.lock().unwrap().recv().unwrap();
                let peers = scope.take_matching(2, |j| j % 2 == 0);
                batched_in.lock().unwrap().extend(peers);
            } else {
                solo_in.lock().unwrap().push(n);
            }
        });
        pool.submit(0).unwrap();
        started_rx.recv().unwrap();
        for n in 1..=6 {
            pool.submit(n).unwrap();
        }
        release_tx.send(()).unwrap();
        pool.finish();
        // max=2 even jobs coalesced in FIFO order; 6 stayed queued.
        assert_eq!(*batched.lock().unwrap(), vec![2, 4]);
        assert_eq!(*solo.lock().unwrap(), vec![1, 3, 5, 6]);
    }

    #[test]
    fn drain_completes_in_flight_and_returns_queued() {
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Mutex::new(release_rx);
        let completed = Arc::new(Mutex::new(Vec::new()));
        let completed_in = Arc::clone(&completed);
        let pool = Arc::new(WorkerPool::new(1, 16, move |_scope, n: usize| {
            if n == 0 {
                started_tx.send(()).unwrap();
                release_rx.lock().unwrap().recv().unwrap();
            }
            completed_in.lock().unwrap().push(n);
        }));
        pool.submit(0).unwrap();
        started_rx.recv().unwrap(); // job 0 is in flight
        pool.submit(1).unwrap();
        pool.submit(2).unwrap();
        // Unblock the in-flight job only once drain() has pulled the
        // queued jobs back (observable as an empty queue) — drain
        // itself blocks until the worker exits, so this needs a helper.
        let drainer = std::thread::spawn({
            let pool = Arc::clone(&pool);
            move || {
                while pool.queued() > 0 {
                    std::thread::yield_now();
                }
                release_tx.send(()).unwrap();
            }
        });
        let rejected = pool.drain();
        drainer.join().unwrap();
        assert_eq!(rejected, vec![1, 2], "queued jobs are handed back");
        assert_eq!(*completed.lock().unwrap(), vec![0], "in-flight completed");
        assert!(matches!(pool.submit(3), Err(SubmitError::Draining(3))));
        assert!(pool.drain().is_empty(), "drain is idempotent");
    }
}
