//! `vpd-serve` — a concurrent analysis service in front of the
//! vertical-power-delivery engines.
//!
//! Every engine in this workspace (loss breakdowns, current sharing,
//! droop, Monte-Carlo, fault sweeps, impedance profiles) was made cheap
//! to *re-run* by compiled plans and warm-started solvers; this crate
//! adds the layer that amortizes those plans **across requests**, the
//! way an inference server fronts compiled model artifacts:
//!
//! * [`proto`] — a line-delimited JSON request/response schema with
//!   ids, deadlines, protocol versioning, and typed error codes, all
//!   driven by one declarative per-kind field-spec table (no serde;
//!   parsing is `vpd_report::Json::parse`).
//! * [`cache`] — the scenario cache: per-worker LRU shards of compiled
//!   solver state with steal-on-miss, checked out for use so no lock
//!   spans a solve. [`ScenarioKey::from_work`] is the one place a
//!   request maps to its cache identity.
//! * [`pool`] — a bounded-queue worker pool with typed backpressure,
//!   two shutdown flavors (finish everything vs. drain), and a
//!   coalescing hook for batched dispatch.
//! * [`engine`] — the dispatcher mapping requests onto engines over
//!   the cache, including multi-request batched block solves.
//! * [`server`] — stdio and **multiplexed** TCP transports (one
//!   event-loop thread over nonblocking sockets, so idle connections
//!   cost buffers, not threads), deadline-aware admission control, and
//!   the `vpd call` client.
//!
//! # Determinism contract
//!
//! A request's `result` is bitwise-identical whether it hit the cache
//! or compiled cold, with one worker or many, batched with peers or
//! dispatched alone, and matches the one-shot `vpd --format json`
//! invocation byte for byte. Cache hits change the `cached` metadata
//! flag and the latency — never the result.
//!
//! ```
//! use std::io::Cursor;
//! use vpd_serve::{serve_lines, Ended, ServeConfig};
//!
//! let input = "{\"id\":1,\"kind\":\"sharing\",\"params\":{\"modules\":12}}\n";
//! let (out, ended) =
//!     serve_lines(Cursor::new(input), Vec::new(), &ServeConfig::default()).unwrap();
//! assert_eq!(ended, Ended::Eof);
//! let text = String::from_utf8(out).unwrap();
//! assert!(text.contains("\"ok\":true"));
//! assert!(text.contains("\"version\":2"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod pool;
pub mod proto;
pub mod server;

pub use cache::{CacheEntry, CacheStats, ScenarioCache, ScenarioKey};
pub use engine::{
    BatchStats, Dispatcher, FAULT_TRANSIENT_DT_NS, FAULT_TRANSIENT_SIM_US,
    FAULT_TRANSIENT_WINDOW_US,
};
pub use pool::{SubmitError, WorkerPool, WorkerScope};
pub use proto::{
    kind_catalog, ErrorCode, Request, RequestError, Response, ResponseBody, Work, PROTOCOL_VERSION,
};
pub use server::{call, serve_lines, Ended, ServeConfig, Server};
