//! The scenario cache: compiled solver state keyed by the scenario that
//! produced it, behind a sharded mutex.
//!
//! Entries are **checked out** ([`ScenarioCache::take`]) rather than
//! borrowed: the shard lock is held only for the map operation, never
//! across a solve, so a slow analysis on one key cannot block cache
//! traffic on another. After use the entry is checked back in
//! ([`ScenarioCache::put`]), which also refreshes its recency. Two
//! concurrent requests for the same key simply both miss — each
//! compiles cold, the last check-in wins, and the determinism contract
//! (cache hit ≡ cold compile, bit for bit) makes the race harmless.
//!
//! Eviction is least-recently-used per shard: the configured capacity
//! is split across shards, and a full shard evicts its own oldest
//! entry. Hits, misses, and evictions are surfaced through `vpd-obs`
//! (`serve.cache.*`) and through [`ScenarioCache::stats`].

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use vpd_core::{AnalysisSession, DroopScenario, FaultSweep, ImpedanceSweep, SharingSolver};
use vpd_report::Json;

/// What a cache entry is keyed by: the analysis kind plus the scenario
/// parameters that shape the compiled state. Float parameters enter as
/// IEEE-754 bit patterns so the key is `Eq`/`Hash` without tolerance
/// games.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// Entry family (`"session"`, `"sharing"`, `"faults"`, …).
    pub kind: &'static str,
    /// Canonical architecture tag (`"A0"`…`"A3@6V"`), empty when the
    /// entry is architecture-independent.
    pub arch: String,
    /// Remaining scenario parameters, each packed to 64 bits.
    pub params: Vec<u64>,
}

/// Compiled state held by the cache — exactly the expensive artifacts
/// PRs 1–4 taught each engine to reuse.
pub enum CacheEntry {
    /// A compiled die-grid analysis session (`analyze` and `mc` share
    /// these — the grid plan does not depend on the topology).
    Session(Box<AnalysisSession>),
    /// A compiled current-sharing solver.
    Sharing(Box<SharingSolver>),
    /// A compiled fault sweep (grid plan + anchored nominal solve).
    Faults(Box<FaultSweep>),
    /// A compiled AC impedance sweep plan.
    Impedance(Box<ImpedanceSweep>),
    /// A memoized droop report — the one-shot droop request returns a
    /// fixed document, so the scenario's finished report is the state.
    Droop(Json),
    /// A compiled transient droop scenario for streaming replays: the
    /// plan (and its LU cache) survives across `transient_stream`
    /// requests, so warm streams re-factor zero times.
    Transient(Box<DroopScenario>),
}

/// Point-in-time cache counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Check-outs that found compiled state.
    pub hits: u64,
    /// Check-outs that found nothing (including while checked out).
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct Shard {
    map: HashMap<CacheKey, (u64, CacheEntry)>,
    clock: u64,
    capacity: usize,
}

impl Shard {
    fn evict_lru(&mut self) -> bool {
        let oldest = self
            .map
            .iter()
            .min_by_key(|(_, (stamp, _))| *stamp)
            .map(|(k, _)| k.clone());
        match oldest {
            Some(k) => {
                self.map.remove(&k);
                true
            }
            None => false,
        }
    }
}

/// Sharded LRU of [`CacheEntry`] values. Capacity 0 disables caching
/// entirely (every `take` misses, every `put` is dropped) — the bench
/// uses that as its always-cold oracle.
pub struct ScenarioCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ScenarioCache {
    /// Builds a cache holding at most `capacity` compiled scenarios.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        // Split the capacity over up to 8 shards, never leaving a shard
        // with zero slots; the shard count is the number of nonempty
        // splits so the per-shard capacities sum exactly to `capacity`.
        let n_shards = capacity.clamp(1, 8);
        let shards = (0..n_shards)
            .map(|i| {
                let per = capacity / n_shards + usize::from(i < capacity % n_shards);
                Mutex::new(Shard {
                    map: HashMap::new(),
                    clock: 0,
                    capacity: per,
                })
            })
            .collect();
        Self {
            shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_index(&self, key: &CacheKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[self.shard_index(key)]
    }

    /// Checks an entry out of the cache, removing it so the caller can
    /// mutate it without holding any lock. Counts a hit or miss.
    pub fn take(&self, key: &CacheKey) -> Option<CacheEntry> {
        let taken = self
            .shard(key)
            .lock()
            .expect("cache shard poisoned")
            .map
            .remove(key)
            .map(|(_, entry)| entry);
        if taken.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            vpd_obs::incr("serve.cache.hits");
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            vpd_obs::incr("serve.cache.misses");
        }
        taken
    }

    /// Checks an entry (back) in as the most recently used for its key,
    /// evicting the shard's LRU entry if it is at capacity. A
    /// zero-capacity cache drops the entry.
    pub fn put(&self, key: CacheKey, entry: CacheEntry) {
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        if shard.capacity == 0 {
            return;
        }
        if !shard.map.contains_key(&key) && shard.map.len() >= shard.capacity && shard.evict_lru() {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            vpd_obs::incr("serve.cache.evictions");
        }
        shard.clock += 1;
        let stamp = shard.clock;
        shard.map.insert(key, (stamp, entry));
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(kind: &'static str, tag: &str) -> CacheKey {
        CacheKey {
            kind,
            arch: tag.to_owned(),
            params: Vec::new(),
        }
    }

    fn doc(n: i64) -> CacheEntry {
        CacheEntry::Droop(Json::Int(n))
    }

    fn doc_value(e: &CacheEntry) -> i64 {
        match e {
            CacheEntry::Droop(Json::Int(n)) => *n,
            _ => panic!("unexpected entry"),
        }
    }

    #[test]
    fn take_removes_and_put_restores() {
        let cache = ScenarioCache::new(4);
        assert!(cache.take(&key("droop", "A0")).is_none());
        cache.put(key("droop", "A0"), doc(7));
        let got = cache.take(&key("droop", "A0")).expect("hit");
        assert_eq!(doc_value(&got), 7);
        // Checked out: a second take misses until checked back in.
        assert!(cache.take(&key("droop", "A0")).is_none());
        cache.put(key("droop", "A0"), got);
        assert!(cache.take(&key("droop", "A0")).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 2));
    }

    #[test]
    fn lru_evicts_the_oldest_within_a_shard() {
        // Single shard (capacity 1 → one slot): the second insert must
        // displace the first.
        let cache = ScenarioCache::new(1);
        cache.put(key("droop", "A0"), doc(1));
        cache.put(key("droop", "A1"), doc(2));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.take(&key("droop", "A0")).is_none());
        assert_eq!(doc_value(&cache.take(&key("droop", "A1")).unwrap()), 2);
    }

    #[test]
    fn recency_is_refreshed_by_put() {
        // Capacity 16 → 8 shards of 2 slots. Probe for three keys that
        // hash to the same shard, so the test drives one LRU list.
        let cache = ScenarioCache::new(16);
        let mut same_shard = Vec::new();
        for i in 0..256 {
            let k = CacheKey {
                kind: "droop",
                arch: format!("t{i}"),
                params: Vec::new(),
            };
            if cache.shard_index(&k) == 0 {
                same_shard.push(k);
                if same_shard.len() == 3 {
                    break;
                }
            }
        }
        let [a, b, c] = <[CacheKey; 3]>::try_from(same_shard).expect("three keys in shard 0");
        assert_eq!(cache.shards[0].lock().unwrap().capacity, 2);
        cache.put(a.clone(), doc(1));
        cache.put(b.clone(), doc(2));
        // Touch `a`: check it out and back in, making `b` the LRU.
        let got = cache.take(&a).unwrap();
        cache.put(a.clone(), got);
        cache.put(c.clone(), doc(3));
        assert!(cache.take(&b).is_none(), "b was the LRU and is evicted");
        assert!(
            cache.take(&a).is_some(),
            "a survived: its recency was refreshed"
        );
        assert!(cache.take(&c).is_some());
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = ScenarioCache::new(0);
        cache.put(key("droop", "A0"), doc(1));
        assert!(cache.take(&key("droop", "A0")).is_none());
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().evictions, 0);
    }
}
