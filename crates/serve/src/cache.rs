//! The scenario cache: compiled solver state keyed by the scenario that
//! produced it, sharded per worker with work stealing on miss.
//!
//! Entries are **checked out** ([`ScenarioCache::take_for`]) rather
//! than borrowed: a shard lock is held only for the map operation,
//! never across a solve, so a slow analysis on one key cannot block
//! cache traffic on another. After use the entry is checked back in
//! ([`ScenarioCache::put_for`]), which also refreshes its recency. Two
//! concurrent requests for the same key simply both miss — each
//! compiles cold, the last check-in wins, and the determinism contract
//! (cache hit ≡ cold compile, bit for bit) makes the race harmless.
//!
//! # Worker sharding and stealing
//!
//! The cache keeps one shard per pool worker, so in steady state a
//! worker's check-outs and check-ins touch only its own lock — zero
//! cross-worker contention on the hot path. When a worker's home shard
//! misses, it **steals**: the other shards are probed (cheapest lock
//! walk, in order) and a hit migrates the entry to the stealing
//! worker's shard at check-in. Compiled state therefore follows the
//! work instead of being recompiled per worker.
//!
//! Eviction is least-recently-used per shard: the configured capacity
//! is split across shards, and a full shard evicts its own oldest
//! entry. Hits, misses, steals, and evictions are surfaced through
//! `vpd-obs` (`serve.cache.*`) and through [`ScenarioCache::stats`].
//!
//! # One audited keying API
//!
//! Every request kind derives its cache key through
//! [`ScenarioKey::from_work`] — the single place that decides which
//! request parameters shape compiled state (and therefore the key) and
//! which are RHS-only (and therefore deliberately excluded, like
//! `sharing_sweep` setpoints or `mc` sample counts).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use vpd_converters::VrTopologyKind;
use vpd_core::{
    AnalysisSession, CascadeLadder, DroopScenario, FaultImpedanceSweep, FaultSweep,
    FaultTransientSweep, ImpedanceSweep, SharingSolver, VrPlacement,
};
use vpd_report::Json;

use crate::proto::Work;

/// The paper-default die power (watts) pinned into `mc` session keys,
/// shared with the `analyze` default so the two kinds share entries.
pub(crate) const PAPER_POWER_W: f64 = 1000.0;
/// The paper-default current density (A/mm²), likewise.
pub(crate) const PAPER_DENSITY: f64 = 2.0;

pub(crate) fn topology_tag(t: VrTopologyKind) -> u64 {
    match t {
        VrTopologyKind::Dsch => 0,
        VrTopologyKind::Dpmih => 1,
        VrTopologyKind::ThreeLevelHybridDickson => 2,
    }
}

pub(crate) fn placement_tag(p: VrPlacement) -> u64 {
    match p {
        VrPlacement::Periphery => 0,
        VrPlacement::BelowDie => 1,
    }
}

/// What a cache entry is keyed by: the analysis kind plus the scenario
/// parameters that shape the compiled state. Float parameters enter as
/// IEEE-754 bit patterns so the key is `Eq`/`Hash` without tolerance
/// games.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ScenarioKey {
    /// Entry family (`"session"`, `"sharing"`, `"faults"`, …).
    pub kind: &'static str,
    /// Canonical architecture tag (`"A0"`…`"A3@6V"`), empty when the
    /// entry is architecture-independent.
    pub arch: String,
    /// Remaining scenario parameters, each packed to 64 bits.
    pub params: Vec<u64>,
}

impl ScenarioKey {
    /// The one audited constructor: derives the cache key for a unit of
    /// work, or `None` for kinds that carry no compiled state (`ping`,
    /// `stats`, `kinds`, `shutdown`).
    ///
    /// Keying decisions concentrated here:
    ///
    /// * `analyze` and `mc` share `"session"` entries — the compiled
    ///   grid plan depends on (architecture, power, density), never on
    ///   the topology, samples, seed, or thread count. `mc` always runs
    ///   at the paper defaults, so its key pins
    ///   [`PAPER_POWER_W`]/[`PAPER_DENSITY`].
    /// * `sharing_sweep` keys on (placement, modules) only — setpoints
    ///   are RHS-only restamps against the same factorization, which is
    ///   also what makes the kind batchable. It does **not** share the
    ///   plain `sharing` entry: the sweep pins the direct-Cholesky plan
    ///   mode while one-shot sharing stays in the CLI's warm-CG mode.
    /// * `faults` keys on the topology (the sweep pre-rates each
    ///   module against its topology limits); `impedance`, `droop`, and
    ///   `transient_stream` key on the architecture alone.
    #[must_use]
    pub fn from_work(work: &Work) -> Option<Self> {
        match work {
            Work::Ping | Work::Stats | Work::Kinds | Work::Shutdown => None,
            Work::Analyze {
                arch,
                power_w,
                density,
                ..
            } => Some(Self {
                kind: "session",
                arch: arch.name(),
                params: vec![power_w.to_bits(), density.to_bits()],
            }),
            Work::Mc { arch, .. } => Some(Self {
                kind: "session",
                arch: arch.name(),
                params: vec![PAPER_POWER_W.to_bits(), PAPER_DENSITY.to_bits()],
            }),
            Work::Sharing { placement, modules } => Some(Self {
                kind: "sharing",
                arch: String::new(),
                params: vec![placement_tag(*placement), *modules as u64],
            }),
            Work::SharingSweep {
                placement, modules, ..
            } => Some(Self {
                kind: "sharing_sweep",
                arch: String::new(),
                params: vec![placement_tag(*placement), *modules as u64],
            }),
            Work::Droop { arch } => Some(Self {
                kind: "droop",
                arch: arch.name(),
                params: Vec::new(),
            }),
            Work::TransientStream { arch, .. } => Some(Self {
                kind: "transient",
                arch: arch.name(),
                params: Vec::new(),
            }),
            Work::Impedance { arch, .. } => Some(Self {
                kind: "impedance",
                arch: arch.name(),
                params: Vec::new(),
            }),
            Work::Faults { arch, topology, .. } => Some(Self {
                kind: "faults",
                arch: arch.name(),
                params: vec![topology_tag(*topology)],
            }),
            // The compiled AC plan depends on the architecture alone:
            // scenarios and the frequency grid are evaluation-time
            // restamps against the same plan.
            Work::FaultImpedance { arch, .. } => Some(Self {
                kind: "fault_impedance",
                arch: arch.name(),
                params: Vec::new(),
            }),
            Work::FaultTransient { arch, .. } => Some(Self {
                kind: "fault_transient",
                arch: arch.name(),
                params: Vec::new(),
            }),
            // The cascade ladder pre-rates modules against their
            // topology limits, so the topology shapes compiled state.
            Work::Survival { arch, topology } => Some(Self {
                kind: "survival",
                arch: arch.name(),
                params: vec![topology_tag(*topology)],
            }),
            // User scenarios key on the document's spelling-invariant
            // content hash (FNV-1a over the canonical rendering): two
            // spellings of the same scenario — including an inline copy
            // of a builtin — share one compiled session.
            Work::Scenario { doc } => Some(Self {
                kind: "scenario",
                arch: String::new(),
                params: vec![doc.content_hash()],
            }),
        }
    }
}

/// Compiled state held by the cache — exactly the expensive artifacts
/// PRs 1–4 taught each engine to reuse.
pub enum CacheEntry {
    /// A compiled die-grid analysis session (`analyze` and `mc` share
    /// these — the grid plan does not depend on the topology).
    Session(Box<AnalysisSession>),
    /// A compiled current-sharing solver.
    Sharing(Box<SharingSolver>),
    /// A compiled fault sweep (grid plan + anchored nominal solve).
    Faults(Box<FaultSweep>),
    /// A compiled AC impedance sweep plan.
    Impedance(Box<ImpedanceSweep>),
    /// A memoized droop report — the one-shot droop request returns a
    /// fixed document, so the scenario's finished report is the state.
    Droop(Json),
    /// A compiled transient droop scenario for streaming replays: the
    /// plan (and its LU cache) survives across `transient_stream`
    /// requests, so warm streams re-factor zero times.
    Transient(Box<DroopScenario>),
    /// A compiled faulted-impedance sweep: the AC plan every fault
    /// scenario restamps value-only.
    FaultImpedance(Box<FaultImpedanceSweep>),
    /// A compiled VR-failure transient sweep: the plan plus its
    /// per-switch-configuration LU cache.
    FaultTransient(Box<FaultTransientSweep>),
    /// A compiled electro-thermal cascade ladder (grid solver, thermal
    /// mesh, and derating model).
    Cascade(Box<CascadeLadder>),
    /// A user scenario's compiled die-grid session, keyed by the
    /// document's content hash. Distinct from [`CacheEntry::Session`]:
    /// that family is keyed by (architecture, power, density) wire
    /// params, this one by the full document.
    Scenario(Box<AnalysisSession>),
}

/// Point-in-time cache counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Check-outs that found compiled state (home shard or stolen).
    pub hits: u64,
    /// Check-outs that found nothing (including while checked out).
    pub misses: u64,
    /// Hits that found the entry in another worker's shard and
    /// migrated it.
    pub steals: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct Shard {
    map: HashMap<ScenarioKey, (u64, CacheEntry)>,
    clock: u64,
    capacity: usize,
}

impl Shard {
    fn evict_lru(&mut self) -> bool {
        let oldest = self
            .map
            .iter()
            .min_by_key(|(_, (stamp, _))| *stamp)
            .map(|(k, _)| k.clone());
        match oldest {
            Some(k) => {
                self.map.remove(&k);
                true
            }
            None => false,
        }
    }
}

/// Worker-sharded LRU of [`CacheEntry`] values. Capacity 0 disables
/// caching entirely (every `take` misses, every `put` is dropped) — the
/// bench uses that as its always-cold oracle.
pub struct ScenarioCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    steals: AtomicU64,
    evictions: AtomicU64,
}

impl ScenarioCache {
    /// A single-shard cache holding at most `capacity` compiled
    /// scenarios — the stdio/one-worker shape.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::for_workers(capacity, 1)
    }

    /// A cache sharded across `workers` home shards (min 1), splitting
    /// `capacity` slots across them such that the per-shard capacities
    /// sum exactly to `capacity`. Workers address their home shard by
    /// index in [`ScenarioCache::take_for`] / [`ScenarioCache::put_for`].
    #[must_use]
    pub fn for_workers(capacity: usize, workers: usize) -> Self {
        let n_shards = workers.max(1);
        let shards = (0..n_shards)
            .map(|i| {
                let per = capacity / n_shards + usize::from(i < capacity % n_shards);
                Mutex::new(Shard {
                    map: HashMap::new(),
                    clock: 0,
                    capacity: per,
                })
            })
            .collect();
        Self {
            shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn home(&self, worker: usize) -> usize {
        worker % self.shards.len()
    }

    /// Checks an entry out of the cache for `worker`, removing it so
    /// the caller can mutate it without holding any lock. The worker's
    /// home shard is probed first; on a home miss the remaining shards
    /// are probed in order and a hit **steals** the entry (it will
    /// re-home to this worker at check-in). Counts a hit or miss, and a
    /// steal when the hit came from another shard.
    pub fn take_for(&self, worker: usize, key: &ScenarioKey) -> Option<CacheEntry> {
        let home = self.home(worker);
        let probe = |shard: &Mutex<Shard>| {
            shard
                .lock()
                .expect("cache shard poisoned")
                .map
                .remove(key)
                .map(|(_, entry)| entry)
        };
        let mut stolen = false;
        let mut taken = probe(&self.shards[home]);
        if taken.is_none() {
            for (i, shard) in self.shards.iter().enumerate() {
                if i == home {
                    continue;
                }
                taken = probe(shard);
                if taken.is_some() {
                    stolen = true;
                    break;
                }
            }
        }
        if taken.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            vpd_obs::incr("serve.cache.hits");
            if stolen {
                self.steals.fetch_add(1, Ordering::Relaxed);
                vpd_obs::incr("serve.cache.steals");
            }
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            vpd_obs::incr("serve.cache.misses");
        }
        taken
    }

    /// Checks an entry (back) in to `worker`'s home shard as its most
    /// recently used entry, evicting that shard's LRU entry if it is at
    /// capacity. A zero-capacity shard drops the entry.
    pub fn put_for(&self, worker: usize, key: ScenarioKey, entry: CacheEntry) {
        let mut shard = self.shards[self.home(worker)]
            .lock()
            .expect("cache shard poisoned");
        if shard.capacity == 0 {
            return;
        }
        if !shard.map.contains_key(&key) && shard.map.len() >= shard.capacity && shard.evict_lru() {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            vpd_obs::incr("serve.cache.evictions");
        }
        shard.clock += 1;
        let stamp = shard.clock;
        shard.map.insert(key, (stamp, entry));
    }

    /// [`ScenarioCache::take_for`] as worker 0 (single-worker callers).
    pub fn take(&self, key: &ScenarioKey) -> Option<CacheEntry> {
        self.take_for(0, key)
    }

    /// [`ScenarioCache::put_for`] as worker 0 (single-worker callers).
    pub fn put(&self, key: ScenarioKey, entry: CacheEntry) {
        self.put_for(0, key, entry)
    }

    /// Home shards (== the worker count the cache was built for).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(kind: &'static str, tag: &str) -> ScenarioKey {
        ScenarioKey {
            kind,
            arch: tag.to_owned(),
            params: Vec::new(),
        }
    }

    fn doc(n: i64) -> CacheEntry {
        CacheEntry::Droop(Json::Int(n))
    }

    fn doc_value(e: &CacheEntry) -> i64 {
        match e {
            CacheEntry::Droop(Json::Int(n)) => *n,
            _ => panic!("unexpected entry"),
        }
    }

    #[test]
    fn take_removes_and_put_restores() {
        let cache = ScenarioCache::new(4);
        assert!(cache.take(&key("droop", "A0")).is_none());
        cache.put(key("droop", "A0"), doc(7));
        let got = cache.take(&key("droop", "A0")).expect("hit");
        assert_eq!(doc_value(&got), 7);
        // Checked out: a second take misses until checked back in.
        assert!(cache.take(&key("droop", "A0")).is_none());
        cache.put(key("droop", "A0"), got);
        assert!(cache.take(&key("droop", "A0")).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.steals), (2, 2, 0));
    }

    #[test]
    fn lru_evicts_the_oldest_within_a_shard() {
        // Single shard (one worker), capacity 1: the second insert must
        // displace the first.
        let cache = ScenarioCache::new(1);
        cache.put(key("droop", "A0"), doc(1));
        cache.put(key("droop", "A1"), doc(2));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.take(&key("droop", "A0")).is_none());
        assert_eq!(doc_value(&cache.take(&key("droop", "A1")).unwrap()), 2);
    }

    #[test]
    fn recency_is_refreshed_by_put() {
        // One worker, two slots: touching `a` must make `b` the LRU.
        let cache = ScenarioCache::for_workers(2, 1);
        let (a, b, c) = (key("droop", "A0"), key("droop", "A1"), key("droop", "A2"));
        cache.put(a.clone(), doc(1));
        cache.put(b.clone(), doc(2));
        // Touch `a`: check it out and back in, making `b` the LRU.
        let got = cache.take(&a).unwrap();
        cache.put(a.clone(), got);
        cache.put(c.clone(), doc(3));
        assert!(cache.take(&b).is_none(), "b was the LRU and is evicted");
        assert!(
            cache.take(&a).is_some(),
            "a survived: its recency was refreshed"
        );
        assert!(cache.take(&c).is_some());
    }

    #[test]
    fn workers_steal_across_shards_and_rehome_the_entry() {
        let cache = ScenarioCache::for_workers(8, 4);
        assert_eq!(cache.shard_count(), 4);
        // Worker 0 compiles and checks in; worker 3's home shard is
        // empty, so its take must steal from worker 0's shard.
        cache.put_for(0, key("droop", "A0"), doc(9));
        let got = cache.take_for(3, &key("droop", "A0")).expect("stolen hit");
        assert_eq!(doc_value(&got), 9);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.steals), (1, 0, 1));
        // Check-in re-homes the entry to worker 3's shard: a second
        // take by worker 3 is now a home hit, not a steal.
        cache.put_for(3, key("droop", "A0"), got);
        assert!(cache.take_for(3, &key("droop", "A0")).is_some());
        assert_eq!(cache.stats().steals, 1, "home hit counts no steal");
    }

    #[test]
    fn capacity_splits_exactly_across_worker_shards() {
        // 5 slots over 4 workers: shard capacities 2,1,1,1. Fill each
        // worker's shard past its share and count survivors.
        let cache = ScenarioCache::for_workers(5, 4);
        for w in 0..4 {
            for i in 0..3 {
                cache.put_for(w, key("droop", &format!("w{w}i{i}")), doc(i));
            }
        }
        assert_eq!(cache.stats().entries, 5);
        assert_eq!(cache.stats().evictions, 7);
    }

    #[test]
    fn from_work_concentrates_every_keying_decision() {
        let parse = |line: &str| crate::proto::Request::parse_line(line).unwrap().work;
        // Meta kinds carry no compiled state.
        for line in [
            r#"{"kind":"ping"}"#,
            r#"{"kind":"stats"}"#,
            r#"{"kind":"kinds"}"#,
            r#"{"kind":"shutdown"}"#,
        ] {
            assert!(ScenarioKey::from_work(&parse(line)).is_none(), "{line}");
        }
        // analyze and mc share the session family at paper defaults.
        let analyze =
            ScenarioKey::from_work(&parse(r#"{"kind":"analyze","params":{"arch":"a2"}}"#)).unwrap();
        let mc = ScenarioKey::from_work(&parse(
            r#"{"kind":"mc","params":{"arch":"a2","samples":7,"seed":3}}"#,
        ))
        .unwrap();
        assert_eq!(analyze, mc, "mc at paper defaults reuses analyze sessions");
        // Non-default analyze power forks the key.
        let hot = ScenarioKey::from_work(&parse(
            r#"{"kind":"analyze","params":{"arch":"a2","power_w":750}}"#,
        ))
        .unwrap();
        assert_ne!(analyze, hot);
        // sharing_sweep excludes setpoints (RHS-only) but is a distinct
        // family from plain sharing (different plan mode).
        let s1 = ScenarioKey::from_work(&parse(
            r#"{"kind":"sharing_sweep","params":{"modules":24,"setpoints":[1.0]}}"#,
        ))
        .unwrap();
        let s2 = ScenarioKey::from_work(&parse(
            r#"{"kind":"sharing_sweep","params":{"modules":24,"setpoints":[0.98,1.02]}}"#,
        ))
        .unwrap();
        assert_eq!(s1, s2, "setpoints are RHS-only and must not key");
        let sharing =
            ScenarioKey::from_work(&parse(r#"{"kind":"sharing","params":{"modules":24}}"#))
                .unwrap();
        assert_ne!(s1, sharing);
        // The dynamic-fault kinds: scenarios and frequency grids are
        // evaluation-time, so fault_impedance keys on the architecture
        // alone; survival keys on the topology (the ladder pre-rates
        // modules against topology limits).
        let z1 = ScenarioKey::from_work(&parse(
            r#"{"kind":"fault_impedance","params":{"arch":"a2","random_k":2,"count":9,"points":16}}"#,
        ))
        .unwrap();
        let z2 = ScenarioKey::from_work(&parse(
            r#"{"kind":"fault_impedance","params":{"arch":"a2"}}"#,
        ))
        .unwrap();
        assert_eq!(z1, z2, "scenarios and grids are restamp-only");
        let t1 = ScenarioKey::from_work(&parse(
            r#"{"kind":"fault_transient","params":{"arch":"a2","count":8}}"#,
        ))
        .unwrap();
        let t2 = ScenarioKey::from_work(&parse(
            r#"{"kind":"fault_transient","params":{"arch":"a2"}}"#,
        ))
        .unwrap();
        assert_eq!(t1, t2, "the failure-time grid is restamp-only");
        let v1 = ScenarioKey::from_work(&parse(
            r#"{"kind":"survival","params":{"arch":"a1","topology":"dsch"}}"#,
        ))
        .unwrap();
        let v2 = ScenarioKey::from_work(&parse(
            r#"{"kind":"survival","params":{"arch":"a1","topology":"dpmih"}}"#,
        ))
        .unwrap();
        assert_ne!(v1, v2);
        // faults keys on topology; mc does not.
        let f1 = ScenarioKey::from_work(&parse(
            r#"{"kind":"faults","params":{"arch":"a1","topology":"dsch"}}"#,
        ))
        .unwrap();
        let f2 = ScenarioKey::from_work(&parse(
            r#"{"kind":"faults","params":{"arch":"a1","topology":"dpmih"}}"#,
        ))
        .unwrap();
        assert_ne!(f1, f2);
        // User scenarios key on the content hash: the checked-in a3-12
        // builtin and a minimal inline spelling of the same scenario
        // share one compiled session.
        let g1 = ScenarioKey::from_work(&parse(r#"{"kind":"scenario","params":{"name":"a3-12"}}"#))
            .unwrap();
        let g2 = ScenarioKey::from_work(&parse(
            r#"{"kind":"scenario","params":{"doc":"[scenario]\narchitecture = \"a3\"\nbus_v = 12\n"}}"#,
        ))
        .unwrap();
        assert_eq!(g1.kind, "scenario");
        assert_eq!(g1, g2, "equivalent spellings must share a cache key");
        let g3 = ScenarioKey::from_work(&parse(r#"{"kind":"scenario","params":{"name":"a3-6"}}"#))
            .unwrap();
        assert_ne!(g1, g3);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = ScenarioCache::for_workers(0, 3);
        cache.put_for(1, key("droop", "A0"), doc(1));
        assert!(cache.take_for(1, &key("droop", "A0")).is_none());
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().evictions, 0);
    }
}
