//! Request dispatch: each analysis kind checks its compiled state out
//! of the [`ScenarioCache`], runs the engine, and checks the state back
//! in. Every kind derives its cache key through the one audited
//! constructor, [`ScenarioKey::from_work`].
//!
//! # Determinism contract
//!
//! A request's `result` document is **bitwise-identical** whether its
//! compiled state was found in the cache or built cold, and identical
//! to the one-shot `vpd --format json` invocation with the same
//! parameters. The mechanism is the warm-start anchor introduced in
//! PR 1: after a successful solve the solution is anchored, and a
//! re-solve of an identical system converges at CG iteration zero,
//! returning the anchored bits unchanged. The fault and impedance
//! engines take `&self` and are pure over their compiled plans, so
//! reuse is trivially bitwise there; the droop engine compiles no
//! reusable plan, so its cache entry is the finished document itself.
//!
//! # Batched block solves
//!
//! `sharing_sweep` requests that share a `(placement, modules)`
//! compiled plan can be dispatched **as one batch**
//! ([`Dispatcher::dispatch_sharing_sweep_batch`]): their setpoint lists
//! are concatenated into a single multi-RHS block solve against one
//! factorization, and the per-request documents are cut back out of
//! the block. The batch is bitwise-identical to dispatching the same
//! requests one at a time because the direct-Cholesky block solve is
//! per-column independent (PR 6's `solve_block_into` contract: `k`
//! stacked right-hand sides produce exactly the `k` single-solve
//! solutions) and the single-request path runs through the same code
//! with a batch of one.

use std::sync::atomic::{AtomicU64, Ordering};

use vpd_converters::VrTopologyKind;
use vpd_core::{
    run_tolerance_with, simulate_droop, AnalysisOptions, AnalysisSession, Architecture,
    Calibration, CascadeLadder, CascadeSettings, DcPlanMode, DroopScenario, FaultImpedanceSweep,
    FaultScenario, FaultSweep, FaultTransientSweep, ImpedanceSweep, ImpedanceSweepSettings,
    LoadStep, McSettings, PdnModel, SharingReport, SharingSolver, SystemSpec, VrFailureScenario,
    VrPlacement,
};
use vpd_report::{Json, Render};
use vpd_scenario::ScenarioDoc;
use vpd_units::{Amps, CurrentDensity, Hertz, Seconds, Volts, Watts};

use crate::cache::{CacheEntry, CacheStats, ScenarioCache, ScenarioKey};
use crate::proto::{kind_catalog, ErrorCode, Work, PROTOCOL_VERSION};

/// A handler outcome: the result document plus whether compiled state
/// was found in the cache (meta only — the document bits never depend
/// on it).
pub type DispatchResult = Result<(Json, bool), (ErrorCode, String)>;

fn engine_err(e: impl std::fmt::Display) -> (ErrorCode, String) {
    (ErrorCode::Engine, e.to_string())
}

/// Point-in-time batching counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BatchStats {
    /// Multi-request batches dispatched (batches of one count as plain
    /// dispatches, not here).
    pub batches: u64,
    /// Requests that rode along in a batch beyond its first member.
    pub coalesced: u64,
    /// Total right-hand-side columns solved through batched dispatch.
    pub columns: u64,
}

/// Routes [`Work`] to the engines over a shared [`ScenarioCache`].
pub struct Dispatcher {
    cache: ScenarioCache,
    calib: Calibration,
    batches: AtomicU64,
    coalesced: AtomicU64,
    batch_columns: AtomicU64,
}

impl Dispatcher {
    /// A dispatcher whose cache holds at most `cache_capacity` compiled
    /// scenarios (0 disables caching — every request compiles cold) in
    /// a single shard.
    #[must_use]
    pub fn new(cache_capacity: usize) -> Self {
        Self::with_workers(cache_capacity, 1)
    }

    /// A dispatcher whose cache is sharded across `workers` home
    /// shards with stealing on miss; worker `i` should dispatch through
    /// [`Dispatcher::dispatch_on`] with its index.
    #[must_use]
    pub fn with_workers(cache_capacity: usize, workers: usize) -> Self {
        Self {
            cache: ScenarioCache::for_workers(cache_capacity, workers),
            calib: Calibration::paper_default(),
            batches: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            batch_columns: AtomicU64::new(0),
        }
    }

    /// Current cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Current batching counters.
    #[must_use]
    pub fn batch_stats(&self) -> BatchStats {
        BatchStats {
            batches: self.batches.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            columns: self.batch_columns.load(Ordering::Relaxed),
        }
    }

    /// Runs one unit of work to completion as worker 0.
    ///
    /// # Errors
    ///
    /// A typed `(code, message)` pair ready to become an error
    /// response; engine failures carry [`ErrorCode::Engine`].
    pub fn dispatch(&self, work: &Work) -> DispatchResult {
        self.dispatch_on(0, work)
    }

    /// Runs one unit of work to completion on behalf of pool worker
    /// `worker`, whose home cache shard serves the check-out/check-in.
    ///
    /// # Errors
    ///
    /// A typed `(code, message)` pair ready to become an error
    /// response; engine failures carry [`ErrorCode::Engine`].
    pub fn dispatch_on(&self, worker: usize, work: &Work) -> DispatchResult {
        match work {
            Work::Ping => Ok((Json::obj([("command", Json::from("ping"))]), false)),
            Work::Shutdown => Ok((Json::obj([("command", Json::from("shutdown"))]), false)),
            Work::Stats => self.stats(),
            Work::Kinds => Ok((
                Json::obj([
                    ("command", Json::from("kinds")),
                    ("version", Json::Int(PROTOCOL_VERSION)),
                    ("kinds", kind_catalog()),
                ]),
                false,
            )),
            Work::Analyze {
                arch,
                topology,
                power_w,
                density,
            } => self.analyze(worker, work, *arch, *topology, *power_w, *density),
            Work::Sharing { placement, modules } => {
                self.sharing(worker, work, *placement, *modules)
            }
            Work::SharingSweep {
                placement,
                modules,
                setpoints,
            } => {
                let mut results = self.sharing_sweep_batch(
                    worker,
                    *placement,
                    *modules,
                    std::slice::from_ref(setpoints),
                );
                results.pop().expect("batch of one yields one result")
            }
            Work::Droop { arch } => self.droop(worker, work, *arch),
            Work::Mc {
                arch,
                topology,
                samples,
                seed,
                threads,
            } => self.mc(worker, work, *arch, *topology, *samples, *seed, *threads),
            Work::Impedance {
                arch,
                fmin_hz,
                fmax_hz,
                points,
                profile,
            } => self.impedance(worker, work, *arch, *fmin_hz, *fmax_hz, *points, *profile),
            Work::Faults {
                arch,
                topology,
                random_k,
                count,
                seed,
            } => self.faults(worker, work, *arch, *topology, *random_k, *count, *seed),
            Work::FaultImpedance {
                arch,
                random_k,
                count,
                seed,
                fmin_hz,
                fmax_hz,
                points,
            } => self.fault_impedance(
                worker, work, *arch, *random_k, *count, *seed, *fmin_hz, *fmax_hz, *points,
            ),
            Work::FaultTransient { arch, count } => {
                self.fault_transient(worker, work, *arch, *count)
            }
            Work::Survival { arch, topology } => self.survival(worker, work, *arch, *topology),
            Work::Scenario { doc } => self.scenario(worker, work, doc),
            // The server streams this kind chunk-by-chunk; dispatching
            // it directly drains the same run silently and returns the
            // summary document — bitwise what the stream's final record
            // carries.
            Work::TransientStream { arch, chunk } => {
                let mut run = self.begin_transient_stream_on(worker, *arch, *chunk)?;
                while run.next_chunk()?.is_some() {}
                let cached = run.cached();
                Ok((run.finish(), cached))
            }
        }
    }

    /// Dispatches a batch of `sharing_sweep` requests that share one
    /// `(placement, modules)` compiled plan: a single cache check-out,
    /// one factorization, one multi-RHS block solve over the
    /// concatenated setpoint lists, and one result document per
    /// request, in order. Bitwise-identical to calling
    /// [`Dispatcher::dispatch_on`] once per request (see the module
    /// docs for why).
    #[must_use]
    pub fn dispatch_sharing_sweep_batch(
        &self,
        worker: usize,
        placement: VrPlacement,
        modules: usize,
        sweeps: &[Vec<f64>],
    ) -> Vec<DispatchResult> {
        self.sharing_sweep_batch(worker, placement, modules, sweeps)
    }

    fn stats(&self) -> DispatchResult {
        let s = self.cache.stats();
        let b = self.batch_stats();
        let metrics = Json::parse(&vpd_obs::snapshot().to_json("serve")).unwrap_or(Json::Null);
        Ok((
            Json::obj([
                ("command", Json::from("stats")),
                (
                    "cache",
                    Json::obj([
                        ("hits", Json::from(s.hits as usize)),
                        ("misses", Json::from(s.misses as usize)),
                        ("steals", Json::from(s.steals as usize)),
                        ("evictions", Json::from(s.evictions as usize)),
                        ("entries", Json::from(s.entries)),
                    ]),
                ),
                (
                    "batch",
                    Json::obj([
                        ("batches", Json::from(b.batches as usize)),
                        ("coalesced", Json::from(b.coalesced as usize)),
                        ("columns", Json::from(b.columns as usize)),
                    ]),
                ),
                ("metrics", metrics),
            ]),
            false,
        ))
    }

    /// Checks a compiled analysis session out of the cache, or builds
    /// one cold. `analyze` and `mc` share entries: the grid plan
    /// depends on (architecture, spec), never on the topology (see
    /// [`ScenarioKey::from_work`]).
    fn take_session(
        &self,
        worker: usize,
        key: ScenarioKey,
        arch: Architecture,
        spec: &SystemSpec,
    ) -> Result<(ScenarioKey, Box<AnalysisSession>, bool), (ErrorCode, String)> {
        match self.cache.take_for(worker, &key) {
            Some(CacheEntry::Session(s)) => Ok((key, s, true)),
            _ => {
                let session =
                    AnalysisSession::new(arch, spec, &self.calib, &AnalysisOptions::default())
                        .map_err(engine_err)?;
                Ok((key, Box::new(session), false))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn analyze(
        &self,
        worker: usize,
        work: &Work,
        arch: Architecture,
        topology: VrTopologyKind,
        power_w: f64,
        density: f64,
    ) -> DispatchResult {
        let spec = SystemSpec::new(
            Volts::new(48.0),
            Volts::new(1.0),
            Watts::new(power_w),
            CurrentDensity::from_amps_per_square_millimeter(density),
        )
        .map_err(|e| (ErrorCode::BadRequest, e.to_string()))?;
        let key = ScenarioKey::from_work(work).expect("analyze has a key");
        let (key, mut session, cached) = self.take_session(worker, key, arch, &spec)?;
        let outcome = session.analyze(topology, &self.calib);
        let report = match outcome {
            Ok(report) => {
                session.anchor();
                report
            }
            Err(e) => {
                // The compiled plan is still sound (the failure is the
                // scenario's, e.g. a capacity check): keep it warm.
                self.cache
                    .put_for(worker, key, CacheEntry::Session(session));
                return Err(engine_err(e));
            }
        };
        let result = Json::obj([
            ("command", Json::from("analyze")),
            ("architecture", Json::from(arch.name())),
            ("topology", Json::from(topology.name())),
            ("power_w", Json::from(power_w)),
            ("density_a_per_mm2", Json::from(density)),
            (
                "die_area_mm2",
                Json::from(spec.die_area().as_square_millimeters()),
            ),
            ("overloaded", Json::from(report.overloaded)),
            ("breakdown", report.breakdown.render_json()),
        ]);
        self.cache
            .put_for(worker, key, CacheEntry::Session(session));
        Ok((result, cached))
    }

    fn sharing(
        &self,
        worker: usize,
        work: &Work,
        placement: VrPlacement,
        modules: usize,
    ) -> DispatchResult {
        let spec = SystemSpec::paper_default();
        let key = ScenarioKey::from_work(work).expect("sharing has a key");
        let (mut solver, cached) = match self.cache.take_for(worker, &key) {
            Some(CacheEntry::Sharing(s)) => (s, true),
            _ => {
                let solver = SharingSolver::builder(&spec, &self.calib)
                    .placement(placement)
                    .modules(modules)
                    .build()
                    .map_err(engine_err)?;
                (Box::new(solver), false)
            }
        };
        let rep = match solver.solve() {
            Ok(rep) => {
                solver.anchor_last();
                rep
            }
            Err(e) => {
                self.cache.put_for(worker, key, CacheEntry::Sharing(solver));
                return Err(engine_err(e));
            }
        };
        let result = Json::obj([
            ("command", Json::from("sharing")),
            ("placement", Json::from(placement.to_string())),
            ("report", rep.render_json()),
        ]);
        self.cache.put_for(worker, key, CacheEntry::Sharing(solver));
        Ok((result, cached))
    }

    /// Setpoint sweeps over a sharing grid, one result per request in
    /// `sweeps`. The solver is pinned to the direct-Cholesky plan mode,
    /// so the whole batch — identical in all but its right-hand sides —
    /// coalesces into one factorization plus a single multi-RHS block
    /// substitution, and the per-setpoint reports are bitwise what `k`
    /// separate direct-mode solves return. Cached under its own key:
    /// the plain `sharing` entry stays in the warm-CG mode the one-shot
    /// CLI uses.
    fn sharing_sweep_batch(
        &self,
        worker: usize,
        placement: VrPlacement,
        modules: usize,
        sweeps: &[Vec<f64>],
    ) -> Vec<DispatchResult> {
        let spec = SystemSpec::paper_default();
        let probe = Work::SharingSweep {
            placement,
            modules,
            setpoints: Vec::new(),
        };
        let key = ScenarioKey::from_work(&probe).expect("sharing_sweep has a key");
        let fail_all = |e: (ErrorCode, String)| sweeps.iter().map(|_| Err(e.clone())).collect();
        let (mut solver, cached) = match self.cache.take_for(worker, &key) {
            Some(CacheEntry::Sharing(s)) => (s, true),
            _ => {
                let built = SharingSolver::builder(&spec, &self.calib)
                    .placement(placement)
                    .modules(modules)
                    .build()
                    .map_err(engine_err)
                    .and_then(|mut solver| {
                        solver
                            .set_solve_mode(DcPlanMode::DirectCholesky)
                            .map_err(engine_err)?;
                        Ok(solver)
                    });
                match built {
                    Ok(solver) => (Box::new(solver), false),
                    Err(e) => return fail_all(e),
                }
            }
        };
        let volts: Vec<Volts> = sweeps
            .iter()
            .flat_map(|s| s.iter().map(|&v| Volts::new(v)))
            .collect();
        let reports = match solver.solve_setpoints(&volts) {
            Ok(reports) => {
                solver.anchor_last();
                reports
            }
            Err(e) => {
                self.cache.put_for(worker, key, CacheEntry::Sharing(solver));
                return fail_all(engine_err(e));
            }
        };
        self.cache.put_for(worker, key, CacheEntry::Sharing(solver));
        if sweeps.len() > 1 {
            self.batches.fetch_add(1, Ordering::Relaxed);
            self.coalesced
                .fetch_add(sweeps.len() as u64 - 1, Ordering::Relaxed);
            self.batch_columns
                .fetch_add(volts.len() as u64, Ordering::Relaxed);
            vpd_obs::incr("serve.batch.dispatched");
            vpd_obs::add("serve.batch.coalesced", sweeps.len() as u64 - 1);
            vpd_obs::add("serve.batch.columns", volts.len() as u64);
        }
        let mut cursor = 0;
        sweeps
            .iter()
            .map(|setpoints| {
                let slice = &reports[cursor..cursor + setpoints.len()];
                cursor += setpoints.len();
                Ok((render_sharing_sweep(placement, setpoints, slice), cached))
            })
            .collect()
    }

    fn droop(&self, worker: usize, work: &Work, arch: Architecture) -> DispatchResult {
        let key = ScenarioKey::from_work(work).expect("droop has a key");
        if let Some(CacheEntry::Droop(doc)) = self.cache.take_for(worker, &key) {
            self.cache
                .put_for(worker, key, CacheEntry::Droop(doc.clone()));
            return Ok((doc, true));
        }
        let spec = SystemSpec::paper_default();
        let report = simulate_droop(
            &PdnModel::for_architecture(arch),
            &LoadStep::paper_default(&spec),
            Seconds::from_microseconds(60.0),
            Seconds::from_nanoseconds(10.0),
        )
        .map_err(engine_err)?;
        let result = Json::obj([
            ("command", Json::from("droop")),
            ("architecture", Json::from(arch.name())),
            ("report", report.render_json()),
        ]);
        self.cache
            .put_for(worker, key, CacheEntry::Droop(result.clone()));
        Ok((result, false))
    }

    /// [`Dispatcher::begin_transient_stream_on`] as worker 0.
    ///
    /// # Errors
    ///
    /// A typed `(code, message)` pair when the cold compile fails.
    pub fn begin_transient_stream(
        &self,
        arch: Architecture,
        chunk: usize,
    ) -> Result<TransientStreamRun<'_>, (ErrorCode, String)> {
        self.begin_transient_stream_on(0, arch, chunk)
    }

    /// Checks the architecture's compiled transient scenario out of the
    /// cache (or compiles it cold — the same 60 µs / 10 ns window the
    /// one-shot `droop` handler simulates) and begins a fresh streaming
    /// run over it on behalf of pool worker `worker`.
    ///
    /// # Errors
    ///
    /// A typed `(code, message)` pair when the cold compile fails.
    pub fn begin_transient_stream_on(
        &self,
        worker: usize,
        arch: Architecture,
        chunk: usize,
    ) -> Result<TransientStreamRun<'_>, (ErrorCode, String)> {
        let key = ScenarioKey::from_work(&Work::TransientStream { arch, chunk })
            .expect("transient_stream has a key");
        let (mut scenario, cached) = match self.cache.take_for(worker, &key) {
            Some(CacheEntry::Transient(s)) => (s, true),
            _ => {
                let spec = SystemSpec::paper_default();
                let scenario = DroopScenario::new(
                    &PdnModel::for_architecture(arch),
                    &LoadStep::paper_default(&spec),
                    Seconds::from_microseconds(60.0),
                    Seconds::from_nanoseconds(10.0),
                )
                .map_err(engine_err)?;
                (Box::new(scenario), false)
            }
        };
        scenario.start();
        Ok(TransientStreamRun {
            dispatcher: self,
            key,
            worker,
            scenario: Some(scenario),
            arch,
            chunk,
            cached,
            chunks: 0,
            cursor: 0,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn mc(
        &self,
        worker: usize,
        work: &Work,
        arch: Architecture,
        topology: VrTopologyKind,
        samples: usize,
        seed: u64,
        threads: usize,
    ) -> DispatchResult {
        let spec = SystemSpec::paper_default();
        let key = ScenarioKey::from_work(work).expect("mc has a key");
        let (key, mut session, cached) = self.take_session(worker, key, arch, &spec)?;
        let settings = McSettings {
            samples,
            seed,
            threads,
            ..McSettings::default()
        };
        let summary = match run_tolerance_with(&mut session, topology, &self.calib, &settings) {
            Ok(summary) => summary,
            Err(e) => {
                self.cache
                    .put_for(worker, key, CacheEntry::Session(session));
                return Err(engine_err(e));
            }
        };
        let result = Json::obj([
            ("command", Json::from("mc")),
            ("architecture", Json::from(arch.name())),
            ("topology", Json::from(topology.name())),
            ("samples", Json::from(samples)),
            ("seed", Json::from(i64::try_from(seed).unwrap_or(i64::MAX))),
            ("summary", summary.render_json()),
        ]);
        self.cache
            .put_for(worker, key, CacheEntry::Session(session));
        Ok((result, cached))
    }

    #[allow(clippy::too_many_arguments)]
    fn impedance(
        &self,
        worker: usize,
        work: &Work,
        arch: Architecture,
        fmin_hz: f64,
        fmax_hz: f64,
        points: usize,
        profile: bool,
    ) -> DispatchResult {
        let key = ScenarioKey::from_work(work).expect("impedance has a key");
        let (sweep, cached) = match self.cache.take_for(worker, &key) {
            Some(CacheEntry::Impedance(s)) => (s, true),
            _ => {
                let spec = SystemSpec::paper_default();
                let sweep = ImpedanceSweep::for_architecture(arch, &spec).map_err(engine_err)?;
                (Box::new(sweep), false)
            }
        };
        let settings = ImpedanceSweepSettings {
            fmin: Hertz::new(fmin_hz),
            fmax: Hertz::new(fmax_hz),
            points,
            threads: 0,
        };
        let outcome = sweep.run(&settings);
        self.cache
            .put_for(worker, key, CacheEntry::Impedance(sweep));
        let rep = outcome.map_err(engine_err)?;
        let result = if profile {
            Json::obj([
                ("command", Json::from("impedance")),
                ("report", rep.render_json()),
            ])
        } else {
            Json::obj([
                ("command", Json::from("impedance")),
                ("architecture", Json::from(rep.label.as_str())),
                ("points", Json::from(points)),
                ("peak_impedance_ohm", Json::from(rep.peak.value())),
                ("peak_frequency_hz", Json::from(rep.peak_frequency.value())),
                ("target_ohm", Json::from(rep.target.value())),
                ("margin", rep.margin().map_or(Json::Null, Json::from)),
                ("meets_target", Json::from(rep.meets_target())),
            ])
        };
        Ok((result, cached))
    }

    #[allow(clippy::too_many_arguments)]
    fn faults(
        &self,
        worker: usize,
        work: &Work,
        arch: Architecture,
        topology: VrTopologyKind,
        random_k: Option<usize>,
        count: usize,
        seed: u64,
    ) -> DispatchResult {
        let key = ScenarioKey::from_work(work).expect("faults has a key");
        let (sweep, cached) = match self.cache.take_for(worker, &key) {
            Some(CacheEntry::Faults(s)) => (s, true),
            _ => {
                let spec = SystemSpec::paper_default();
                let sweep =
                    FaultSweep::new(arch, topology, &spec, &self.calib).map_err(engine_err)?;
                (Box::new(sweep), false)
            }
        };
        let scenarios = match random_k {
            None => FaultScenario::n_minus_1(sweep.vr_count()),
            Some(k) => FaultScenario::random_k(k, count, seed, sweep.vr_count(), sweep.grid_side()),
        };
        let label = match random_k {
            None => format!("N-1 over {} modules", sweep.vr_count()),
            Some(k) => format!("{count} random {k}-fault scenarios (seed {seed})"),
        };
        let nominal_worst_drop = sweep.nominal().worst_drop().value();
        let outcome = sweep.run(&scenarios, 0);
        self.cache.put_for(worker, key, CacheEntry::Faults(sweep));
        let report = outcome.map_err(engine_err)?;
        let result = Json::obj([
            ("command", Json::from("faults")),
            ("mode", Json::from(label.as_str())),
            ("topology", Json::from(topology.name())),
            ("nominal_worst_drop_v", Json::from(nominal_worst_drop)),
            ("report", report.render_json()),
        ]);
        Ok((result, cached))
    }

    #[allow(clippy::too_many_arguments)]
    fn fault_impedance(
        &self,
        worker: usize,
        work: &Work,
        arch: Architecture,
        random_k: Option<usize>,
        count: usize,
        seed: u64,
        fmin_hz: f64,
        fmax_hz: f64,
        points: usize,
    ) -> DispatchResult {
        let key = ScenarioKey::from_work(work).expect("fault_impedance has a key");
        let (sweep, cached) = match self.cache.take_for(worker, &key) {
            Some(CacheEntry::FaultImpedance(s)) => (s, true),
            _ => {
                let spec = SystemSpec::paper_default();
                let sweep =
                    FaultImpedanceSweep::new(arch, &spec, &self.calib).map_err(engine_err)?;
                (Box::new(sweep), false)
            }
        };
        let grid = ImpedanceSweepSettings {
            fmin: Hertz::new(fmin_hz),
            fmax: Hertz::new(fmax_hz),
            points,
            threads: 0,
        };
        let freqs = match grid.frequencies() {
            Ok(freqs) => freqs,
            Err(e) => {
                self.cache
                    .put_for(worker, key, CacheEntry::FaultImpedance(sweep));
                return Err(engine_err(e));
            }
        };
        let scenarios = match random_k {
            None => FaultScenario::n_minus_1(sweep.vr_count()),
            Some(k) => FaultScenario::random_k(k, count, seed, sweep.vr_count(), sweep.grid_side()),
        };
        let label = match random_k {
            None => format!("N-1 over {} modules", sweep.vr_count()),
            Some(k) => format!("{count} random {k}-fault scenarios (seed {seed})"),
        };
        let outcome = sweep.run(&scenarios, &freqs, 0);
        self.cache
            .put_for(worker, key, CacheEntry::FaultImpedance(sweep));
        let report = outcome.map_err(engine_err)?;
        let result = Json::obj([
            ("command", Json::from("fault_impedance")),
            ("mode", Json::from(label.as_str())),
            ("points", Json::from(points)),
            ("report", report.render_json()),
        ]);
        Ok((result, cached))
    }

    fn fault_transient(
        &self,
        worker: usize,
        work: &Work,
        arch: Architecture,
        count: usize,
    ) -> DispatchResult {
        let key = ScenarioKey::from_work(work).expect("fault_transient has a key");
        let (sweep, cached) = match self.cache.take_for(worker, &key) {
            Some(CacheEntry::FaultTransient(s)) => (s, true),
            _ => {
                let spec = SystemSpec::paper_default();
                let sweep = FaultTransientSweep::new(
                    arch,
                    &PdnModel::for_architecture(arch),
                    &LoadStep::paper_default(&spec),
                    Seconds::from_microseconds(FAULT_TRANSIENT_SIM_US),
                    Seconds::from_nanoseconds(FAULT_TRANSIENT_DT_NS),
                )
                .map_err(engine_err)?;
                (Box::new(sweep), false)
            }
        };
        let scenarios =
            VrFailureScenario::grid(count, Seconds::from_microseconds(FAULT_TRANSIENT_WINDOW_US));
        let outcome = sweep.run(&scenarios, 0);
        self.cache
            .put_for(worker, key, CacheEntry::FaultTransient(sweep));
        let report = outcome.map_err(engine_err)?;
        let result = Json::obj([
            ("command", Json::from("fault_transient")),
            ("scenarios", Json::from(scenarios.len())),
            ("report", report.render_json()),
        ]);
        Ok((result, cached))
    }

    /// Compiles and analyzes a user scenario document. The expensive
    /// artifact — the compiled die-grid session — is cached under the
    /// document's content hash, so a repeated (or respelled) scenario
    /// skips grid compilation entirely; the document's own spec,
    /// calibration, and options drive the engines, not the dispatcher's
    /// paper defaults. A `[faults]` sweep, when the document asks for
    /// one, runs after the session returns to the cache.
    fn scenario(&self, worker: usize, work: &Work, doc: &ScenarioDoc) -> DispatchResult {
        let scenario = doc
            .compile()
            .map_err(|e| (ErrorCode::BadRequest, format!("scenario document: {e}")))?;
        let key = ScenarioKey::from_work(work).expect("scenario has a key");
        let (mut session, cached) = match self.cache.take_for(worker, &key) {
            Some(CacheEntry::Scenario(s)) => (s, true),
            _ => {
                let session = scenario.session().map_err(engine_err)?;
                (Box::new(session), false)
            }
        };
        let report = match session.analyze(scenario.topology, &scenario.calibration) {
            Ok(report) => {
                session.anchor();
                report
            }
            Err(e) => {
                self.cache
                    .put_for(worker, key, CacheEntry::Scenario(session));
                return Err(engine_err(e));
            }
        };
        self.cache
            .put_for(worker, key, CacheEntry::Scenario(session));

        let hash = format!("{:016x}", doc.content_hash());
        let mut pairs = vec![
            ("command", Json::from("scenario")),
            ("name", Json::from(scenario.name.as_str())),
            ("hash", Json::from(hash.as_str())),
            ("architecture", Json::from(scenario.architecture.name())),
            ("topology", Json::from(scenario.topology.name())),
            ("placement", Json::from(scenario.placement.to_string())),
            ("overloaded", Json::from(report.overloaded)),
            ("breakdown", report.breakdown.render_json()),
        ];
        if let (Some(c), Some(curve)) = (&doc.converter, &scenario.converter) {
            let loss_peak = curve.loss(Amps::new(c.i_peak)).map_err(engine_err)?;
            let loss_max = curve.loss(Amps::new(c.i_max)).map_err(engine_err)?;
            pairs.push((
                "converter",
                Json::obj([
                    ("v_out", Json::from(c.v_out)),
                    ("i_peak_a", Json::from(c.i_peak)),
                    ("eta_peak", Json::from(c.eta_peak)),
                    ("i_max_a", Json::from(c.i_max)),
                    ("eta_max", Json::from(c.eta_max)),
                    ("loss_at_peak_w", Json::from(loss_peak.value())),
                    ("loss_at_max_w", Json::from(loss_max.value())),
                ]),
            ));
        }
        if !scenario.techs.is_empty() {
            let techs: Vec<Json> = doc
                .techs
                .iter()
                .zip(&scenario.techs)
                .map(|(td, t)| {
                    Json::obj([
                        ("base", Json::from(td.base.as_str())),
                        ("name", Json::from(t.name)),
                        ("sites", Json::from(t.default_sites())),
                        (
                            "via_resistance_uohm",
                            Json::from(t.via_resistance().value() * 1e6),
                        ),
                        (
                            "max_current_per_via_a",
                            Json::from(t.max_current_per_via().value()),
                        ),
                    ])
                })
                .collect();
            pairs.push(("techs", Json::Array(techs)));
        }
        if let Some(plan) = &scenario.faults {
            let sweep = FaultSweep::new(
                scenario.architecture,
                scenario.topology,
                &scenario.spec,
                &scenario.calibration,
            )
            .map_err(engine_err)?;
            let scenarios = match plan.random_k {
                None => FaultScenario::n_minus_1(sweep.vr_count()),
                Some(k) => FaultScenario::random_k(
                    k,
                    plan.count,
                    plan.seed,
                    sweep.vr_count(),
                    sweep.grid_side(),
                ),
            };
            let label = match plan.random_k {
                None => format!("N-1 over {} modules", sweep.vr_count()),
                Some(k) => format!(
                    "{} random {k}-fault scenarios (seed {})",
                    plan.count, plan.seed
                ),
            };
            let fault_report = sweep.run(&scenarios, 0).map_err(engine_err)?;
            pairs.push((
                "faults",
                Json::obj([
                    ("mode", Json::from(label.as_str())),
                    ("report", fault_report.render_json()),
                ]),
            ));
        }
        Ok((Json::obj(pairs), cached))
    }

    fn survival(
        &self,
        worker: usize,
        work: &Work,
        arch: Architecture,
        topology: VrTopologyKind,
    ) -> DispatchResult {
        let key = ScenarioKey::from_work(work).expect("survival has a key");
        let (ladder, cached) = match self.cache.take_for(worker, &key) {
            Some(CacheEntry::Cascade(l)) => (l, true),
            _ => {
                let spec = SystemSpec::paper_default();
                let ladder = CascadeLadder::new(
                    arch,
                    topology,
                    &spec,
                    &self.calib,
                    &CascadeSettings::default(),
                )
                .map_err(engine_err)?;
                (Box::new(ladder), false)
            }
        };
        let scenarios = FaultScenario::n_minus_1(ladder.vr_count());
        let outcome = ladder.run(&scenarios, 0);
        self.cache.put_for(worker, key, CacheEntry::Cascade(ladder));
        let envelope = outcome.map_err(engine_err)?;
        let result = Json::obj([
            ("command", Json::from("survival")),
            ("topology", Json::from(topology.name())),
            ("report", envelope.render_json()),
        ]);
        Ok((result, cached))
    }
}

/// Simulation window of the serve `fault_transient` kind — also what
/// `vpd faults --dynamic` simulates, so served and one-shot results
/// match bit for bit.
pub const FAULT_TRANSIENT_SIM_US: f64 = 20.0;
/// Time step of the `fault_transient` kind, nanoseconds.
pub const FAULT_TRANSIENT_DT_NS: f64 = 40.0;
/// Width of the failure-time grid, microseconds.
pub const FAULT_TRANSIENT_WINDOW_US: f64 = 16.0;

/// Renders one `sharing_sweep` result document — the single place both
/// the solo path and the batched path produce their bytes from, so the
/// batched==sequential contract cannot drift on formatting.
fn render_sharing_sweep(
    placement: VrPlacement,
    setpoints: &[f64],
    reports: &[SharingReport],
) -> Json {
    let points: Vec<Json> = setpoints
        .iter()
        .zip(reports)
        .map(|(&sp, rep)| {
            Json::obj([
                ("setpoint_v", Json::from(sp)),
                ("report", rep.render_json()),
            ])
        })
        .collect();
    Json::obj([
        ("command", Json::from("sharing_sweep")),
        ("placement", Json::from(placement.to_string())),
        ("setpoints", Json::from(setpoints.len())),
        ("points", Json::Array(points)),
    ])
}

/// A checked-out streaming transient run: drives a compiled
/// [`DroopScenario`] chunk by chunk, yielding one waveform document per
/// chunk and a final summary whose `report` is bitwise the one-shot
/// `droop` report. Dropping the run — finished or aborted mid-stream —
/// checks the scenario back into the cache, so the compiled plan (and
/// its LU cache) stays warm even when a deadline kills the stream.
pub struct TransientStreamRun<'a> {
    dispatcher: &'a Dispatcher,
    key: ScenarioKey,
    worker: usize,
    scenario: Option<Box<DroopScenario>>,
    arch: Architecture,
    chunk: usize,
    cached: bool,
    chunks: usize,
    cursor: usize,
}

impl TransientStreamRun<'_> {
    /// Whether the compiled scenario was found in the cache (meta only
    /// — the waveform bits never depend on it).
    #[must_use]
    pub fn cached(&self) -> bool {
        self.cached
    }

    /// Chunk records emitted so far.
    #[must_use]
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// Runs up to `chunk` more time steps and returns their samples as
    /// a waveform document, or `Ok(None)` once every sample has been
    /// emitted (time to send the summary).
    ///
    /// # Errors
    ///
    /// A typed `(code, message)` pair on solver failure; the scenario
    /// still returns to the cache on drop (a fresh run resets it).
    pub fn next_chunk(&mut self) -> Result<Option<Json>, (ErrorCode, String)> {
        let scenario = self.scenario.as_mut().expect("stream scenario checked out");
        if scenario.finished() {
            return Ok(None);
        }
        scenario.advance(self.chunk).map_err(engine_err)?;
        let result = scenario.result();
        let times = result.times();
        let v = result.voltage(scenario.die());
        let t0 = times[self.cursor];
        let chunk_times: Vec<Json> = times[self.cursor..]
            .iter()
            .map(|&t| Json::from(t))
            .collect();
        let chunk_v: Vec<Json> = v[self.cursor..].iter().map(|&x| Json::from(x)).collect();
        let samples = chunk_times.len();
        self.cursor = times.len();
        self.chunks += 1;
        Ok(Some(Json::obj([
            ("t0_s", Json::from(t0)),
            ("samples", Json::from(samples)),
            ("times_s", Json::Array(chunk_times)),
            ("v_die_v", Json::Array(chunk_v)),
        ])))
    }

    /// The final summary document. Meaningful once
    /// [`TransientStreamRun::next_chunk`] has returned `None`; its
    /// `report` field carries the exact bits of the one-shot `droop`
    /// result for the same architecture.
    #[must_use]
    pub fn finish(&self) -> Json {
        let scenario = self.scenario.as_ref().expect("stream scenario checked out");
        Json::obj([
            ("command", Json::from("transient_stream")),
            ("architecture", Json::from(self.arch.name())),
            ("samples", Json::from(scenario.samples_done())),
            ("chunks", Json::from(self.chunks)),
            ("report", scenario.report().render_json()),
        ])
    }
}

impl Drop for TransientStreamRun<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.scenario.take() {
            self.dispatcher
                .cache
                .put_for(self.worker, self.key.clone(), CacheEntry::Transient(s));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(line: &str) -> Work {
        crate::proto::Request::parse_line(line).unwrap().work
    }

    #[test]
    fn warm_result_is_bitwise_identical_to_cold() {
        for line in [
            r#"{"kind":"analyze","params":{"arch":"a1"}}"#,
            r#"{"kind":"sharing","params":{"modules":24}}"#,
            r#"{"kind":"sharing_sweep","params":{"modules":24,"setpoints":[1.0,1.005]}}"#,
            r#"{"kind":"droop","params":{"arch":"a0"}}"#,
            r#"{"kind":"mc","params":{"arch":"a1","samples":6}}"#,
            r#"{"kind":"impedance","params":{"arch":"a2","points":16}}"#,
            r#"{"kind":"faults","params":{"arch":"a1","random_k":2,"count":4}}"#,
            r#"{"kind":"transient_stream","params":{"arch":"a0","chunk":2048}}"#,
            r#"{"kind":"fault_impedance","params":{"arch":"a2","random_k":2,"count":3,"points":24}}"#,
            r#"{"kind":"fault_transient","params":{"arch":"a2","count":2}}"#,
            r#"{"kind":"survival","params":{"arch":"a1"}}"#,
            r#"{"kind":"scenario","params":{"name":"a1"}}"#,
        ] {
            // Fresh dispatcher per kind: analyze and mc intentionally
            // share session entries, which would warm each other here.
            let d = Dispatcher::new(16);
            let w = work(line);
            let (cold, was_cached) = d.dispatch(&w).unwrap();
            assert!(!was_cached, "{line}: first dispatch must compile cold");
            let (warm, was_cached) = d.dispatch(&w).unwrap();
            assert!(was_cached, "{line}: second dispatch must hit the cache");
            assert_eq!(
                cold.to_string(),
                warm.to_string(),
                "{line}: cache hit changed the result bits"
            );
        }
    }

    #[test]
    fn zero_capacity_dispatcher_always_compiles_cold() {
        let d = Dispatcher::new(0);
        let w = work(r#"{"kind":"sharing"}"#);
        let (first, c1) = d.dispatch(&w).unwrap();
        let (second, c2) = d.dispatch(&w).unwrap();
        assert!(!c1 && !c2);
        assert_eq!(first.to_string(), second.to_string());
    }

    #[test]
    fn analyze_and_mc_share_one_session_entry() {
        let d = Dispatcher::new(16);
        let analyze = work(r#"{"kind":"analyze","params":{"arch":"a2"}}"#);
        let mc = work(r#"{"kind":"mc","params":{"arch":"a2","samples":4}}"#);
        let (_, cached) = d.dispatch(&analyze).unwrap();
        assert!(!cached);
        let (_, cached) = d.dispatch(&mc).unwrap();
        assert!(cached, "mc at paper defaults reuses the analyze session");
        assert_eq!(d.cache_stats().entries, 1);
    }

    #[test]
    fn workers_steal_compiled_state_instead_of_recompiling() {
        let d = Dispatcher::with_workers(16, 4);
        let w = work(r#"{"kind":"sharing","params":{"modules":12}}"#);
        let (cold, cached) = d.dispatch_on(0, &w).unwrap();
        assert!(!cached);
        // A different worker's home shard misses, steals worker 0's
        // compiled solver, and produces the same bits.
        let (stolen, cached) = d.dispatch_on(3, &w).unwrap();
        assert!(cached, "steal counts as a hit");
        assert_eq!(cold.to_string(), stolen.to_string());
        let s = d.cache_stats();
        assert_eq!(s.steals, 1);
        // The entry re-homed to worker 3: its next take is a home hit.
        let (_, cached) = d.dispatch_on(3, &w).unwrap();
        assert!(cached);
        assert_eq!(d.cache_stats().steals, 1);
    }

    #[test]
    fn engine_failures_are_typed_and_preserve_the_entry() {
        let d = Dispatcher::new(16);
        // Warm a session, then drive a failing scenario through it: an
        // absurd power at paper density overloads every capacity check.
        let ok = work(r#"{"kind":"analyze","params":{"arch":"a1"}}"#);
        d.dispatch(&ok).unwrap();
        let bad = work(r#"{"kind":"impedance","params":{"arch":"a1","points":1}}"#);
        let err = d.dispatch(&bad).unwrap_err();
        assert_eq!(err.0, ErrorCode::Engine, "{err:?}");
        // The failing run kept the compiled impedance plan resident.
        let good = work(r#"{"kind":"impedance","params":{"arch":"a1","points":16}}"#);
        let (_, cached) = d.dispatch(&good).unwrap();
        assert!(cached, "entry survived the failed scenario");
    }

    #[test]
    fn kinds_returns_the_catalog() {
        let d = Dispatcher::new(0);
        let (doc, cached) = d.dispatch(&Work::Kinds).unwrap();
        assert!(!cached);
        assert_eq!(doc.get("command").and_then(Json::as_str), Some("kinds"));
        assert_eq!(
            doc.get("version").and_then(Json::as_i64),
            Some(PROTOCOL_VERSION)
        );
        let Some(Json::Array(kinds)) = doc.get("kinds") else {
            panic!("kinds array: {doc}");
        };
        assert_eq!(kinds.len(), crate::proto::kind_specs().len());
    }

    #[test]
    fn sharing_sweep_matches_sequential_direct_solves_bitwise() {
        let sweep = [1.0, 1.01, 1.02];
        let d = Dispatcher::new(4);
        let w = work(
            r#"{"kind":"sharing_sweep","params":{"placement":"below","modules":12,"setpoints":[1.0,1.01,1.02]}}"#,
        );
        let (served, _) = d.dispatch(&w).unwrap();
        let Some(Json::Array(points)) = served.get("points") else {
            panic!("missing points array: {served}");
        };
        assert_eq!(points.len(), sweep.len());

        // Oracle: the same setpoints solved one at a time through the
        // core API in the same (direct) mode.
        let spec = SystemSpec::paper_default();
        let calib = Calibration::paper_default();
        let mut solver = SharingSolver::builder(&spec, &calib)
            .placement(VrPlacement::BelowDie)
            .modules(12)
            .build()
            .unwrap();
        solver.set_solve_mode(DcPlanMode::DirectCholesky).unwrap();
        for (point, &sp) in points.iter().zip(&sweep) {
            for k in 0..solver.vr_count() {
                solver.set_vr_setpoint(k, Volts::new(sp)).unwrap();
            }
            let rep = solver.solve().unwrap();
            assert_eq!(
                point.get("report").unwrap().to_string(),
                rep.render_json().to_string(),
                "setpoint {sp}"
            );
        }
    }

    #[test]
    fn batched_sharing_sweeps_match_sequential_dispatch_bitwise() {
        let sweeps: Vec<Vec<f64>> = vec![
            vec![1.0, 1.005, 0.98],
            vec![1.02],
            vec![0.995, 1.0],
            vec![1.0, 1.005, 0.98], // duplicate of the first request
        ];
        // Sequential oracle: each request dispatched on its own, cold
        // dispatcher so no cross-request state sneaks in.
        let seq = Dispatcher::new(0);
        let sequential: Vec<String> = sweeps
            .iter()
            .map(|sp| {
                let w = Work::SharingSweep {
                    placement: VrPlacement::Periphery,
                    modules: 16,
                    setpoints: sp.clone(),
                };
                seq.dispatch(&w).unwrap().0.to_string()
            })
            .collect();
        // Batched: one checkout, one block solve, per-request docs.
        let d = Dispatcher::new(4);
        let results = d.dispatch_sharing_sweep_batch(0, VrPlacement::Periphery, 16, &sweeps);
        assert_eq!(results.len(), sweeps.len());
        for (i, (res, oracle)) in results.iter().zip(&sequential).enumerate() {
            let (doc, _) = res.as_ref().unwrap();
            assert_eq!(
                doc.to_string(),
                *oracle,
                "request {i}: batched bits differ from sequential dispatch"
            );
        }
        let b = d.batch_stats();
        assert_eq!(b.batches, 1);
        assert_eq!(b.coalesced, 3);
        assert_eq!(b.columns, 9);
        // A batch of one goes through the same path but counts nothing.
        let w = work(r#"{"kind":"sharing_sweep","params":{"modules":16,"setpoints":[1.0]}}"#);
        d.dispatch(&w).unwrap();
        assert_eq!(d.batch_stats().batches, 1);
    }

    #[test]
    fn transient_stream_chunks_reassemble_and_warm_is_bitwise() {
        let d = Dispatcher::new(8);
        let mut run = d
            .begin_transient_stream(Architecture::InterposerEmbedded, 1000)
            .unwrap();
        assert!(!run.cached(), "first stream compiles cold");
        let mut cold_chunks = Vec::new();
        while let Some(c) = run.next_chunk().unwrap() {
            cold_chunks.push(c.to_string());
        }
        // 60 µs at 10 ns is 6001 samples: seven chunks of ≤1000.
        assert_eq!(cold_chunks.len(), 7);
        let cold = run.finish().to_string();
        drop(run);

        // Warm replay: the scenario came back from the cache and every
        // chunk — and the summary — carries the same bits.
        let mut run = d
            .begin_transient_stream(Architecture::InterposerEmbedded, 1000)
            .unwrap();
        assert!(run.cached(), "drop checked the scenario back in");
        let mut warm_chunks = Vec::new();
        while let Some(c) = run.next_chunk().unwrap() {
            warm_chunks.push(c.to_string());
        }
        assert_eq!(cold_chunks, warm_chunks);
        assert_eq!(run.finish().to_string(), cold);
        drop(run);

        // The dispatch fallback drains the same run silently.
        let w = work(r#"{"kind":"transient_stream","params":{"arch":"a2","chunk":1000}}"#);
        let (full, cached) = d.dispatch(&w).unwrap();
        assert!(cached);
        assert_eq!(full.to_string(), cold);

        // And the summary's report is bitwise the one-shot droop report.
        let (droop, _) = d
            .dispatch(&work(r#"{"kind":"droop","params":{"arch":"a2"}}"#))
            .unwrap();
        assert_eq!(
            full.get("report").unwrap().to_string(),
            droop.get("report").unwrap().to_string()
        );
    }

    #[test]
    fn aborted_stream_keeps_the_compiled_scenario_warm() {
        let d = Dispatcher::new(8);
        let mut run = d
            .begin_transient_stream(Architecture::Reference, 500)
            .unwrap();
        // Emit one chunk, then abandon the stream mid-run.
        assert!(run.next_chunk().unwrap().is_some());
        drop(run);
        assert_eq!(d.cache_stats().entries, 1);
        let run = d
            .begin_transient_stream(Architecture::Reference, 500)
            .unwrap();
        assert!(run.cached(), "mid-stream abort still checked it back in");
    }

    #[test]
    fn survival_rejects_the_reference_architecture_with_a_typed_error() {
        let d = Dispatcher::new(4);
        let err = d
            .dispatch(&work(r#"{"kind":"survival","params":{"arch":"a0"}}"#))
            .unwrap_err();
        assert_eq!(err.0, ErrorCode::Engine, "{err:?}");
        assert!(err.1.contains("vertical architecture"), "{err:?}");
        assert_eq!(d.cache_stats().entries, 0, "no broken entry was cached");
    }

    #[test]
    fn scenario_builtin_matches_the_analyze_kind_bitwise() {
        // The checked-in a2 document compiles to the paper defaults, so
        // its served breakdown must carry the exact bits the hardcoded
        // analyze path produces.
        let d = Dispatcher::new(8);
        let (scen, cached) = d
            .dispatch(&work(r#"{"kind":"scenario","params":{"name":"a2"}}"#))
            .unwrap();
        assert!(!cached);
        let (analyze, _) = d
            .dispatch(&work(r#"{"kind":"analyze","params":{"arch":"a2"}}"#))
            .unwrap();
        assert_eq!(
            scen.get("breakdown").unwrap().to_string(),
            analyze.get("breakdown").unwrap().to_string(),
            "document-compiled a2 diverged from the hardcoded constructors"
        );
        assert_eq!(scen.get("overloaded"), analyze.get("overloaded"));
        assert_eq!(scen.get("name").and_then(Json::as_str), Some("a2"));
        assert_eq!(
            scen.get("hash").and_then(Json::as_str).map(str::len),
            Some(16)
        );
    }

    #[test]
    fn scenario_spellings_share_one_cached_session() {
        let d = Dispatcher::new(8);
        let (_, cached) = d
            .dispatch(&work(r#"{"kind":"scenario","params":{"name":"a3-12"}}"#))
            .unwrap();
        assert!(!cached);
        // A minimal inline spelling of the same scenario hits the entry
        // the builtin compiled, and carries the same bits.
        let inline = work(
            r#"{"kind":"scenario","params":{"doc":"[scenario]\narchitecture = \"a3\"\nbus_v = 12\n"}}"#,
        );
        let (inline_doc, cached) = d.dispatch(&inline).unwrap();
        assert!(cached, "respelled scenario must hit the shared entry");
        let (builtin_doc, _) = d
            .dispatch(&work(r#"{"kind":"scenario","params":{"name":"a3-12"}}"#))
            .unwrap();
        assert_eq!(inline_doc.to_string(), builtin_doc.to_string());
        assert_eq!(d.cache_stats().entries, 1);
    }

    #[test]
    fn scenario_honors_custom_sections() {
        // A customized document: non-default power, a converter, a tech
        // override, and an N-1 fault sweep, served in one response.
        let text = "[scenario]\narchitecture = \"a1\"\n\
                    [spec]\npower_w = 600\n\
                    [converter]\nv_out = 1\ni_peak = 30\neta_peak = 0.9\n\
                    i_max = 100\neta_max = 0.86\n\
                    [tech.tsv]\npitch_um = 50\n\
                    [faults]\nmode = \"n-1\"\n";
        let line = format!(
            r#"{{"kind":"scenario","params":{{"doc":{}}}}}"#,
            Json::from(text)
        );
        let d = Dispatcher::new(8);
        let (doc, _) = d.dispatch(&work(&line)).unwrap();
        let conv = doc.get("converter").expect("converter summary");
        assert_eq!(conv.get("i_max_a").and_then(Json::as_f64), Some(100.0));
        assert!(conv.get("loss_at_max_w").and_then(Json::as_f64).unwrap() > 0.0);
        let Some(Json::Array(techs)) = doc.get("techs") else {
            panic!("techs summary: {doc}");
        };
        assert_eq!(techs[0].get("base").and_then(Json::as_str), Some("tsv"));
        let faults = doc.get("faults").expect("faults report");
        assert!(faults
            .get("mode")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("N-1"));
    }

    #[test]
    fn mc_summary_matches_the_one_shot_engine_bitwise() {
        let d = Dispatcher::new(4);
        let w = work(r#"{"kind":"mc","params":{"arch":"a1","samples":5,"seed":11}}"#);
        let (served, _) = d.dispatch(&w).unwrap();
        let oneshot = vpd_core::run_tolerance(
            Architecture::InterposerPeriphery,
            VrTopologyKind::Dsch,
            &SystemSpec::paper_default(),
            &Calibration::paper_default(),
            &McSettings {
                samples: 5,
                seed: 11,
                ..McSettings::default()
            },
        )
        .unwrap();
        assert_eq!(
            served.get("summary").unwrap().to_string(),
            oneshot.render_json().to_string()
        );
    }
}
