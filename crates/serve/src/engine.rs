//! Request dispatch: each analysis kind checks its compiled state out
//! of the [`ScenarioCache`], runs the engine, and checks the state back
//! in.
//!
//! # Determinism contract
//!
//! A request's `result` document is **bitwise-identical** whether its
//! compiled state was found in the cache or built cold, and identical
//! to the one-shot `vpd --format json` invocation with the same
//! parameters. The mechanism is the warm-start anchor introduced in
//! PR 1: after a successful solve the solution is anchored, and a
//! re-solve of an identical system converges at CG iteration zero,
//! returning the anchored bits unchanged. The fault and impedance
//! engines take `&self` and are pure over their compiled plans, so
//! reuse is trivially bitwise there; the droop engine compiles no
//! reusable plan, so its cache entry is the finished document itself.

use vpd_converters::VrTopologyKind;
use vpd_core::{
    run_tolerance_with, simulate_droop, AnalysisOptions, AnalysisSession, Architecture,
    Calibration, DcPlanMode, DroopScenario, FaultScenario, FaultSweep, ImpedanceSweep,
    ImpedanceSweepSettings, LoadStep, McSettings, PdnModel, SharingSolver, SystemSpec, VrPlacement,
};
use vpd_report::{Json, Render};
use vpd_units::{CurrentDensity, Hertz, Seconds, Volts, Watts};

use crate::cache::{CacheEntry, CacheKey, CacheStats, ScenarioCache};
use crate::proto::{ErrorCode, Work};

/// A handler outcome: the result document plus whether compiled state
/// was found in the cache (meta only — the document bits never depend
/// on it).
pub type DispatchResult = Result<(Json, bool), (ErrorCode, String)>;

/// The paper-default die power used by `mc` (and the `analyze`
/// default), part of the shared session cache key.
const PAPER_POWER_W: f64 = 1000.0;
/// The paper-default current density (A/mm²), likewise.
const PAPER_DENSITY: f64 = 2.0;

fn engine_err(e: impl std::fmt::Display) -> (ErrorCode, String) {
    (ErrorCode::Engine, e.to_string())
}

fn topology_tag(t: VrTopologyKind) -> u64 {
    match t {
        VrTopologyKind::Dsch => 0,
        VrTopologyKind::Dpmih => 1,
        VrTopologyKind::ThreeLevelHybridDickson => 2,
    }
}

fn placement_tag(p: VrPlacement) -> u64 {
    match p {
        VrPlacement::Periphery => 0,
        VrPlacement::BelowDie => 1,
    }
}

/// Routes [`Work`] to the engines over a shared [`ScenarioCache`].
pub struct Dispatcher {
    cache: ScenarioCache,
    calib: Calibration,
}

impl Dispatcher {
    /// A dispatcher whose cache holds at most `cache_capacity` compiled
    /// scenarios (0 disables caching — every request compiles cold).
    #[must_use]
    pub fn new(cache_capacity: usize) -> Self {
        Self {
            cache: ScenarioCache::new(cache_capacity),
            calib: Calibration::paper_default(),
        }
    }

    /// Current cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Runs one unit of work to completion.
    ///
    /// # Errors
    ///
    /// A typed `(code, message)` pair ready to become an error
    /// response; engine failures carry [`ErrorCode::Engine`].
    pub fn dispatch(&self, work: &Work) -> DispatchResult {
        match work {
            Work::Ping => Ok((Json::obj([("command", Json::from("ping"))]), false)),
            Work::Shutdown => Ok((Json::obj([("command", Json::from("shutdown"))]), false)),
            Work::Stats => self.stats(),
            Work::Analyze {
                arch,
                topology,
                power_w,
                density,
            } => self.analyze(*arch, *topology, *power_w, *density),
            Work::Sharing { placement, modules } => self.sharing(*placement, *modules),
            Work::SharingSweep {
                placement,
                modules,
                setpoints,
            } => self.sharing_sweep(*placement, *modules, setpoints),
            Work::Droop { arch } => self.droop(*arch),
            Work::Mc {
                arch,
                topology,
                samples,
                seed,
                threads,
            } => self.mc(*arch, *topology, *samples, *seed, *threads),
            Work::Impedance {
                arch,
                fmin_hz,
                fmax_hz,
                points,
                profile,
            } => self.impedance(*arch, *fmin_hz, *fmax_hz, *points, *profile),
            Work::Faults {
                arch,
                topology,
                random_k,
                count,
                seed,
            } => self.faults(*arch, *topology, *random_k, *count, *seed),
            // The server streams this kind chunk-by-chunk; dispatching
            // it directly drains the same run silently and returns the
            // summary document — bitwise what the stream's final record
            // carries.
            Work::TransientStream { arch, chunk } => {
                let mut run = self.begin_transient_stream(*arch, *chunk)?;
                while run.next_chunk()?.is_some() {}
                let cached = run.cached();
                Ok((run.finish(), cached))
            }
        }
    }

    fn stats(&self) -> DispatchResult {
        let s = self.cache.stats();
        let metrics = Json::parse(&vpd_obs::snapshot().to_json("serve")).unwrap_or(Json::Null);
        Ok((
            Json::obj([
                ("command", Json::from("stats")),
                (
                    "cache",
                    Json::obj([
                        ("hits", Json::from(s.hits as usize)),
                        ("misses", Json::from(s.misses as usize)),
                        ("evictions", Json::from(s.evictions as usize)),
                        ("entries", Json::from(s.entries)),
                    ]),
                ),
                ("metrics", metrics),
            ]),
            false,
        ))
    }

    /// Checks a compiled analysis session out of the cache, or builds
    /// one cold. `analyze` and `mc` share entries: the grid plan
    /// depends on (architecture, spec), never on the topology.
    fn take_session(
        &self,
        arch: Architecture,
        spec: &SystemSpec,
        power_w: f64,
        density: f64,
    ) -> Result<(CacheKey, Box<AnalysisSession>, bool), (ErrorCode, String)> {
        let key = CacheKey {
            kind: "session",
            arch: arch.name(),
            params: vec![power_w.to_bits(), density.to_bits()],
        };
        match self.cache.take(&key) {
            Some(CacheEntry::Session(s)) => Ok((key, s, true)),
            _ => {
                let session =
                    AnalysisSession::new(arch, spec, &self.calib, &AnalysisOptions::default())
                        .map_err(engine_err)?;
                Ok((key, Box::new(session), false))
            }
        }
    }

    fn analyze(
        &self,
        arch: Architecture,
        topology: VrTopologyKind,
        power_w: f64,
        density: f64,
    ) -> DispatchResult {
        let spec = SystemSpec::new(
            Volts::new(48.0),
            Volts::new(1.0),
            Watts::new(power_w),
            CurrentDensity::from_amps_per_square_millimeter(density),
        )
        .map_err(|e| (ErrorCode::BadRequest, e.to_string()))?;
        let (key, mut session, cached) = self.take_session(arch, &spec, power_w, density)?;
        let outcome = session.analyze(topology, &self.calib);
        let report = match outcome {
            Ok(report) => {
                session.anchor();
                report
            }
            Err(e) => {
                // The compiled plan is still sound (the failure is the
                // scenario's, e.g. a capacity check): keep it warm.
                self.cache.put(key, CacheEntry::Session(session));
                return Err(engine_err(e));
            }
        };
        let result = Json::obj([
            ("command", Json::from("analyze")),
            ("architecture", Json::from(arch.name())),
            ("topology", Json::from(topology.name())),
            ("power_w", Json::from(power_w)),
            ("density_a_per_mm2", Json::from(density)),
            (
                "die_area_mm2",
                Json::from(spec.die_area().as_square_millimeters()),
            ),
            ("overloaded", Json::from(report.overloaded)),
            ("breakdown", report.breakdown.render_json()),
        ]);
        self.cache.put(key, CacheEntry::Session(session));
        Ok((result, cached))
    }

    fn sharing(&self, placement: VrPlacement, modules: usize) -> DispatchResult {
        let spec = SystemSpec::paper_default();
        let key = CacheKey {
            kind: "sharing",
            arch: String::new(),
            params: vec![placement_tag(placement), modules as u64],
        };
        let (mut solver, cached) = match self.cache.take(&key) {
            Some(CacheEntry::Sharing(s)) => (s, true),
            _ => {
                let solver = SharingSolver::builder(&spec, &self.calib)
                    .placement(placement)
                    .modules(modules)
                    .build()
                    .map_err(engine_err)?;
                (Box::new(solver), false)
            }
        };
        let rep = match solver.solve() {
            Ok(rep) => {
                solver.anchor_last();
                rep
            }
            Err(e) => {
                self.cache.put(key, CacheEntry::Sharing(solver));
                return Err(engine_err(e));
            }
        };
        let result = Json::obj([
            ("command", Json::from("sharing")),
            ("placement", Json::from(placement.to_string())),
            ("report", rep.render_json()),
        ]);
        self.cache.put(key, CacheEntry::Sharing(solver));
        Ok((result, cached))
    }

    /// Setpoint sweep over a sharing grid. The solver is pinned to the
    /// direct-Cholesky plan mode, so the whole sweep — identical in all
    /// but its right-hand side — coalesces into one factorization plus
    /// a single multi-RHS block substitution, and the per-setpoint
    /// reports are bitwise what `k` separate direct-mode solves return.
    /// Cached under its own key: the plain `sharing` entry stays in the
    /// warm-CG mode the one-shot CLI uses.
    fn sharing_sweep(
        &self,
        placement: VrPlacement,
        modules: usize,
        setpoints: &[f64],
    ) -> DispatchResult {
        let spec = SystemSpec::paper_default();
        let key = CacheKey {
            kind: "sharing_sweep",
            arch: String::new(),
            params: vec![placement_tag(placement), modules as u64],
        };
        let (mut solver, cached) = match self.cache.take(&key) {
            Some(CacheEntry::Sharing(s)) => (s, true),
            _ => {
                let mut solver = SharingSolver::builder(&spec, &self.calib)
                    .placement(placement)
                    .modules(modules)
                    .build()
                    .map_err(engine_err)?;
                solver
                    .set_solve_mode(DcPlanMode::DirectCholesky)
                    .map_err(engine_err)?;
                (Box::new(solver), false)
            }
        };
        let volts: Vec<Volts> = setpoints.iter().map(|&v| Volts::new(v)).collect();
        let reports = match solver.solve_setpoints(&volts) {
            Ok(reports) => {
                solver.anchor_last();
                reports
            }
            Err(e) => {
                self.cache.put(key, CacheEntry::Sharing(solver));
                return Err(engine_err(e));
            }
        };
        let points: Vec<Json> = setpoints
            .iter()
            .zip(&reports)
            .map(|(&sp, rep)| {
                Json::obj([
                    ("setpoint_v", Json::from(sp)),
                    ("report", rep.render_json()),
                ])
            })
            .collect();
        let result = Json::obj([
            ("command", Json::from("sharing_sweep")),
            ("placement", Json::from(placement.to_string())),
            ("setpoints", Json::from(setpoints.len())),
            ("points", Json::Array(points)),
        ]);
        self.cache.put(key, CacheEntry::Sharing(solver));
        Ok((result, cached))
    }

    fn droop(&self, arch: Architecture) -> DispatchResult {
        let key = CacheKey {
            kind: "droop",
            arch: arch.name(),
            params: Vec::new(),
        };
        if let Some(CacheEntry::Droop(doc)) = self.cache.take(&key) {
            self.cache.put(key, CacheEntry::Droop(doc.clone()));
            return Ok((doc, true));
        }
        let spec = SystemSpec::paper_default();
        let report = simulate_droop(
            &PdnModel::for_architecture(arch),
            &LoadStep::paper_default(&spec),
            Seconds::from_microseconds(60.0),
            Seconds::from_nanoseconds(10.0),
        )
        .map_err(engine_err)?;
        let result = Json::obj([
            ("command", Json::from("droop")),
            ("architecture", Json::from(arch.name())),
            ("report", report.render_json()),
        ]);
        self.cache.put(key, CacheEntry::Droop(result.clone()));
        Ok((result, false))
    }

    /// Checks the architecture's compiled transient scenario out of the
    /// cache (or compiles it cold — the same 60 µs / 10 ns window the
    /// one-shot `droop` handler simulates) and begins a fresh streaming
    /// run over it.
    ///
    /// # Errors
    ///
    /// A typed `(code, message)` pair when the cold compile fails.
    pub fn begin_transient_stream(
        &self,
        arch: Architecture,
        chunk: usize,
    ) -> Result<TransientStreamRun<'_>, (ErrorCode, String)> {
        let key = CacheKey {
            kind: "transient",
            arch: arch.name(),
            params: Vec::new(),
        };
        let (mut scenario, cached) = match self.cache.take(&key) {
            Some(CacheEntry::Transient(s)) => (s, true),
            _ => {
                let spec = SystemSpec::paper_default();
                let scenario = DroopScenario::new(
                    &PdnModel::for_architecture(arch),
                    &LoadStep::paper_default(&spec),
                    Seconds::from_microseconds(60.0),
                    Seconds::from_nanoseconds(10.0),
                )
                .map_err(engine_err)?;
                (Box::new(scenario), false)
            }
        };
        scenario.start();
        Ok(TransientStreamRun {
            dispatcher: self,
            key,
            scenario: Some(scenario),
            arch,
            chunk,
            cached,
            chunks: 0,
            cursor: 0,
        })
    }

    fn mc(
        &self,
        arch: Architecture,
        topology: VrTopologyKind,
        samples: usize,
        seed: u64,
        threads: usize,
    ) -> DispatchResult {
        let spec = SystemSpec::paper_default();
        let (key, mut session, cached) =
            self.take_session(arch, &spec, PAPER_POWER_W, PAPER_DENSITY)?;
        let settings = McSettings {
            samples,
            seed,
            threads,
            ..McSettings::default()
        };
        let summary = match run_tolerance_with(&mut session, topology, &self.calib, &settings) {
            Ok(summary) => summary,
            Err(e) => {
                self.cache.put(key, CacheEntry::Session(session));
                return Err(engine_err(e));
            }
        };
        let result = Json::obj([
            ("command", Json::from("mc")),
            ("architecture", Json::from(arch.name())),
            ("topology", Json::from(topology.name())),
            ("samples", Json::from(samples)),
            ("seed", Json::from(i64::try_from(seed).unwrap_or(i64::MAX))),
            ("summary", summary.render_json()),
        ]);
        self.cache.put(key, CacheEntry::Session(session));
        Ok((result, cached))
    }

    fn impedance(
        &self,
        arch: Architecture,
        fmin_hz: f64,
        fmax_hz: f64,
        points: usize,
        profile: bool,
    ) -> DispatchResult {
        let key = CacheKey {
            kind: "impedance",
            arch: arch.name(),
            params: Vec::new(),
        };
        let (sweep, cached) = match self.cache.take(&key) {
            Some(CacheEntry::Impedance(s)) => (s, true),
            _ => {
                let spec = SystemSpec::paper_default();
                let sweep = ImpedanceSweep::for_architecture(arch, &spec).map_err(engine_err)?;
                (Box::new(sweep), false)
            }
        };
        let settings = ImpedanceSweepSettings {
            fmin: Hertz::new(fmin_hz),
            fmax: Hertz::new(fmax_hz),
            points,
            threads: 0,
        };
        let outcome = sweep.run(&settings);
        self.cache.put(key, CacheEntry::Impedance(sweep));
        let rep = outcome.map_err(engine_err)?;
        let result = if profile {
            Json::obj([
                ("command", Json::from("impedance")),
                ("report", rep.render_json()),
            ])
        } else {
            Json::obj([
                ("command", Json::from("impedance")),
                ("architecture", Json::from(rep.label.as_str())),
                ("points", Json::from(points)),
                ("peak_impedance_ohm", Json::from(rep.peak.value())),
                ("peak_frequency_hz", Json::from(rep.peak_frequency.value())),
                ("target_ohm", Json::from(rep.target.value())),
                ("margin", Json::from(rep.margin())),
                ("meets_target", Json::from(rep.meets_target())),
            ])
        };
        Ok((result, cached))
    }

    fn faults(
        &self,
        arch: Architecture,
        topology: VrTopologyKind,
        random_k: Option<usize>,
        count: usize,
        seed: u64,
    ) -> DispatchResult {
        let key = CacheKey {
            kind: "faults",
            arch: arch.name(),
            params: vec![topology_tag(topology)],
        };
        let (sweep, cached) = match self.cache.take(&key) {
            Some(CacheEntry::Faults(s)) => (s, true),
            _ => {
                let spec = SystemSpec::paper_default();
                let sweep =
                    FaultSweep::new(arch, topology, &spec, &self.calib).map_err(engine_err)?;
                (Box::new(sweep), false)
            }
        };
        let scenarios = match random_k {
            None => FaultScenario::n_minus_1(sweep.vr_count()),
            Some(k) => FaultScenario::random_k(k, count, seed, sweep.vr_count(), sweep.grid_side()),
        };
        let label = match random_k {
            None => format!("N-1 over {} modules", sweep.vr_count()),
            Some(k) => format!("{count} random {k}-fault scenarios (seed {seed})"),
        };
        let nominal_worst_drop = sweep.nominal().worst_drop().value();
        let outcome = sweep.run(&scenarios, 0);
        self.cache.put(key, CacheEntry::Faults(sweep));
        let report = outcome.map_err(engine_err)?;
        let result = Json::obj([
            ("command", Json::from("faults")),
            ("mode", Json::from(label.as_str())),
            ("topology", Json::from(topology.name())),
            ("nominal_worst_drop_v", Json::from(nominal_worst_drop)),
            ("report", report.render_json()),
        ]);
        Ok((result, cached))
    }
}

/// A checked-out streaming transient run: drives a compiled
/// [`DroopScenario`] chunk by chunk, yielding one waveform document per
/// chunk and a final summary whose `report` is bitwise the one-shot
/// `droop` report. Dropping the run — finished or aborted mid-stream —
/// checks the scenario back into the cache, so the compiled plan (and
/// its LU cache) stays warm even when a deadline kills the stream.
pub struct TransientStreamRun<'a> {
    dispatcher: &'a Dispatcher,
    key: CacheKey,
    scenario: Option<Box<DroopScenario>>,
    arch: Architecture,
    chunk: usize,
    cached: bool,
    chunks: usize,
    cursor: usize,
}

impl TransientStreamRun<'_> {
    /// Whether the compiled scenario was found in the cache (meta only
    /// — the waveform bits never depend on it).
    #[must_use]
    pub fn cached(&self) -> bool {
        self.cached
    }

    /// Chunk records emitted so far.
    #[must_use]
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// Runs up to `chunk` more time steps and returns their samples as
    /// a waveform document, or `Ok(None)` once every sample has been
    /// emitted (time to send the summary).
    ///
    /// # Errors
    ///
    /// A typed `(code, message)` pair on solver failure; the scenario
    /// still returns to the cache on drop (a fresh run resets it).
    pub fn next_chunk(&mut self) -> Result<Option<Json>, (ErrorCode, String)> {
        let scenario = self.scenario.as_mut().expect("stream scenario checked out");
        if scenario.finished() {
            return Ok(None);
        }
        scenario.advance(self.chunk).map_err(engine_err)?;
        let result = scenario.result();
        let times = result.times();
        let v = result.voltage(scenario.die());
        let t0 = times[self.cursor];
        let chunk_times: Vec<Json> = times[self.cursor..]
            .iter()
            .map(|&t| Json::from(t))
            .collect();
        let chunk_v: Vec<Json> = v[self.cursor..].iter().map(|&x| Json::from(x)).collect();
        let samples = chunk_times.len();
        self.cursor = times.len();
        self.chunks += 1;
        Ok(Some(Json::obj([
            ("t0_s", Json::from(t0)),
            ("samples", Json::from(samples)),
            ("times_s", Json::Array(chunk_times)),
            ("v_die_v", Json::Array(chunk_v)),
        ])))
    }

    /// The final summary document. Meaningful once
    /// [`TransientStreamRun::next_chunk`] has returned `None`; its
    /// `report` field carries the exact bits of the one-shot `droop`
    /// result for the same architecture.
    #[must_use]
    pub fn finish(&self) -> Json {
        let scenario = self.scenario.as_ref().expect("stream scenario checked out");
        Json::obj([
            ("command", Json::from("transient_stream")),
            ("architecture", Json::from(self.arch.name())),
            ("samples", Json::from(scenario.samples_done())),
            ("chunks", Json::from(self.chunks)),
            ("report", scenario.report().render_json()),
        ])
    }
}

impl Drop for TransientStreamRun<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.scenario.take() {
            self.dispatcher
                .cache
                .put(self.key.clone(), CacheEntry::Transient(s));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(line: &str) -> Work {
        crate::proto::Request::parse_line(line).unwrap().work
    }

    #[test]
    fn warm_result_is_bitwise_identical_to_cold() {
        for line in [
            r#"{"kind":"analyze","params":{"arch":"a1"}}"#,
            r#"{"kind":"sharing","params":{"modules":24}}"#,
            r#"{"kind":"sharing_sweep","params":{"modules":24,"setpoints":[1.0,1.005]}}"#,
            r#"{"kind":"droop","params":{"arch":"a0"}}"#,
            r#"{"kind":"mc","params":{"arch":"a1","samples":6}}"#,
            r#"{"kind":"impedance","params":{"arch":"a2","points":16}}"#,
            r#"{"kind":"faults","params":{"arch":"a1","random_k":2,"count":4}}"#,
            r#"{"kind":"transient_stream","params":{"arch":"a0","chunk":2048}}"#,
        ] {
            // Fresh dispatcher per kind: analyze and mc intentionally
            // share session entries, which would warm each other here.
            let d = Dispatcher::new(16);
            let w = work(line);
            let (cold, was_cached) = d.dispatch(&w).unwrap();
            assert!(!was_cached, "{line}: first dispatch must compile cold");
            let (warm, was_cached) = d.dispatch(&w).unwrap();
            assert!(was_cached, "{line}: second dispatch must hit the cache");
            assert_eq!(
                cold.to_string(),
                warm.to_string(),
                "{line}: cache hit changed the result bits"
            );
        }
    }

    #[test]
    fn zero_capacity_dispatcher_always_compiles_cold() {
        let d = Dispatcher::new(0);
        let w = work(r#"{"kind":"sharing"}"#);
        let (first, c1) = d.dispatch(&w).unwrap();
        let (second, c2) = d.dispatch(&w).unwrap();
        assert!(!c1 && !c2);
        assert_eq!(first.to_string(), second.to_string());
    }

    #[test]
    fn analyze_and_mc_share_one_session_entry() {
        let d = Dispatcher::new(16);
        let analyze = work(r#"{"kind":"analyze","params":{"arch":"a2"}}"#);
        let mc = work(r#"{"kind":"mc","params":{"arch":"a2","samples":4}}"#);
        let (_, cached) = d.dispatch(&analyze).unwrap();
        assert!(!cached);
        let (_, cached) = d.dispatch(&mc).unwrap();
        assert!(cached, "mc at paper defaults reuses the analyze session");
        assert_eq!(d.cache_stats().entries, 1);
    }

    #[test]
    fn engine_failures_are_typed_and_preserve_the_entry() {
        let d = Dispatcher::new(16);
        // Warm a session, then drive a failing scenario through it: an
        // absurd power at paper density overloads every capacity check.
        let ok = work(r#"{"kind":"analyze","params":{"arch":"a1"}}"#);
        d.dispatch(&ok).unwrap();
        let bad = work(r#"{"kind":"impedance","params":{"arch":"a1","points":1}}"#);
        let err = d.dispatch(&bad).unwrap_err();
        assert_eq!(err.0, ErrorCode::Engine, "{err:?}");
        // The failing run kept the compiled impedance plan resident.
        let good = work(r#"{"kind":"impedance","params":{"arch":"a1","points":16}}"#);
        let (_, cached) = d.dispatch(&good).unwrap();
        assert!(cached, "entry survived the failed scenario");
    }

    #[test]
    fn sharing_sweep_matches_sequential_direct_solves_bitwise() {
        let sweep = [1.0, 1.01, 1.02];
        let d = Dispatcher::new(4);
        let w = work(
            r#"{"kind":"sharing_sweep","params":{"placement":"below","modules":12,"setpoints":[1.0,1.01,1.02]}}"#,
        );
        let (served, _) = d.dispatch(&w).unwrap();
        let Some(Json::Array(points)) = served.get("points") else {
            panic!("missing points array: {served}");
        };
        assert_eq!(points.len(), sweep.len());

        // Oracle: the same setpoints solved one at a time through the
        // core API in the same (direct) mode.
        let spec = SystemSpec::paper_default();
        let calib = Calibration::paper_default();
        let mut solver = SharingSolver::builder(&spec, &calib)
            .placement(VrPlacement::BelowDie)
            .modules(12)
            .build()
            .unwrap();
        solver.set_solve_mode(DcPlanMode::DirectCholesky).unwrap();
        for (point, &sp) in points.iter().zip(&sweep) {
            for k in 0..solver.vr_count() {
                solver.set_vr_setpoint(k, Volts::new(sp)).unwrap();
            }
            let rep = solver.solve().unwrap();
            assert_eq!(
                point.get("report").unwrap().to_string(),
                rep.render_json().to_string(),
                "setpoint {sp}"
            );
        }
    }

    #[test]
    fn transient_stream_chunks_reassemble_and_warm_is_bitwise() {
        let d = Dispatcher::new(8);
        let mut run = d
            .begin_transient_stream(Architecture::InterposerEmbedded, 1000)
            .unwrap();
        assert!(!run.cached(), "first stream compiles cold");
        let mut cold_chunks = Vec::new();
        while let Some(c) = run.next_chunk().unwrap() {
            cold_chunks.push(c.to_string());
        }
        // 60 µs at 10 ns is 6001 samples: seven chunks of ≤1000.
        assert_eq!(cold_chunks.len(), 7);
        let cold = run.finish().to_string();
        drop(run);

        // Warm replay: the scenario came back from the cache and every
        // chunk — and the summary — carries the same bits.
        let mut run = d
            .begin_transient_stream(Architecture::InterposerEmbedded, 1000)
            .unwrap();
        assert!(run.cached(), "drop checked the scenario back in");
        let mut warm_chunks = Vec::new();
        while let Some(c) = run.next_chunk().unwrap() {
            warm_chunks.push(c.to_string());
        }
        assert_eq!(cold_chunks, warm_chunks);
        assert_eq!(run.finish().to_string(), cold);
        drop(run);

        // The dispatch fallback drains the same run silently.
        let w = work(r#"{"kind":"transient_stream","params":{"arch":"a2","chunk":1000}}"#);
        let (full, cached) = d.dispatch(&w).unwrap();
        assert!(cached);
        assert_eq!(full.to_string(), cold);

        // And the summary's report is bitwise the one-shot droop report.
        let (droop, _) = d
            .dispatch(&work(r#"{"kind":"droop","params":{"arch":"a2"}}"#))
            .unwrap();
        assert_eq!(
            full.get("report").unwrap().to_string(),
            droop.get("report").unwrap().to_string()
        );
    }

    #[test]
    fn aborted_stream_keeps_the_compiled_scenario_warm() {
        let d = Dispatcher::new(8);
        let mut run = d
            .begin_transient_stream(Architecture::Reference, 500)
            .unwrap();
        // Emit one chunk, then abandon the stream mid-run.
        assert!(run.next_chunk().unwrap().is_some());
        drop(run);
        assert_eq!(d.cache_stats().entries, 1);
        let run = d
            .begin_transient_stream(Architecture::Reference, 500)
            .unwrap();
        assert!(run.cached(), "mid-stream abort still checked it back in");
    }

    #[test]
    fn mc_summary_matches_the_one_shot_engine_bitwise() {
        let d = Dispatcher::new(4);
        let w = work(r#"{"kind":"mc","params":{"arch":"a1","samples":5,"seed":11}}"#);
        let (served, _) = d.dispatch(&w).unwrap();
        let oneshot = vpd_core::run_tolerance(
            Architecture::InterposerPeriphery,
            VrTopologyKind::Dsch,
            &SystemSpec::paper_default(),
            &Calibration::paper_default(),
            &McSettings {
                samples: 5,
                seed: 11,
                ..McSettings::default()
            },
        )
        .unwrap();
        assert_eq!(
            served.get("summary").unwrap().to_string(),
            oneshot.render_json().to_string()
        );
    }
}
