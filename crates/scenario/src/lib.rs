//! Declarative scenario documents: the `.vpd` format that turns the
//! paper's five hardcoded architectures into "any scenario a user can
//! describe".
//!
//! A document is TOML-like sectioned text — `[scenario]`, `[spec]`,
//! `[calibration]`, `[load]`, plus optional `[converter]`,
//! `[tech.<base>]`, and `[faults]` sections — parsed with per-field
//! defaults, units, and range validation into a typed [`ScenarioDoc`].
//! Every diagnostic is a [`ScenarioError`] carrying the 1-based source
//! line/column, a dotted field path, and a stable machine-readable
//! [`ScenarioErrorCode`].
//!
//! Documents **round-trip bitwise**: [`ScenarioDoc::render`] emits one
//! canonical spelling (shortest-roundtrip number formatting, fixed key
//! order, materialized defaults), parsing the rendered text yields an
//! equal document, and equal documents render byte-identically. The
//! FNV-1a hash of the canonical text ([`ScenarioDoc::content_hash`])
//! therefore keys compiled state in the `vpd-serve` scenario cache:
//! two spellings of the same scenario share one cache entry.
//!
//! [`ScenarioDoc::compile`] lowers a document into the typed structs
//! every engine already consumes ([`Scenario`]: `SystemSpec`,
//! `Calibration`, `AnalysisOptions`, fitted `EfficiencyCurve`s,
//! validated `InterconnectTech`s), and [`Scenario::session`] compiles
//! the reusable die-grid analysis session. The five builtin
//! architectures ship as checked-in documents ([`builtin_doc`]) whose
//! compiled structs are pinned bitwise against the hardcoded
//! constructors.
//!
//! ```
//! use vpd_scenario::ScenarioDoc;
//!
//! let doc = ScenarioDoc::parse(
//!     "[scenario]\narchitecture = \"a2\"\ntopology = \"3lhd\"\n",
//! )
//! .unwrap();
//! let scenario = doc.compile().unwrap();
//! assert_eq!(scenario.name, "a2");
//! // Canonical render → parse is bitwise stable.
//! assert_eq!(ScenarioDoc::parse(&doc.render()).unwrap(), doc);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builtin;
mod compile;
mod doc;
mod error;
mod raw;
mod render;

pub use builtin::{builtin_doc, builtin_docs, BUILTIN_NAMES};
pub use compile::{FaultPlan, Scenario};
pub use doc::{
    default_placement, solve_mode_name, CalibDoc, ConverterDoc, FaultsDoc, ScenarioDoc, SpecDoc,
    TechBase, TechDoc, MAX_FAULT_COUNT, MAX_FAULT_K, MAX_GRID_NODES, MAX_MODULES,
};
pub use error::{ScenarioError, ScenarioErrorCode};

/// 64-bit FNV-1a over a byte string — the deterministic, dependency-free
/// hash behind [`ScenarioDoc::content_hash`].
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ScenarioDoc {
    /// The document's content hash: FNV-1a 64 over the canonical
    /// rendering. Spelling-invariant (comments, key order, and number
    /// formatting differences vanish in the canonical form), so serve
    /// keys its compiled-scenario cache on this.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        fnv1a64(self.render().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn equivalent_spellings_share_a_hash() {
        let terse = ScenarioDoc::parse("[scenario]\narchitecture = \"a3-12\"\n").unwrap();
        let verbose = ScenarioDoc::parse(
            "# same thing, spelled out\n[scenario]\nname = \"a3-12\"\n\
             architecture = \"a3\"\nbus_v = 12\n",
        )
        .unwrap();
        assert_eq!(terse, verbose);
        assert_eq!(terse.content_hash(), verbose.content_hash());
    }
}
