//! The typed scenario document: schema-validated sections with every
//! default materialized, ready to render canonically or compile into
//! the `vpd-core` analysis structs.
//!
//! Parsing performs the *complete* validation pass — types, ranges,
//! enum spellings, cross-field consistency, and the feasibility checks
//! the typed constructors downstream would raise (converter curve fit,
//! interconnect geometry) — so every error class carries a real source
//! line/column and a dotted field path. [`crate::compile`] then only
//! re-runs infallible constructions.

use vpd_converters::{CurveAnchors, EfficiencyCurve, VrTopologyKind};
use vpd_core::wire::{architecture_wire_name, parse_architecture, parse_placement, parse_topology};
use vpd_core::{Architecture, DcPlanMode, PowerMap, VrPlacement};
use vpd_package::{InterconnectTech, ViaMaterial};
use vpd_units::{Amps, Efficiency, Volts};

use crate::error::{ScenarioError, ScenarioErrorCode};
use crate::raw::{RawDoc, RawEntry, RawSection, RawValue, Span};

/// Ceiling on `scenario.modules`.
pub const MAX_MODULES: usize = 10_000;
/// Ceiling on `calibration.grid_nodes_per_side` (bounds the mesh a
/// served document can demand).
pub const MAX_GRID_NODES: usize = 200;
/// Ceiling on `faults.count`.
pub const MAX_FAULT_COUNT: usize = 1_000_000;
/// Ceiling on `faults.k`.
pub const MAX_FAULT_K: usize = 1_000;

/// The `[spec]` section: raw document-unit values (volts, watts,
/// A/mm²), defaults = the paper's 48 V → 1 V, 1 kW, 2 A/mm² system.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SpecDoc {
    /// PCB input voltage, volts.
    pub pcb_v: f64,
    /// Point-of-load voltage, volts.
    pub pol_v: f64,
    /// Die power, watts.
    pub power_w: f64,
    /// Die current density, A/mm².
    pub density_a_mm2: f64,
}

impl Default for SpecDoc {
    fn default() -> Self {
        Self {
            pcb_v: 48.0,
            pol_v: 1.0,
            power_w: 1000.0,
            density_a_mm2: 2.0,
        }
    }
}

/// The `[calibration]` section: raw document-unit values (µΩ/mΩ as the
/// key names say), defaults = `Calibration::paper_default()`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CalibDoc {
    /// Lateral PCB+package routing at POL voltage, µΩ.
    pub horizontal_pol_uohm: f64,
    /// Lateral 48 V PCB feed, mΩ.
    pub horizontal_hv_mohm: f64,
    /// Interposer intermediate-voltage bus, mΩ.
    pub interposer_bus_mohm: f64,
    /// Die-grid sheet resistance per square, mΩ.
    pub grid_sheet_mohm: f64,
    /// Periphery-module droop, mΩ.
    pub vr_droop_periphery_mohm: f64,
    /// Below-die-module droop, µΩ.
    pub vr_droop_below_die_uohm: f64,
    /// Mesh resolution per side.
    pub grid_nodes_per_side: usize,
}

impl Default for CalibDoc {
    fn default() -> Self {
        Self {
            horizontal_pol_uohm: 280.0,
            horizontal_hv_mohm: 10.0,
            interposer_bus_mohm: 1.15,
            grid_sheet_mohm: 0.3,
            vr_droop_periphery_mohm: 1.2,
            vr_droop_below_die_uohm: 60.0,
            grid_nodes_per_side: 25,
        }
    }
}

/// The `[converter]` section: published loss-curve anchor points for a
/// user-supplied POL converter, fitted through
/// `EfficiencyCurve::fit` at parse time.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ConverterDoc {
    /// Output voltage the anchors refer to, volts.
    pub v_out: f64,
    /// Current at peak efficiency, amps.
    pub i_peak: f64,
    /// Peak efficiency in `(0, 1)`.
    pub eta_peak: f64,
    /// Maximum load current, amps (must exceed `i_peak`).
    pub i_max: f64,
    /// Efficiency at maximum load, in `(0, 1)`.
    pub eta_max: f64,
}

impl ConverterDoc {
    /// The fitted anchors (infallible after parse-time validation).
    #[must_use]
    pub fn anchors(&self) -> CurveAnchors {
        CurveAnchors {
            v_out: Volts::new(self.v_out),
            i_peak: Amps::new(self.i_peak),
            eta_peak: Efficiency::new(self.eta_peak).expect("validated in (0, 1) at parse"),
            i_max: Amps::new(self.i_max),
            eta_max: Efficiency::new(self.eta_max).expect("validated in (0, 1) at parse"),
        }
    }
}

/// Which Table I technology a `[tech.<base>]` section starts from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TechBase {
    /// PCB→package BGA balls.
    Bga,
    /// Package→interposer C4 bumps.
    C4,
    /// Through-silicon vias.
    Tsv,
    /// Interposer→die µ-bumps.
    MicroBump,
    /// Direct Cu pads.
    CuPad,
}

impl TechBase {
    /// Document spelling of the base id.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Bga => "bga",
            Self::C4 => "c4",
            Self::Tsv => "tsv",
            Self::MicroBump => "micro-bump",
            Self::CuPad => "cu-pad",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "bga" => Some(Self::Bga),
            "c4" => Some(Self::C4),
            "tsv" => Some(Self::Tsv),
            "micro-bump" => Some(Self::MicroBump),
            "cu-pad" => Some(Self::CuPad),
            _ => None,
        }
    }

    /// The Table I constant the section overrides.
    #[must_use]
    pub fn table_i(self) -> InterconnectTech {
        match self {
            Self::Bga => InterconnectTech::BGA,
            Self::C4 => InterconnectTech::C4,
            Self::Tsv => InterconnectTech::TSV,
            Self::MicroBump => InterconnectTech::MICRO_BUMP,
            Self::CuPad => InterconnectTech::CU_PAD,
        }
    }
}

/// One `[tech.<base>]` section: a Table I technology with selective
/// numeric overrides. Only explicitly overridden fields are stored (and
/// rendered), so untouched fields keep the base constant's exact bits.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TechDoc {
    /// Which builtin the overrides apply to.
    pub base: TechBase,
    /// Via material override.
    pub material: Option<ViaMaterial>,
    /// Via/ball diameter override, µm.
    pub diameter_um: Option<f64>,
    /// Conduction cross-section override, µm².
    pub cross_section_um2: Option<f64>,
    /// Via height override, µm.
    pub height_um: Option<f64>,
    /// Array pitch override, µm.
    pub pitch_um: Option<f64>,
    /// Platform area override, mm².
    pub platform_area_mm2: Option<f64>,
    /// Power-site utilization cap override, in `(0, 1]`.
    pub power_site_cap: Option<f64>,
}

/// The `[faults]` section: which fault sweep `scenario run`/serve
/// executes for this document.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultsDoc {
    /// `None` = the N-1 contingency set; `Some(k)` = random k-fault
    /// draws.
    pub random_k: Option<usize>,
    /// Scenario count (random-k mode).
    pub count: usize,
    /// RNG seed (random-k mode).
    pub seed: u64,
}

/// A fully validated scenario document with every default
/// materialized. Equal documents render to byte-identical canonical
/// text (and therefore share a content hash).
#[derive(Clone, PartialEq, Debug)]
pub struct ScenarioDoc {
    /// Display name (defaults to the architecture spelling).
    pub name: String,
    /// Delivery architecture (a builtin tag, or `a3` with a custom
    /// bus voltage).
    pub architecture: Architecture,
    /// POL-stage topology.
    pub topology: VrTopologyKind,
    /// Regulator placement (defaults per architecture: below-die for
    /// `a2`, periphery otherwise).
    pub placement: VrPlacement,
    /// Module-count override (absent = the architecture's default).
    pub modules: Option<usize>,
    /// Permit modules beyond their published maximum load.
    pub allow_overload: bool,
    /// Sparse-solver mode for the die-grid mesh.
    pub solve_mode: DcPlanMode,
    /// `[spec]`.
    pub spec: SpecDoc,
    /// `[calibration]`.
    pub calibration: CalibDoc,
    /// `[load]`.
    pub load: PowerMap,
    /// `[converter]`, when present.
    pub converter: Option<ConverterDoc>,
    /// `[tech.*]` sections in source order.
    pub techs: Vec<TechDoc>,
    /// `[faults]`, when present.
    pub faults: Option<FaultsDoc>,
}

/// Spelling of a solve mode.
#[must_use]
pub fn solve_mode_name(m: DcPlanMode) -> &'static str {
    match m {
        DcPlanMode::WarmCg => "warm-cg",
        DcPlanMode::DirectCholesky => "direct-cholesky",
        // Non-exhaustive upstream: a new plan mode must gain a document
        // spelling before documents can carry it.
        _ => unreachable!("plan mode {m:?} has no document spelling"),
    }
}

fn parse_solve_mode(s: &str) -> Option<DcPlanMode> {
    match s {
        "warm-cg" => Some(DcPlanMode::WarmCg),
        "direct-cholesky" => Some(DcPlanMode::DirectCholesky),
        _ => None,
    }
}

/// The default placement a document inherits from its architecture:
/// under-die for the embedded architecture, periphery otherwise.
#[must_use]
pub fn default_placement(architecture: Architecture) -> VrPlacement {
    match architecture {
        Architecture::InterposerEmbedded => VrPlacement::BelowDie,
        _ => VrPlacement::Periphery,
    }
}

// ---------------------------------------------------------------------
// Schema-aware section reading
// ---------------------------------------------------------------------

/// Reads one raw section against its schema: typed accessors with
/// defaults, consumed-key tracking, and unknown-key rejection.
struct Reader<'a> {
    path: &'a str,
    section: Option<&'a RawSection>,
    consumed: Vec<&'a str>,
}

impl<'a> Reader<'a> {
    fn new(path: &'a str, section: Option<&'a RawSection>) -> Self {
        Self {
            path,
            section,
            consumed: Vec::new(),
        }
    }

    fn field(&self, key: &str) -> String {
        format!("{}.{key}", self.path)
    }

    fn entry(&mut self, key: &'static str) -> Option<&'a RawEntry> {
        // Record the key whether or not the document carries it: the
        // consumed list doubles as the section's accepted-key list in
        // unknown-key diagnostics.
        if !self.consumed.contains(&key) {
            self.consumed.push(key);
        }
        self.section
            .and_then(|s| s.entries.iter().find(|e| e.key == key))
    }

    fn bare<'e>(&self, key: &str, e: &'e RawEntry) -> Result<&'e str, ScenarioError> {
        match &e.value {
            RawValue::Bare(t) => Ok(t),
            RawValue::Quoted(_) => Err(e.value_span.err(
                self.field(key),
                ScenarioErrorCode::BadValue,
                "expects an unquoted value",
            )),
        }
    }

    fn quoted<'e>(&self, key: &str, e: &'e RawEntry) -> Result<&'e str, ScenarioError> {
        match &e.value {
            RawValue::Quoted(t) => Ok(t),
            RawValue::Bare(_) => Err(e.value_span.err(
                self.field(key),
                ScenarioErrorCode::BadValue,
                "expects a quoted string",
            )),
        }
    }

    /// A finite number; `(f64, span)` for range checks at the caller.
    fn f64_entry(&self, key: &str, e: &RawEntry) -> Result<(f64, Span), ScenarioError> {
        let t = self.bare(key, e)?;
        let v: f64 = t.parse().map_err(|_| {
            e.value_span.err(
                self.field(key),
                ScenarioErrorCode::BadValue,
                format!("expects a number, got `{t}`"),
            )
        })?;
        if !v.is_finite() {
            return Err(e.value_span.err(
                self.field(key),
                ScenarioErrorCode::OutOfRange,
                format!("must be finite, got {v}"),
            ));
        }
        Ok((v, e.value_span))
    }

    /// A positive finite number, defaulted.
    fn f64_positive(&mut self, key: &'static str, default: f64) -> Result<f64, ScenarioError> {
        match self.entry(key) {
            None => Ok(default),
            Some(e) => {
                let (v, span) = self.f64_entry(key, e)?;
                if v <= 0.0 {
                    return Err(span.err(
                        self.field(key),
                        ScenarioErrorCode::OutOfRange,
                        format!("must be positive, got {v}"),
                    ));
                }
                Ok(v)
            }
        }
    }

    fn count(
        &mut self,
        key: &'static str,
        default: usize,
        min: usize,
        max: usize,
    ) -> Result<usize, ScenarioError> {
        match self.entry(key) {
            None => Ok(default),
            Some(e) => self.count_entry(key, e, min, max),
        }
    }

    fn count_entry(
        &self,
        key: &str,
        e: &RawEntry,
        min: usize,
        max: usize,
    ) -> Result<usize, ScenarioError> {
        let t = self.bare(key, e)?;
        let v: usize = t.parse().map_err(|_| {
            e.value_span.err(
                self.field(key),
                ScenarioErrorCode::BadValue,
                format!("expects a non-negative integer, got `{t}`"),
            )
        })?;
        if v < min {
            return Err(e.value_span.err(
                self.field(key),
                ScenarioErrorCode::OutOfRange,
                format!("must be at least {min}, got {v}"),
            ));
        }
        if v > max {
            return Err(e.value_span.err(
                self.field(key),
                ScenarioErrorCode::OutOfRange,
                format!("is capped at {max}, got {v}"),
            ));
        }
        Ok(v)
    }

    fn flag(&mut self, key: &'static str, default: bool) -> Result<bool, ScenarioError> {
        match self.entry(key) {
            None => Ok(default),
            Some(e) => match self.bare(key, e)? {
                "true" => Ok(true),
                "false" => Ok(false),
                other => Err(e.value_span.err(
                    self.field(key),
                    ScenarioErrorCode::BadValue,
                    format!("expects true or false, got `{other}`"),
                )),
            },
        }
    }

    /// A quoted enum value parsed through `parse`, with the accepted
    /// spellings echoed on failure.
    fn choice<T>(
        &mut self,
        key: &'static str,
        default: T,
        accepted: &str,
        parse: impl Fn(&str) -> Option<T>,
    ) -> Result<T, ScenarioError> {
        match self.entry(key) {
            None => Ok(default),
            Some(e) => {
                let s = self.quoted(key, e)?;
                parse(s).ok_or_else(|| {
                    e.value_span.err(
                        self.field(key),
                        ScenarioErrorCode::BadEnum,
                        format!("unknown value `{s}` (expected one of: {accepted})"),
                    )
                })
            }
        }
    }

    /// Rejects any entry the schema did not consume, and any key given
    /// twice.
    fn finish(self) -> Result<(), ScenarioError> {
        let Some(section) = self.section else {
            return Ok(());
        };
        for (i, e) in section.entries.iter().enumerate() {
            if section.entries[..i].iter().any(|p| p.key == e.key) {
                return Err(e.key_span.err(
                    self.field(&e.key),
                    ScenarioErrorCode::DuplicateKey,
                    format!("key `{}` given twice", e.key),
                ));
            }
            if !self.consumed.contains(&e.key.as_str()) {
                return Err(e.key_span.err(
                    self.field(&e.key),
                    ScenarioErrorCode::UnknownKey,
                    format!(
                        "unknown key `{}` (accepted here: {})",
                        e.key,
                        self.consumed.join(", ")
                    ),
                ));
            }
        }
        Ok(())
    }
}

impl ScenarioDoc {
    /// Parses and fully validates a scenario document.
    ///
    /// # Errors
    ///
    /// A [`ScenarioError`] pinpointing the first violation: its source
    /// line/column, dotted field path, and stable
    /// [`ScenarioErrorCode`].
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let raw = RawDoc::parse(text)?;
        // Section-level checks: known names, no duplicates.
        const SECTIONS: [&str; 7] = [
            "scenario",
            "spec",
            "calibration",
            "load",
            "converter",
            "tech",
            "faults",
        ];
        for (i, s) in raw.sections.iter().enumerate() {
            if !SECTIONS.contains(&s.name.as_str()) {
                return Err(s.span.err(
                    s.name.clone(),
                    ScenarioErrorCode::UnknownSection,
                    format!(
                        "unknown section `[{}]` (accepted: {})",
                        s.name,
                        SECTIONS.join(", ")
                    ),
                ));
            }
            if s.sub.is_some() != (s.name == "tech") {
                return Err(s.span.err(
                    s.name.clone(),
                    ScenarioErrorCode::UnknownSection,
                    if s.name == "tech" {
                        "technology sections are written `[tech.<base>]`".to_string()
                    } else {
                        format!("section `[{}]` takes no `.sub` qualifier", s.name)
                    },
                ));
            }
            if raw.sections[..i]
                .iter()
                .any(|p| p.name == s.name && p.sub == s.sub)
            {
                return Err(s.span.err(
                    s.name.clone(),
                    ScenarioErrorCode::DuplicateKey,
                    format!("section `[{}]` given twice", heading(s)),
                ));
            }
        }
        let find = |name: &str| raw.sections.iter().find(|s| s.name == name);

        // --- [scenario] -------------------------------------------------
        let Some(scn) = find("scenario") else {
            return Err(ScenarioError::new(
                1,
                1,
                "scenario",
                ScenarioErrorCode::MissingKey,
                "a scenario document needs a `[scenario]` section",
            ));
        };
        let mut r = Reader::new("scenario", Some(scn));
        let arch_entry = r.entry("architecture");
        let Some(arch_entry) = arch_entry else {
            return Err(scn.span.err(
                "scenario.architecture",
                ScenarioErrorCode::MissingKey,
                "key `architecture` is required",
            ));
        };
        let arch_tag = r.quoted("architecture", arch_entry)?;
        let bus_entry = r.entry("bus_v");
        let architecture = match (arch_tag, bus_entry) {
            ("a3", Some(e)) => {
                let (v, span) = r.f64_entry("bus_v", e)?;
                if v <= 0.0 {
                    return Err(span.err(
                        "scenario.bus_v",
                        ScenarioErrorCode::OutOfRange,
                        format!("must be positive, got {v}"),
                    ));
                }
                Architecture::TwoStage { bus: Volts::new(v) }
            }
            ("a3", None) => {
                return Err(arch_entry.value_span.err(
                    "scenario.bus_v",
                    ScenarioErrorCode::MissingKey,
                    "architecture `a3` needs an explicit `bus_v`",
                ));
            }
            (tag, Some(e)) => {
                return Err(e.key_span.err(
                    "scenario.bus_v",
                    ScenarioErrorCode::Inconsistent,
                    format!("`bus_v` only applies to architecture `a3`, not `{tag}`"),
                ));
            }
            (tag, None) => parse_architecture(tag).ok_or_else(|| {
                arch_entry.value_span.err(
                    "scenario.architecture",
                    ScenarioErrorCode::BadEnum,
                    format!("unknown architecture `{tag}` (expected one of: a0, a1, a2, a3-12, a3-6, a3)"),
                )
            })?,
        };
        let default_name =
            architecture_wire_name(architecture).map_or_else(|| "a3".to_string(), str::to_string);
        let name = match r.entry("name") {
            None => default_name,
            Some(e) => r.quoted("name", e)?.to_string(),
        };
        let topology = r.choice(
            "topology",
            VrTopologyKind::Dsch,
            "dpmih, dsch, 3lhd",
            parse_topology,
        )?;
        let placement = r.choice(
            "placement",
            default_placement(architecture),
            "periphery, below",
            parse_placement,
        )?;
        let modules = match r.entry("modules") {
            None => None,
            Some(e) => Some(r.count_entry("modules", e, 1, MAX_MODULES)?),
        };
        let allow_overload = r.flag("allow_overload", true)?;
        let solve_mode = r.choice(
            "solve_mode",
            DcPlanMode::WarmCg,
            "warm-cg, direct-cholesky",
            parse_solve_mode,
        )?;
        r.finish()?;

        // --- [spec] -----------------------------------------------------
        let d = SpecDoc::default();
        let mut r = Reader::new("spec", find("spec"));
        let spec = SpecDoc {
            pcb_v: r.f64_positive("pcb_v", d.pcb_v)?,
            pol_v: r.f64_positive("pol_v", d.pol_v)?,
            power_w: r.f64_positive("power_w", d.power_w)?,
            density_a_mm2: r.f64_positive("density_a_mm2", d.density_a_mm2)?,
        };
        if spec.pol_v >= spec.pcb_v {
            let span = find("spec").map_or(scn.span, |s| s.span);
            let span = find("spec")
                .and_then(|s| s.entries.iter().find(|e| e.key == "pol_v"))
                .map_or(span, |e| e.value_span);
            return Err(span.err(
                "spec.pol_v",
                ScenarioErrorCode::OutOfRange,
                format!(
                    "pol_v ({}) must be below pcb_v ({})",
                    spec.pol_v, spec.pcb_v
                ),
            ));
        }
        r.finish()?;

        // --- [calibration] ----------------------------------------------
        let d = CalibDoc::default();
        let mut r = Reader::new("calibration", find("calibration"));
        let calibration = CalibDoc {
            horizontal_pol_uohm: r.f64_positive("horizontal_pol_uohm", d.horizontal_pol_uohm)?,
            horizontal_hv_mohm: r.f64_positive("horizontal_hv_mohm", d.horizontal_hv_mohm)?,
            interposer_bus_mohm: r.f64_positive("interposer_bus_mohm", d.interposer_bus_mohm)?,
            grid_sheet_mohm: r.f64_positive("grid_sheet_mohm", d.grid_sheet_mohm)?,
            vr_droop_periphery_mohm: r
                .f64_positive("vr_droop_periphery_mohm", d.vr_droop_periphery_mohm)?,
            vr_droop_below_die_uohm: r
                .f64_positive("vr_droop_below_die_uohm", d.vr_droop_below_die_uohm)?,
            grid_nodes_per_side: r.count(
                "grid_nodes_per_side",
                d.grid_nodes_per_side,
                2,
                MAX_GRID_NODES,
            )?,
        };
        r.finish()?;

        // --- [load] -----------------------------------------------------
        let load_section = find("load");
        let mut r = Reader::new("load", load_section);
        #[derive(PartialEq, Clone, Copy)]
        enum MapKind {
            Uniform,
            Gaussian,
            Split,
        }
        let map = r.choice(
            "map",
            MapKind::Gaussian,
            "uniform, gaussian, split",
            |s| match s {
                "uniform" => Some(MapKind::Uniform),
                "gaussian" => Some(MapKind::Gaussian),
                "split" => Some(MapKind::Split),
                _ => None,
            },
        )?;
        // Shape keys are read for every map kind (so `finish` knows
        // them), then cross-checked against the chosen kind.
        let cx = r.entry("cx").cloned();
        let cy = r.entry("cy").cloned();
        let sigma = r.entry("sigma").cloned();
        let floor = r.entry("floor").cloned();
        let left_share = r.entry("left_share").cloned();
        let misplaced = |kind: &'static str, e: &RawEntry| {
            e.key_span.err(
                format!("load.{}", e.key),
                ScenarioErrorCode::Inconsistent,
                format!("`{}` does not apply to map = \"{kind}\"", e.key),
            )
        };
        let load = match map {
            MapKind::Uniform => {
                if let Some(e) = [&cx, &cy, &sigma, &floor, &left_share]
                    .into_iter()
                    .flatten()
                    .next()
                {
                    return Err(misplaced("uniform", e));
                }
                PowerMap::Uniform
            }
            MapKind::Gaussian => {
                if let Some(e) = &left_share {
                    return Err(misplaced("gaussian", e));
                }
                let unit = |key: &'static str, e: &Option<RawEntry>, dflt: f64| match e {
                    None => Ok(dflt),
                    Some(e) => {
                        let (v, span) = r.f64_entry(key, e)?;
                        if !(0.0..=1.0).contains(&v) {
                            return Err(span.err(
                                format!("load.{key}"),
                                ScenarioErrorCode::OutOfRange,
                                format!("must lie in [0, 1], got {v}"),
                            ));
                        }
                        Ok(v)
                    }
                };
                let sigma = match &sigma {
                    None => 0.09,
                    Some(e) => {
                        let (v, span) = r.f64_entry("sigma", e)?;
                        if v <= 0.0 {
                            return Err(span.err(
                                "load.sigma",
                                ScenarioErrorCode::OutOfRange,
                                format!("must be positive, got {v}"),
                            ));
                        }
                        v
                    }
                };
                PowerMap::GaussianHotspot {
                    cx: unit("cx", &cx, 0.5)?,
                    cy: unit("cy", &cy, 0.5)?,
                    sigma,
                    floor: unit("floor", &floor, 0.32)?,
                }
            }
            MapKind::Split => {
                if let Some(e) = [&cx, &cy, &sigma, &floor].into_iter().flatten().next() {
                    return Err(misplaced("split", e));
                }
                let left_share = match &left_share {
                    None => 0.5,
                    Some(e) => {
                        let (v, span) = r.f64_entry("left_share", e)?;
                        if !(0.0..=1.0).contains(&v) {
                            return Err(span.err(
                                "load.left_share",
                                ScenarioErrorCode::OutOfRange,
                                format!("must lie in [0, 1], got {v}"),
                            ));
                        }
                        v
                    }
                };
                PowerMap::SplitHalves { left_share }
            }
        };
        r.finish()?;

        // --- [converter] ------------------------------------------------
        let converter = match find("converter") {
            None => None,
            Some(section) => {
                let mut r = Reader::new("converter", Some(section));
                let required =
                    |r: &mut Reader<'_>, key: &'static str| -> Result<(f64, Span), ScenarioError> {
                        match r.entry(key) {
                            None => Err(section.span.err(
                                format!("converter.{key}"),
                                ScenarioErrorCode::MissingKey,
                                format!("key `{key}` is required in [converter]"),
                            )),
                            Some(e) => r.f64_entry(key, e),
                        }
                    };
                let positive = |key: &'static str, (v, span): (f64, Span)| {
                    if v <= 0.0 {
                        Err(span.err(
                            format!("converter.{key}"),
                            ScenarioErrorCode::OutOfRange,
                            format!("must be positive, got {v}"),
                        ))
                    } else {
                        Ok((v, span))
                    }
                };
                let eta = |key: &'static str, (v, span): (f64, Span)| {
                    if v <= 0.0 || v >= 1.0 {
                        Err(span.err(
                            format!("converter.{key}"),
                            ScenarioErrorCode::OutOfRange,
                            format!("efficiency must lie in (0, 1), got {v}"),
                        ))
                    } else {
                        Ok((v, span))
                    }
                };
                let (v_out, _) = positive("v_out", required(&mut r, "v_out")?)?;
                let (i_peak, _) = positive("i_peak", required(&mut r, "i_peak")?)?;
                let (eta_peak, _) = eta("eta_peak", required(&mut r, "eta_peak")?)?;
                let (i_max, i_max_span) = positive("i_max", required(&mut r, "i_max")?)?;
                let (eta_max, _) = eta("eta_max", required(&mut r, "eta_max")?)?;
                if i_max <= i_peak {
                    return Err(i_max_span.err(
                        "converter.i_max",
                        ScenarioErrorCode::OutOfRange,
                        format!("i_max ({i_max}) must exceed i_peak ({i_peak})"),
                    ));
                }
                r.finish()?;
                let doc = ConverterDoc {
                    v_out,
                    i_peak,
                    eta_peak,
                    i_max,
                    eta_max,
                };
                // Feasibility backstop: the quadratic loss model must
                // actually fit through these anchors.
                if let Err(e) = EfficiencyCurve::fit(doc.anchors()) {
                    return Err(section.span.err(
                        "converter",
                        ScenarioErrorCode::Inconsistent,
                        format!("no loss curve fits these anchors: {e}"),
                    ));
                }
                Some(doc)
            }
        };

        // --- [tech.<base>] ----------------------------------------------
        let mut techs = Vec::new();
        for section in raw.sections.iter().filter(|s| s.name == "tech") {
            let sub = section.sub.as_deref().unwrap_or_default();
            let Some(base) = TechBase::parse(sub) else {
                return Err(section.span.err(
                    format!("tech.{sub}"),
                    ScenarioErrorCode::BadEnum,
                    format!(
                        "unknown technology `{sub}` (expected one of: bga, c4, tsv, \
                         micro-bump, cu-pad)"
                    ),
                ));
            };
            let path = format!("tech.{sub}");
            let mut r = Reader::new(&path, Some(section));
            let opt_pos = |r: &mut Reader<'_>, key: &'static str| match r.entry(key) {
                None => Ok(None),
                Some(e) => {
                    let (v, span) = r.f64_entry(key, e)?;
                    if v <= 0.0 {
                        return Err(span.err(
                            format!("tech.{sub}.{key}"),
                            ScenarioErrorCode::OutOfRange,
                            format!("must be positive, got {v}"),
                        ));
                    }
                    Ok(Some(v))
                }
            };
            let material = match r.entry("material") {
                None => None,
                Some(e) => {
                    let s = r.quoted("material", e)?;
                    match s {
                        "solder" => Some(ViaMaterial::Solder),
                        "copper" => Some(ViaMaterial::Copper),
                        other => {
                            return Err(e.value_span.err(
                                format!("tech.{sub}.material"),
                                ScenarioErrorCode::BadEnum,
                                format!("unknown material `{other}` (expected: solder, copper)"),
                            ));
                        }
                    }
                }
            };
            let tech = TechDoc {
                base,
                material,
                diameter_um: opt_pos(&mut r, "diameter_um")?,
                cross_section_um2: opt_pos(&mut r, "cross_section_um2")?,
                height_um: opt_pos(&mut r, "height_um")?,
                pitch_um: opt_pos(&mut r, "pitch_um")?,
                platform_area_mm2: opt_pos(&mut r, "platform_area_mm2")?,
                power_site_cap: match r.entry("power_site_cap") {
                    None => None,
                    Some(e) => {
                        let (v, span) = r.f64_entry("power_site_cap", e)?;
                        if v <= 0.0 || v > 1.0 {
                            return Err(span.err(
                                format!("tech.{sub}.power_site_cap"),
                                ScenarioErrorCode::OutOfRange,
                                format!("must lie in (0, 1], got {v}"),
                            ));
                        }
                        Some(v)
                    }
                },
            };
            // Geometry backstop through the typed vpd-package validator.
            if let Err(e) = crate::compile::compile_tech(&tech).validated() {
                return Err(section
                    .span
                    .err(path, ScenarioErrorCode::OutOfRange, e.to_string()));
            }
            r.finish()?;
            techs.push(tech);
        }

        // --- [faults] ---------------------------------------------------
        let faults = match find("faults") {
            None => None,
            Some(section) => {
                let mut r = Reader::new("faults", Some(section));
                #[derive(PartialEq, Clone, Copy)]
                enum Mode {
                    NMinusOne,
                    RandomK,
                }
                let mode = r.choice("mode", Mode::NMinusOne, "n-1, random-k", |s| match s {
                    "n-1" => Some(Mode::NMinusOne),
                    "random-k" => Some(Mode::RandomK),
                    _ => None,
                })?;
                let k = r.entry("k").cloned();
                let count = r.entry("count").cloned();
                let seed = r.entry("seed").cloned();
                let doc = match mode {
                    Mode::NMinusOne => {
                        if let Some(e) = [&k, &count, &seed].into_iter().flatten().next() {
                            return Err(e.key_span.err(
                                format!("faults.{}", e.key),
                                ScenarioErrorCode::Inconsistent,
                                format!("`{}` only applies to mode = \"random-k\"", e.key),
                            ));
                        }
                        FaultsDoc {
                            random_k: None,
                            count: 32,
                            seed: 64023,
                        }
                    }
                    Mode::RandomK => {
                        let Some(k_entry) = &k else {
                            return Err(section.span.err(
                                "faults.k",
                                ScenarioErrorCode::MissingKey,
                                "mode \"random-k\" needs a `k`",
                            ));
                        };
                        let k = r.count_entry("k", k_entry, 1, MAX_FAULT_K)?;
                        let count = match &count {
                            None => 32,
                            Some(e) => r.count_entry("count", e, 1, MAX_FAULT_COUNT)?,
                        };
                        let seed = match &seed {
                            None => 64023,
                            Some(e) => {
                                let t = r.bare("seed", e)?;
                                t.parse::<u64>().map_err(|_| {
                                    e.value_span.err(
                                        "faults.seed",
                                        ScenarioErrorCode::BadValue,
                                        format!("expects a non-negative integer, got `{t}`"),
                                    )
                                })?
                            }
                        };
                        FaultsDoc {
                            random_k: Some(k),
                            count,
                            seed,
                        }
                    }
                };
                r.finish()?;
                Some(doc)
            }
        };

        Ok(Self {
            name,
            architecture,
            topology,
            placement,
            modules,
            allow_overload,
            solve_mode,
            spec,
            calibration,
            load,
            converter,
            techs,
            faults,
        })
    }
}

fn heading(s: &RawSection) -> String {
    match &s.sub {
        Some(sub) => format!("{}.{sub}", s.name),
        None => s.name.clone(),
    }
}
