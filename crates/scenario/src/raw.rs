//! The raw layer: lines → sections and `key = value` entries, every
//! token carrying its 1-based source span. The typed layer
//! (`crate::doc`) reads this through schema-aware accessors, so all
//! type and range diagnostics point back at real source positions.

use crate::error::{ScenarioError, ScenarioErrorCode};

/// A 1-based source position.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Span {
    pub line: usize,
    pub column: usize,
}

impl Span {
    pub(crate) fn err(
        self,
        field: impl Into<String>,
        code: ScenarioErrorCode,
        message: impl Into<String>,
    ) -> ScenarioError {
        ScenarioError::new(self.line, self.column, field, code, message)
    }
}

/// One raw value token: a quoted string or a bare word (number,
/// boolean). The schema decides how to interpret the token.
#[derive(Clone, PartialEq, Debug)]
pub(crate) enum RawValue {
    Quoted(String),
    Bare(String),
}

/// One `key = value` line.
#[derive(Clone, PartialEq, Debug)]
pub(crate) struct RawEntry {
    pub key: String,
    pub key_span: Span,
    pub value: RawValue,
    pub value_span: Span,
}

/// One `[name]` or `[name.sub]` section with its entries.
#[derive(Clone, PartialEq, Debug)]
pub(crate) struct RawSection {
    pub name: String,
    pub sub: Option<String>,
    pub span: Span,
    pub entries: Vec<RawEntry>,
}

/// The whole document: sections in source order.
#[derive(Clone, PartialEq, Debug)]
pub(crate) struct RawDoc {
    pub sections: Vec<RawSection>,
}

/// Strips a trailing `#` comment (quote-aware) and surrounding
/// whitespace.
fn strip_comment(line: &str) -> &str {
    let mut in_quotes = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_quotes = !in_quotes,
            b'#' if !in_quotes => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Column (1-based) of the first byte of `token` inside `line`, given
/// the token's byte offset.
fn col_at(offset: usize) -> usize {
    offset + 1
}

impl RawDoc {
    /// Splits the text into spanned sections and entries. Grammar-level
    /// failures (a line that is neither blank, comment, heading, nor
    /// entry; an unterminated string) surface here; everything
    /// schema-aware happens in the typed layer.
    pub(crate) fn parse(text: &str) -> Result<Self, ScenarioError> {
        let mut sections: Vec<RawSection> = Vec::new();
        for (idx, raw_line) in text.lines().enumerate() {
            let line_no = idx + 1;
            let body = strip_comment(raw_line);
            let trimmed = body.trim();
            if trimmed.is_empty() {
                continue;
            }
            let indent = body.len() - body.trim_start().len();
            let span = Span {
                line: line_no,
                column: col_at(indent),
            };
            if let Some(rest) = trimmed.strip_prefix('[') {
                let Some(inner) = rest.strip_suffix(']') else {
                    return Err(span.err(
                        "document",
                        ScenarioErrorCode::Syntax,
                        "section heading must close with `]`",
                    ));
                };
                let inner = inner.trim();
                let (name, sub) = match inner.split_once('.') {
                    Some((n, s)) => (n.trim().to_string(), Some(s.trim().to_string())),
                    None => (inner.to_string(), None),
                };
                if name.is_empty() || sub.as_deref() == Some("") {
                    return Err(span.err(
                        "document",
                        ScenarioErrorCode::Syntax,
                        "empty section name",
                    ));
                }
                sections.push(RawSection {
                    name,
                    sub,
                    span,
                    entries: Vec::new(),
                });
                continue;
            }
            let Some(eq) = body.find('=') else {
                return Err(span.err(
                    "document",
                    ScenarioErrorCode::Syntax,
                    "expected `[section]` or `key = value`",
                ));
            };
            let key_part = &body[..eq];
            let key = key_part.trim().to_string();
            if key.is_empty() {
                return Err(span.err(
                    "document",
                    ScenarioErrorCode::Syntax,
                    "missing key before `=`",
                ));
            }
            let key_span = Span {
                line: line_no,
                column: col_at(key_part.len() - key_part.trim_start().len()),
            };
            let value_part = &body[eq + 1..];
            let value_text = value_part.trim();
            let value_col = col_at(eq + 1 + (value_part.len() - value_part.trim_start().len()));
            let value_span = Span {
                line: line_no,
                column: value_col,
            };
            if value_text.is_empty() {
                return Err(value_span.err(
                    "document",
                    ScenarioErrorCode::Syntax,
                    format!("missing value after `{key} =`"),
                ));
            }
            let value = if let Some(rest) = value_text.strip_prefix('"') {
                let Some(inner) = rest.strip_suffix('"') else {
                    return Err(value_span.err(
                        "document",
                        ScenarioErrorCode::Syntax,
                        "unterminated string",
                    ));
                };
                if inner.contains('"') {
                    return Err(value_span.err(
                        "document",
                        ScenarioErrorCode::Syntax,
                        "strings cannot contain `\"`",
                    ));
                }
                RawValue::Quoted(inner.to_string())
            } else {
                RawValue::Bare(value_text.to_string())
            };
            let Some(section) = sections.last_mut() else {
                return Err(key_span.err(
                    "document",
                    ScenarioErrorCode::Syntax,
                    "entry before any `[section]` heading",
                ));
            };
            section.entries.push(RawEntry {
                key,
                key_span,
                value,
                value_span,
            });
        }
        Ok(Self { sections })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_entries_and_comments() {
        let doc = RawDoc::parse(
            "# leading comment\n[scenario]\nname = \"x\" # trailing\n\n[tech.c4]\npitch_um = 200\n",
        )
        .expect("parses");
        assert_eq!(doc.sections.len(), 2);
        assert_eq!(doc.sections[0].name, "scenario");
        assert_eq!(doc.sections[0].entries[0].key, "name");
        assert_eq!(
            doc.sections[0].entries[0].value,
            RawValue::Quoted("x".into())
        );
        assert_eq!(doc.sections[1].sub.as_deref(), Some("c4"));
    }

    #[test]
    fn syntax_errors_carry_spans() {
        let e = RawDoc::parse("[scenario]\n  what even is this\n").unwrap_err();
        assert_eq!((e.line, e.column), (2, 3));
        assert_eq!(e.code, ScenarioErrorCode::Syntax);
        let e = RawDoc::parse("name = \"x\"\n").unwrap_err();
        assert_eq!(e.line, 1);
    }
}
