//! Compilation: a validated [`ScenarioDoc`] into the typed `vpd-core`
//! analysis structs. Parse already ran the full validation pass, so
//! compilation re-runs only typed constructors that cannot fail on a
//! validated document; any residual failure is still surfaced as a
//! [`ScenarioError`] rather than a panic.

use vpd_converters::{EfficiencyCurve, VrTopologyKind};
use vpd_core::{
    AnalysisOptions, AnalysisSession, Architecture, Calibration, CoreError, SystemSpec, VrPlacement,
};
use vpd_package::InterconnectTech;
use vpd_units::{CurrentDensity, Meters, Ohms, SquareMeters, Volts, Watts};

use crate::doc::{ScenarioDoc, TechDoc};
use crate::error::{ScenarioError, ScenarioErrorCode};

/// The fault sweep a document asks `scenario run` (and serve) to
/// execute alongside the analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    /// `None` = the N-1 contingency set; `Some(k)` = random k-fault
    /// draws.
    pub random_k: Option<usize>,
    /// Scenario count (random-k mode).
    pub count: usize,
    /// RNG seed (random-k mode).
    pub seed: u64,
}

/// A compiled scenario: the typed structs every engine in the
/// workspace already consumes. For the five builtin documents these
/// are bitwise-identical to the hardcoded constructors
/// (`SystemSpec::paper_default()`, `Calibration::paper_default()`,
/// `AnalysisOptions::default()`) — pinned by the golden tests.
#[derive(Clone, PartialEq, Debug)]
pub struct Scenario {
    /// Display name from the document.
    pub name: String,
    /// Delivery architecture.
    pub architecture: Architecture,
    /// POL-stage topology.
    pub topology: VrTopologyKind,
    /// Regulator placement for the sharing-style engines.
    pub placement: VrPlacement,
    /// System electrical specification.
    pub spec: SystemSpec,
    /// Loss-model calibration (including the die power map).
    pub calibration: Calibration,
    /// Analysis options (overload policy, module count, solve mode).
    pub options: AnalysisOptions,
    /// Fitted user-supplied converter curve, when the document carries
    /// a `[converter]` section.
    pub converter: Option<EfficiencyCurve>,
    /// User-adjusted interconnect technologies, in document order.
    pub techs: Vec<InterconnectTech>,
    /// Requested fault sweep, when the document carries `[faults]`.
    pub faults: Option<FaultPlan>,
}

impl Scenario {
    /// Compiles the scenario's grid into a reusable analysis session —
    /// the expensive artifact the serve cache holds per content hash.
    ///
    /// # Errors
    ///
    /// [`CoreError`] from the session constructor (e.g. a module count
    /// below the architecture's capacity needs).
    pub fn session(&self) -> Result<AnalysisSession, CoreError> {
        AnalysisSession::new(
            self.architecture,
            &self.spec,
            &self.calibration,
            &self.options,
        )
    }
}

/// Materializes a `[tech.<base>]` section onto its Table I constant.
/// Shared with the parse-time geometry backstop, so the validated and
/// compiled technologies cannot diverge.
pub(crate) fn compile_tech(doc: &TechDoc) -> InterconnectTech {
    let mut t = doc.base.table_i();
    if let Some(m) = doc.material {
        t.material = m;
    }
    if let Some(d) = doc.diameter_um {
        t.diameter = Some(Meters::from_micrometers(d));
    }
    if let Some(a) = doc.cross_section_um2 {
        t.cross_section = SquareMeters::from_square_micrometers(a);
    }
    if let Some(h) = doc.height_um {
        t.height = Meters::from_micrometers(h);
    }
    if let Some(p) = doc.pitch_um {
        t.pitch = Meters::from_micrometers(p);
    }
    if let Some(a) = doc.platform_area_mm2 {
        t.default_platform_area = SquareMeters::from_square_millimeters(a);
    }
    if let Some(c) = doc.power_site_cap {
        t.power_site_cap = c;
    }
    t
}

impl ScenarioDoc {
    /// Compiles the document into the typed analysis structs.
    ///
    /// # Errors
    ///
    /// Unreachable on a document produced by [`ScenarioDoc::parse`]
    /// (parse validates a strict superset); kept as a typed error so
    /// hand-constructed documents fail gracefully.
    pub fn compile(&self) -> Result<Scenario, ScenarioError> {
        let whole = |what: &str, e: &dyn std::fmt::Display| {
            ScenarioError::new(1, 1, what, ScenarioErrorCode::OutOfRange, format!("{e}"))
        };
        let spec = SystemSpec::new(
            Volts::new(self.spec.pcb_v),
            Volts::new(self.spec.pol_v),
            Watts::new(self.spec.power_w),
            CurrentDensity::from_amps_per_square_millimeter(self.spec.density_a_mm2),
        )
        .map_err(|e| whole("spec", &e))?;
        let calibration = Calibration {
            horizontal_pol_resistance: Ohms::from_microohms(self.calibration.horizontal_pol_uohm),
            horizontal_hv_resistance: Ohms::from_milliohms(self.calibration.horizontal_hv_mohm),
            interposer_bus_resistance: Ohms::from_milliohms(self.calibration.interposer_bus_mohm),
            grid_sheet_resistance: Ohms::from_milliohms(self.calibration.grid_sheet_mohm),
            vr_droop_periphery: Ohms::from_milliohms(self.calibration.vr_droop_periphery_mohm),
            vr_droop_below_die: Ohms::from_microohms(self.calibration.vr_droop_below_die_uohm),
            grid_nodes_per_side: self.calibration.grid_nodes_per_side,
            power_map: self.load,
        };
        calibration
            .validate()
            .map_err(|e| whole("calibration", &e))?;
        let converter = match &self.converter {
            None => None,
            Some(c) => Some(EfficiencyCurve::fit(c.anchors()).map_err(|e| whole("converter", &e))?),
        };
        let techs = self
            .techs
            .iter()
            .map(|t| {
                compile_tech(t)
                    .validated()
                    .map_err(|e| whole(&format!("tech.{}", t.base.as_str()), &e))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Scenario {
            name: self.name.clone(),
            architecture: self.architecture,
            topology: self.topology,
            placement: self.placement,
            spec,
            calibration,
            options: AnalysisOptions {
                allow_overload: self.allow_overload,
                module_count: self.modules,
                solve_mode: self.solve_mode,
            },
            converter,
            techs,
            faults: self.faults.map(|f| FaultPlan {
                random_k: f.random_k,
                count: f.count,
                seed: f.seed,
            }),
        })
    }
}
