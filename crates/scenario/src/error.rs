//! Typed scenario diagnostics: every error carries the 1-based line and
//! column it points at, the dotted field path (`section.key`), and a
//! stable machine-readable code.

use std::fmt;

/// Stable machine-readable classes of scenario-document errors. The
/// spellings ([`ScenarioErrorCode::as_str`]) are part of the tooling
/// contract — tier-1 asserts them against the malformed-document
/// corpus — so they never change, only grow.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ScenarioErrorCode {
    /// The line is not a section heading, a `key = value` entry, a
    /// comment, or blank.
    Syntax,
    /// A `[section]` heading outside the grammar.
    UnknownSection,
    /// A key the section's schema does not list.
    UnknownKey,
    /// A key (or section) given twice.
    DuplicateKey,
    /// A value that does not parse as its schema type (wrong token
    /// kind, unparseable number, or a fraction where an integer is
    /// required).
    BadValue,
    /// An enumerated value outside its accepted spellings.
    BadEnum,
    /// A well-typed value outside its permitted range.
    OutOfRange,
    /// A required key or section is missing.
    MissingKey,
    /// Keys that are individually valid but mutually contradictory
    /// (e.g. `bus_v` with a fixed-bus architecture, or converter
    /// anchors no loss curve fits).
    Inconsistent,
}

impl ScenarioErrorCode {
    /// The stable wire/CLI spelling of the code.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Syntax => "syntax",
            Self::UnknownSection => "unknown-section",
            Self::UnknownKey => "unknown-key",
            Self::DuplicateKey => "duplicate-key",
            Self::BadValue => "bad-value",
            Self::BadEnum => "bad-enum",
            Self::OutOfRange => "out-of-range",
            Self::MissingKey => "missing-key",
            Self::Inconsistent => "inconsistent",
        }
    }
}

impl fmt::Display for ScenarioErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One scenario-document diagnostic, pinned to a source location and a
/// field path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScenarioError {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column (of the offending key, value, or heading).
    pub column: usize,
    /// Dotted field path (`"calibration.grid_sheet_mohm"`), or the bare
    /// section name for section-level diagnostics.
    pub field: String,
    /// Stable machine-readable class.
    pub code: ScenarioErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ScenarioError {
    /// Builds a diagnostic at `(line, column)`.
    #[must_use]
    pub fn new(
        line: usize,
        column: usize,
        field: impl Into<String>,
        code: ScenarioErrorCode,
        message: impl Into<String>,
    ) -> Self {
        Self {
            line,
            column,
            field: field.into(),
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[{}] at {}:{}: {}: {}",
            self.code, self.line, self.column, self.field, self.message
        )
    }
}

impl std::error::Error for ScenarioError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable() {
        let e = ScenarioError::new(
            12,
            7,
            "calibration.grid_sheet_mohm",
            ScenarioErrorCode::OutOfRange,
            "must be positive and finite, got -0.3",
        );
        assert_eq!(
            e.to_string(),
            "error[out-of-range] at 12:7: calibration.grid_sheet_mohm: \
             must be positive and finite, got -0.3"
        );
    }
}
