//! Canonical rendering: one fixed spelling per document. Numbers use
//! Rust's shortest-roundtrip `{}` formatting, so `parse → render →
//! parse` is bitwise stable, equal documents render byte-identically,
//! and the content hash keys the serve scenario cache without
//! tolerance games.

use vpd_core::wire::{architecture_wire_name, placement_wire_name, topology_wire_name};
use vpd_core::{Architecture, PowerMap};
use vpd_package::ViaMaterial;

use crate::doc::{solve_mode_name, ScenarioDoc};

/// Writes `key = value` for an f64 in canonical (shortest-roundtrip)
/// spelling.
fn num(out: &mut String, key: &str, v: f64) {
    out.push_str(key);
    out.push_str(" = ");
    out.push_str(&format!("{v}"));
    out.push('\n');
}

fn int(out: &mut String, key: &str, v: u64) {
    out.push_str(key);
    out.push_str(" = ");
    out.push_str(&format!("{v}"));
    out.push('\n');
}

fn quoted(out: &mut String, key: &str, v: &str) {
    out.push_str(key);
    out.push_str(" = \"");
    out.push_str(v);
    out.push_str("\"\n");
}

fn flag(out: &mut String, key: &str, v: bool) {
    out.push_str(key);
    out.push_str(if v { " = true\n" } else { " = false\n" });
}

impl ScenarioDoc {
    /// Renders the canonical text form. Parsing the result yields a
    /// document equal to `self`, and equal documents render to
    /// byte-identical text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(640);

        out.push_str("[scenario]\n");
        quoted(&mut out, "name", &self.name);
        match architecture_wire_name(self.architecture) {
            Some(tag) => quoted(&mut out, "architecture", tag),
            None => {
                quoted(&mut out, "architecture", "a3");
                if let Architecture::TwoStage { bus } = self.architecture {
                    num(&mut out, "bus_v", bus.value());
                }
            }
        }
        quoted(&mut out, "topology", topology_wire_name(self.topology));
        quoted(&mut out, "placement", placement_wire_name(self.placement));
        if let Some(m) = self.modules {
            int(&mut out, "modules", m as u64);
        }
        flag(&mut out, "allow_overload", self.allow_overload);
        quoted(&mut out, "solve_mode", solve_mode_name(self.solve_mode));

        out.push_str("\n[spec]\n");
        num(&mut out, "pcb_v", self.spec.pcb_v);
        num(&mut out, "pol_v", self.spec.pol_v);
        num(&mut out, "power_w", self.spec.power_w);
        num(&mut out, "density_a_mm2", self.spec.density_a_mm2);

        out.push_str("\n[calibration]\n");
        let c = &self.calibration;
        num(&mut out, "horizontal_pol_uohm", c.horizontal_pol_uohm);
        num(&mut out, "horizontal_hv_mohm", c.horizontal_hv_mohm);
        num(&mut out, "interposer_bus_mohm", c.interposer_bus_mohm);
        num(&mut out, "grid_sheet_mohm", c.grid_sheet_mohm);
        num(
            &mut out,
            "vr_droop_periphery_mohm",
            c.vr_droop_periphery_mohm,
        );
        num(
            &mut out,
            "vr_droop_below_die_uohm",
            c.vr_droop_below_die_uohm,
        );
        int(
            &mut out,
            "grid_nodes_per_side",
            c.grid_nodes_per_side as u64,
        );

        out.push_str("\n[load]\n");
        match self.load {
            PowerMap::Uniform => quoted(&mut out, "map", "uniform"),
            PowerMap::GaussianHotspot {
                cx,
                cy,
                sigma,
                floor,
            } => {
                quoted(&mut out, "map", "gaussian");
                num(&mut out, "cx", cx);
                num(&mut out, "cy", cy);
                num(&mut out, "sigma", sigma);
                num(&mut out, "floor", floor);
            }
            PowerMap::SplitHalves { left_share } => {
                quoted(&mut out, "map", "split");
                num(&mut out, "left_share", left_share);
            }
            // `PowerMap` is non-exhaustive; new variants must gain a
            // document spelling before they can round-trip.
            #[allow(unreachable_patterns)]
            other => unreachable!("power map {other:?} has no document spelling"),
        }

        if let Some(conv) = &self.converter {
            out.push_str("\n[converter]\n");
            num(&mut out, "v_out", conv.v_out);
            num(&mut out, "i_peak", conv.i_peak);
            num(&mut out, "eta_peak", conv.eta_peak);
            num(&mut out, "i_max", conv.i_max);
            num(&mut out, "eta_max", conv.eta_max);
        }

        for t in &self.techs {
            out.push_str("\n[tech.");
            out.push_str(t.base.as_str());
            out.push_str("]\n");
            if let Some(m) = t.material {
                quoted(
                    &mut out,
                    "material",
                    match m {
                        ViaMaterial::Solder => "solder",
                        ViaMaterial::Copper => "copper",
                    },
                );
            }
            if let Some(v) = t.diameter_um {
                num(&mut out, "diameter_um", v);
            }
            if let Some(v) = t.cross_section_um2 {
                num(&mut out, "cross_section_um2", v);
            }
            if let Some(v) = t.height_um {
                num(&mut out, "height_um", v);
            }
            if let Some(v) = t.pitch_um {
                num(&mut out, "pitch_um", v);
            }
            if let Some(v) = t.platform_area_mm2 {
                num(&mut out, "platform_area_mm2", v);
            }
            if let Some(v) = t.power_site_cap {
                num(&mut out, "power_site_cap", v);
            }
        }

        if let Some(f) = &self.faults {
            out.push_str("\n[faults]\n");
            match f.random_k {
                None => quoted(&mut out, "mode", "n-1"),
                Some(k) => {
                    quoted(&mut out, "mode", "random-k");
                    int(&mut out, "k", k as u64);
                    int(&mut out, "count", f.count as u64);
                    int(&mut out, "seed", f.seed);
                }
            }
        }

        out
    }
}
