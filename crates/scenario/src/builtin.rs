//! The five paper architectures as checked-in `.vpd` documents
//! (`scenarios/*.vpd`), compiled through the same parse/validate path
//! as user documents. The golden tests pin their compiled structs —
//! and therefore every engine result — bitwise against the hardcoded
//! constructors.

/// Wire names of the builtin documents, paper order.
pub const BUILTIN_NAMES: [&str; 5] = ["a0", "a1", "a2", "a3-12", "a3-6"];

/// The checked-in document text for a builtin name.
#[must_use]
pub fn builtin_doc(name: &str) -> Option<&'static str> {
    match name {
        "a0" => Some(include_str!("../../../scenarios/a0.vpd")),
        "a1" => Some(include_str!("../../../scenarios/a1.vpd")),
        "a2" => Some(include_str!("../../../scenarios/a2.vpd")),
        "a3-12" => Some(include_str!("../../../scenarios/a3-12.vpd")),
        "a3-6" => Some(include_str!("../../../scenarios/a3-6.vpd")),
        _ => None,
    }
}

/// Every builtin as `(name, document text)`, paper order.
#[must_use]
pub fn builtin_docs() -> [(&'static str, &'static str); 5] {
    BUILTIN_NAMES.map(|n| (n, builtin_doc(n).expect("builtin name")))
}
