//! Geometric and material quantities: length, area, current density,
//! resistivity, and temperature.

quantity! {
    /// Length in meters.
    ///
    /// ```
    /// use vpd_units::Meters;
    /// let tsv_height = Meters::from_micrometers(50.0);
    /// assert!((tsv_height.value() - 5e-5).abs() < 1e-18);
    /// ```
    Meters, symbol: "m"
}

quantity! {
    /// Area in square meters.
    ///
    /// Packaging work quotes areas in mm² (platforms, dies) and µm²
    /// (via cross-sections); both constructors are provided.
    ///
    /// ```
    /// use vpd_units::SquareMeters;
    /// let die = SquareMeters::from_square_millimeters(500.0);
    /// assert!((die.as_square_millimeters() - 500.0).abs() < 1e-9);
    /// ```
    SquareMeters, symbol: "m²"
}

quantity! {
    /// Current density in amperes per square meter.
    ///
    /// The paper quotes A/mm²; use
    /// [`CurrentDensity::from_amps_per_square_millimeter`].
    ///
    /// ```
    /// use vpd_units::CurrentDensity;
    /// let d = CurrentDensity::from_amps_per_square_millimeter(2.0);
    /// assert!((d.as_amps_per_square_millimeter() - 2.0).abs() < 1e-12);
    /// ```
    CurrentDensity, symbol: "A/m²"
}

quantity! {
    /// Electrical resistivity in ohm-meters.
    ///
    /// ```
    /// use vpd_units::Resistivity;
    /// let cu = Resistivity::COPPER;
    /// assert!((cu.value() - 1.68e-8).abs() < 1e-12);
    /// ```
    Resistivity, symbol: "Ω·m"
}

quantity! {
    /// Temperature in degrees Celsius (offset scale; additive ops model
    /// temperature *differences*).
    Celsius, symbol: "°C"
}

impl Meters {
    /// Creates a length from millimeters.
    #[must_use]
    pub const fn from_millimeters(mm: f64) -> Self {
        Self::new(mm * 1e-3)
    }

    /// Creates a length from micrometers.
    #[must_use]
    pub const fn from_micrometers(um: f64) -> Self {
        Self::new(um * 1e-6)
    }

    /// Value in millimeters.
    #[must_use]
    pub fn as_millimeters(self) -> f64 {
        self.value() * 1e3
    }

    /// Value in micrometers.
    #[must_use]
    pub fn as_micrometers(self) -> f64 {
        self.value() * 1e6
    }

    /// The square with this side length.
    #[must_use]
    pub fn squared(self) -> SquareMeters {
        SquareMeters::new(self.value() * self.value())
    }
}

impl SquareMeters {
    /// Creates an area from square millimeters.
    #[must_use]
    pub const fn from_square_millimeters(mm2: f64) -> Self {
        Self::new(mm2 * 1e-6)
    }

    /// Creates an area from square micrometers.
    #[must_use]
    pub const fn from_square_micrometers(um2: f64) -> Self {
        Self::new(um2 * 1e-12)
    }

    /// Value in square millimeters.
    #[must_use]
    pub fn as_square_millimeters(self) -> f64 {
        self.value() * 1e6
    }

    /// Value in square micrometers.
    #[must_use]
    pub fn as_square_micrometers(self) -> f64 {
        self.value() * 1e12
    }

    /// Side length of the square with this area.
    ///
    /// Used for the paper's square-die assumption (a 500 mm² die has a
    /// ~22.36 mm side whose four edges host the periphery VR ring).
    #[must_use]
    pub fn square_side(self) -> Meters {
        Meters::new(self.value().sqrt())
    }
}

impl CurrentDensity {
    /// Creates a density from A/mm² (the paper's unit).
    #[must_use]
    pub const fn from_amps_per_square_millimeter(a_per_mm2: f64) -> Self {
        Self::new(a_per_mm2 * 1e6)
    }

    /// Value in A/mm².
    #[must_use]
    pub fn as_amps_per_square_millimeter(self) -> f64 {
        self.value() * 1e-6
    }
}

impl Resistivity {
    /// Bulk copper resistivity at room temperature.
    pub const COPPER: Self = Self::new(1.68e-8);

    /// Typical SAC305-class solder resistivity (BGA balls, C4 bumps,
    /// µ-bumps).
    pub const SOLDER: Self = Self::new(1.3e-7);

    /// Resistance of a prism conductor: `ρ · l / A`.
    ///
    /// This is the via-resistance formula the paper quotes
    /// (`R_PPDN = ρ·l/A`).
    ///
    /// ```
    /// use vpd_units::{Meters, Resistivity, SquareMeters};
    /// // One TSV from Table I: Cu, 50 µm tall, 20 µm² cross-section.
    /// let r = Resistivity::COPPER
    ///     .wire_resistance(Meters::from_micrometers(50.0),
    ///                      SquareMeters::from_square_micrometers(20.0));
    /// assert!((r.as_milliohms() - 42.0).abs() < 0.5);
    /// ```
    #[must_use]
    pub fn wire_resistance(self, length: Meters, cross_section: SquareMeters) -> crate::Ohms {
        crate::Ohms::new(self.value() * length.value() / cross_section.value())
    }

    /// Sheet resistance (Ω/□) of a film of this resistivity and `thickness`.
    #[must_use]
    pub fn sheet_resistance(self, thickness: Meters) -> crate::Ohms {
        crate::Ohms::new(self.value() / thickness.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_conversions_round_trip() {
        let a = SquareMeters::from_square_millimeters(1200.0);
        assert!((a.as_square_millimeters() - 1200.0).abs() < 1e-9);
        let b = SquareMeters::from_square_micrometers(707.0);
        assert!((b.as_square_micrometers() - 707.0).abs() < 1e-6);
    }

    #[test]
    fn square_side_of_paper_die() {
        let die = SquareMeters::from_square_millimeters(500.0);
        assert!((die.square_side().as_millimeters() - 22.360).abs() < 1e-3);
    }

    #[test]
    fn current_density_paper_value() {
        let d = CurrentDensity::from_amps_per_square_millimeter(2.0);
        assert!((d.value() - 2e6).abs() < 1e-6);
    }

    #[test]
    fn tsv_resistance_matches_hand_calc() {
        // ρ l / A = 1.68e-8 * 50e-6 / 20e-12 = 42 mΩ
        let r = Resistivity::COPPER.wire_resistance(
            Meters::from_micrometers(50.0),
            SquareMeters::from_square_micrometers(20.0),
        );
        assert!((r.as_milliohms() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn sheet_resistance_of_rdl_copper() {
        // 2 µm copper RDL: 1.68e-8 / 2e-6 = 8.4 mΩ/sq
        let rs = Resistivity::COPPER.sheet_resistance(Meters::from_micrometers(2.0));
        assert!((rs.as_milliohms() - 8.4).abs() < 1e-9);
    }
}
