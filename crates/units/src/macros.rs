//! The `quantity!` macro generating the common surface of every unit newtype.

/// Defines a physical-quantity newtype over `f64` with the shared trait
/// surface: `Clone`, `Copy`, `PartialEq`, `PartialOrd`, `Debug`, `Default`,
/// serde, ordering helpers, same-dimension arithmetic (`Add`, `Sub`, `Neg`),
/// scalar scaling (`Mul<f64>`, `Div<f64>`, `f64 * Self`), the dimensionless
/// ratio `Self / Self -> f64`, `Sum`, and engineering-notation `Display`.
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, symbol: $symbol:expr
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default, serde::Serialize, serde::Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates the quantity from a value in SI base units.
            ///
            /// ```
            #[doc = concat!("let q = vpd_units::", stringify!($name), "::new(2.5);")]
            /// assert_eq!(q.value(), 2.5);
            /// ```
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the underlying value in SI base units.
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// The unit symbol used by the `Display` implementation.
            #[must_use]
            pub const fn symbol() -> &'static str {
                $symbol
            }

            /// Absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Elementwise minimum.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Elementwise maximum.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` (same contract as [`f64::clamp`]).
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// `true` when the value is finite (not NaN or ±∞).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// `true` when the value is exactly zero.
            #[must_use]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }

            /// `true` when `self` and `other` differ by at most `tol`
            /// in SI base units.
            #[must_use]
            pub fn approx_eq(self, other: Self, tol: f64) -> bool {
                (self.0 - other.0).abs() <= tol
            }
        }

        impl std::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl std::ops::Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl std::ops::Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl std::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl std::ops::SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl std::ops::Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl std::ops::Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl std::ops::Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Ratio of two same-dimension quantities is dimensionless.
        impl std::ops::Div<$name> for $name {
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl std::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> std::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                $crate::fmt_eng::write_engineering(f, self.0, $symbol)
            }
        }

        impl From<$name> for f64 {
            fn from(q: $name) -> f64 {
                q.0
            }
        }
    };
}
