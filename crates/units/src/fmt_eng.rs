//! Engineering-notation formatting shared by every quantity's `Display`.

use std::fmt;

/// SI prefixes covering the range used in power-delivery work
/// (femto through tera).
const PREFIXES: &[(f64, &str)] = &[
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "µ"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
];

/// Splits a value into an engineering-notation mantissa and SI prefix.
///
/// ```
/// use vpd_units::EngNotation;
/// let eng = EngNotation::of(0.00033);
/// assert_eq!(eng.prefix, "µ");
/// assert!((eng.mantissa - 330.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EngNotation {
    /// Mantissa scaled into `[1, 1000)` (except for zero / non-finite input).
    pub mantissa: f64,
    /// SI prefix string, e.g. `"m"`, `"µ"`, `"k"`.
    pub prefix: &'static str,
}

impl EngNotation {
    /// Computes the engineering notation of `value`.
    #[must_use]
    pub fn of(value: f64) -> Self {
        if value == 0.0 || !value.is_finite() {
            return Self {
                mantissa: value,
                prefix: "",
            };
        }
        let mag = value.abs();
        for &(scale, prefix) in PREFIXES {
            if mag >= scale {
                return Self {
                    mantissa: value / scale,
                    prefix,
                };
            }
        }
        // Below the femto range: fall through unscaled.
        Self {
            mantissa: value,
            prefix: "",
        }
    }
}

impl fmt::Display for EngNotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}{}", self.mantissa, self.prefix)
    }
}

/// Writes `value` with `symbol` in engineering notation, honoring an
/// explicit precision (`{:.2}`) when the caller provides one.
pub(crate) fn write_engineering(
    f: &mut fmt::Formatter<'_>,
    value: f64,
    symbol: &str,
) -> fmt::Result {
    let eng = EngNotation::of(value);
    let precision = f.precision().unwrap_or(3);
    write!(f, "{:.*} {}{}", precision, eng.mantissa, eng.prefix, symbol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_has_no_prefix() {
        let eng = EngNotation::of(0.0);
        assert_eq!(eng.prefix, "");
        assert_eq!(eng.mantissa, 0.0);
    }

    #[test]
    fn negative_values_keep_sign() {
        let eng = EngNotation::of(-4700.0);
        assert_eq!(eng.prefix, "k");
        assert!((eng.mantissa + 4.7).abs() < 1e-12);
    }

    #[test]
    fn milli_range() {
        let eng = EngNotation::of(0.0025);
        assert_eq!(eng.prefix, "m");
        assert!((eng.mantissa - 2.5).abs() < 1e-12);
    }

    #[test]
    fn unity_range() {
        let eng = EngNotation::of(42.0);
        assert_eq!(eng.prefix, "");
        assert_eq!(eng.mantissa, 42.0);
    }

    #[test]
    fn non_finite_passthrough() {
        assert!(EngNotation::of(f64::NAN).mantissa.is_nan());
        assert_eq!(EngNotation::of(f64::INFINITY).prefix, "");
    }

    #[test]
    fn sub_femto_unscaled() {
        let eng = EngNotation::of(1e-18);
        assert_eq!(eng.prefix, "");
    }
}
