//! Validated power-conversion efficiency.

use crate::Watts;
use std::fmt;

/// Error returned when constructing an [`Efficiency`] outside `(0, 1]`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EfficiencyError {
    value: f64,
}

impl EfficiencyError {
    /// The rejected raw value.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl fmt::Display for EfficiencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "efficiency must be in (0, 1], got {}", self.value)
    }
}

impl std::error::Error for EfficiencyError {}

/// A power-conversion efficiency, statically known to lie in `(0, 1]`.
///
/// ```
/// # fn main() -> Result<(), vpd_units::EfficiencyError> {
/// use vpd_units::{Efficiency, Watts};
///
/// let eta = Efficiency::from_percent(90.0)?;
/// let out = eta.output_for_input(Watts::new(1000.0));
/// assert_eq!(out, Watts::new(900.0));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, serde::Serialize, serde::Deserialize)]
#[serde(transparent)]
pub struct Efficiency(f64);

impl Efficiency {
    /// The lossless (unity) efficiency.
    pub const UNITY: Self = Self(1.0);

    /// Creates an efficiency from a fraction in `(0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`EfficiencyError`] when `fraction` is not finite or lies
    /// outside `(0, 1]`.
    pub fn new(fraction: f64) -> Result<Self, EfficiencyError> {
        if fraction.is_finite() && fraction > 0.0 && fraction <= 1.0 {
            Ok(Self(fraction))
        } else {
            Err(EfficiencyError { value: fraction })
        }
    }

    /// Creates an efficiency from a percentage in `(0, 100]`.
    ///
    /// # Errors
    ///
    /// Returns [`EfficiencyError`] when `percent / 100` lies outside
    /// `(0, 1]`.
    pub fn from_percent(percent: f64) -> Result<Self, EfficiencyError> {
        Self::new(percent / 100.0)
    }

    /// The efficiency as a fraction in `(0, 1]`.
    #[must_use]
    pub const fn fraction(self) -> f64 {
        self.0
    }

    /// The efficiency as a percentage.
    #[must_use]
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Output power when `input` is processed at this efficiency.
    #[must_use]
    pub fn output_for_input(self, input: Watts) -> Watts {
        input * self.0
    }

    /// Input power required to deliver `output` at this efficiency.
    #[must_use]
    pub fn input_for_output(self, output: Watts) -> Watts {
        output / self.0
    }

    /// Power dissipated when *delivering* `output`
    /// (`P_loss = P_out·(1/η − 1)`).
    ///
    /// This is the accounting Figure 7 uses: losses are referenced to the
    /// power that must reach the next stage.
    #[must_use]
    pub fn loss_for_output(self, output: Watts) -> Watts {
        self.input_for_output(output) - output
    }

    /// Composes two cascaded conversion stages (`η = η₁·η₂`).
    ///
    /// The product of two values in `(0, 1]` stays in `(0, 1]`, so this
    /// cannot fail.
    #[must_use]
    pub fn cascade(self, second_stage: Self) -> Self {
        Self(self.0 * second_stage.0)
    }
}

impl fmt::Display for Efficiency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let precision = f.precision().unwrap_or(1);
        write!(f, "{:.*}%", precision, self.percent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range() {
        assert!(Efficiency::new(0.0).is_err());
        assert!(Efficiency::new(-0.5).is_err());
        assert!(Efficiency::new(1.0001).is_err());
        assert!(Efficiency::new(f64::NAN).is_err());
        assert!(Efficiency::new(f64::INFINITY).is_err());
        assert!(Efficiency::new(1.0).is_ok());
    }

    #[test]
    fn error_is_displayable_and_carries_value() {
        let err = Efficiency::new(1.5).unwrap_err();
        assert_eq!(err.value(), 1.5);
        assert!(err.to_string().contains("1.5"));
    }

    #[test]
    fn loss_accounting_matches_reference_converter() {
        // The paper's A0: 90%-efficient converter delivering ~1.3 kW to the
        // PPDN dissipates P_out·(1/0.9 − 1) ≈ 144 W.
        let eta = Efficiency::from_percent(90.0).unwrap();
        let loss = eta.loss_for_output(Watts::new(1300.0));
        assert!(loss.approx_eq(Watts::new(1300.0 / 0.9 - 1300.0), 1e-9));
    }

    #[test]
    fn cascade_multiplies() {
        let first = Efficiency::from_percent(95.0).unwrap();
        let second = Efficiency::from_percent(90.0).unwrap();
        assert!((first.cascade(second).fraction() - 0.855).abs() < 1e-12);
    }

    #[test]
    fn display_percent() {
        let eta = Efficiency::from_percent(90.4).unwrap();
        assert_eq!(format!("{eta}"), "90.4%");
        assert_eq!(format!("{eta:.0}"), "90%");
    }

    #[test]
    fn input_output_round_trip() {
        let eta = Efficiency::from_percent(87.0).unwrap();
        let out = Watts::new(500.0);
        let input = eta.input_for_output(out);
        assert!(eta.output_for_input(input).approx_eq(out, 1e-9));
    }
}
