//! Cross-dimension arithmetic: only the physically meaningful products
//! and quotients are implemented ([C-OVERLOAD]).

use crate::{
    Amps, Coulombs, CurrentDensity, Farads, Hertz, Joules, Ohms, Seconds, Siemens, SquareMeters,
    Volts, Watts,
};
use std::ops::{Div, Mul};

/// `V = I · R` (Ohm's law).
impl Mul<Ohms> for Amps {
    type Output = Volts;
    fn mul(self, r: Ohms) -> Volts {
        Volts::new(self.value() * r.value())
    }
}

/// `V = R · I` (commuted Ohm's law).
impl Mul<Amps> for Ohms {
    type Output = Volts;
    fn mul(self, i: Amps) -> Volts {
        Volts::new(self.value() * i.value())
    }
}

/// `I = V / R`.
impl Div<Ohms> for Volts {
    type Output = Amps;
    fn div(self, r: Ohms) -> Amps {
        Amps::new(self.value() / r.value())
    }
}

/// `R = V / I`.
impl Div<Amps> for Volts {
    type Output = Ohms;
    fn div(self, i: Amps) -> Ohms {
        Ohms::new(self.value() / i.value())
    }
}

/// `I = V · G`.
impl Mul<Siemens> for Volts {
    type Output = Amps;
    fn mul(self, g: Siemens) -> Amps {
        Amps::new(self.value() * g.value())
    }
}

/// `I = G · V`.
impl Mul<Volts> for Siemens {
    type Output = Amps;
    fn mul(self, v: Volts) -> Amps {
        Amps::new(self.value() * v.value())
    }
}

/// `P = V · I`.
impl Mul<Amps> for Volts {
    type Output = Watts;
    fn mul(self, i: Amps) -> Watts {
        Watts::new(self.value() * i.value())
    }
}

/// `P = I · V`.
impl Mul<Volts> for Amps {
    type Output = Watts;
    fn mul(self, v: Volts) -> Watts {
        Watts::new(self.value() * v.value())
    }
}

/// `I = P / V`.
impl Div<Volts> for Watts {
    type Output = Amps;
    fn div(self, v: Volts) -> Amps {
        Amps::new(self.value() / v.value())
    }
}

/// `V = P / I`.
impl Div<Amps> for Watts {
    type Output = Volts;
    fn div(self, i: Amps) -> Volts {
        Volts::new(self.value() / i.value())
    }
}

/// `E = P · t`.
impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, t: Seconds) -> Joules {
        Joules::new(self.value() * t.value())
    }
}

/// `P = E · f` (per-cycle energy times switching frequency).
impl Mul<Hertz> for Joules {
    type Output = Watts;
    fn mul(self, f: Hertz) -> Watts {
        Watts::new(self.value() * f.value())
    }
}

/// `P = f · E`.
impl Mul<Joules> for Hertz {
    type Output = Watts;
    fn mul(self, e: Joules) -> Watts {
        Watts::new(self.value() * e.value())
    }
}

/// `Q = C · V` (charge on a capacitor).
impl Mul<Volts> for Farads {
    type Output = Coulombs;
    fn mul(self, v: Volts) -> Coulombs {
        Coulombs::new(self.value() * v.value())
    }
}

/// `E = Q · V` (charge moved through a potential).
impl Mul<Volts> for Coulombs {
    type Output = Joules;
    fn mul(self, v: Volts) -> Joules {
        Joules::new(self.value() * v.value())
    }
}

/// `I = Q · f` (average gate-drive current).
impl Mul<Hertz> for Coulombs {
    type Output = Amps;
    fn mul(self, f: Hertz) -> Amps {
        Amps::new(self.value() * f.value())
    }
}

/// `I = J · A` (current through an area at a given density).
impl Mul<SquareMeters> for CurrentDensity {
    type Output = Amps;
    fn mul(self, a: SquareMeters) -> Amps {
        Amps::new(self.value() * a.value())
    }
}

/// `J = I / A`.
impl Div<SquareMeters> for Amps {
    type Output = CurrentDensity;
    fn div(self, a: SquareMeters) -> CurrentDensity {
        CurrentDensity::new(self.value() / a.value())
    }
}

/// `A = I / J` (area required to carry a current at a density limit).
impl Div<CurrentDensity> for Amps {
    type Output = SquareMeters;
    fn div(self, d: CurrentDensity) -> SquareMeters {
        SquareMeters::new(self.value() / d.value())
    }
}

/// Capacitor energy `½CV²`.
#[must_use]
pub fn capacitor_energy(c: Farads, v: Volts) -> Joules {
    Joules::new(0.5 * c.value() * v.value() * v.value())
}

/// Inductor energy `½LI²`.
#[must_use]
pub fn inductor_energy(l: crate::Henries, i: Amps) -> Joules {
    Joules::new(0.5 * l.value() * i.value() * i.value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Henries;

    #[test]
    fn ohms_law_both_ways() {
        let v = Amps::new(3.0) * Ohms::new(2.0);
        assert_eq!(v, Volts::new(6.0));
        assert_eq!(v / Ohms::new(2.0), Amps::new(3.0));
        assert_eq!(v / Amps::new(3.0), Ohms::new(2.0));
    }

    #[test]
    fn power_identities() {
        let p = Volts::new(48.0) * Amps::new(20.8);
        assert!(p.approx_eq(Watts::new(998.4), 1e-9));
        assert!((p / Volts::new(48.0)).approx_eq(Amps::new(20.8), 1e-12));
        assert!((p / Amps::new(20.8)).approx_eq(Volts::new(48.0), 1e-12));
    }

    #[test]
    fn paper_die_current_from_density() {
        // 2 A/mm² × 500 mm² = 1 kA (the paper's headline operating point).
        let i = CurrentDensity::from_amps_per_square_millimeter(2.0)
            * SquareMeters::from_square_millimeters(500.0);
        assert!(i.approx_eq(Amps::from_kiloamps(1.0), 1e-6));
    }

    #[test]
    fn area_required_for_current() {
        // A0 claim: 1 kA at 0.833 A/mm² needs 1200 mm².
        let area = Amps::from_kiloamps(1.0)
            / CurrentDensity::from_amps_per_square_millimeter(1000.0 / 1200.0);
        assert!((area.as_square_millimeters() - 1200.0).abs() < 1e-6);
    }

    #[test]
    fn switching_energy_to_power() {
        let e = capacitor_energy(Farads::from_nanofarads(1.0), Volts::new(48.0));
        let p = e * Hertz::from_megahertz(1.0);
        // ½·1n·48² = 1.152 µJ → 1.152 W at 1 MHz
        assert!(p.approx_eq(Watts::new(1.152), 1e-9));
    }

    #[test]
    fn gate_charge_current() {
        let i = Coulombs::from_nanocoulombs(12.0) * Hertz::from_megahertz(2.0);
        assert!(i.approx_eq(Amps::new(0.024), 1e-12));
    }

    #[test]
    fn stored_energies() {
        let el = inductor_energy(Henries::from_microhenries(4.0), Amps::new(30.0));
        assert!(el.approx_eq(Joules::new(0.5 * 4e-6 * 900.0), 1e-15));
    }
}
