//! Strongly-typed physical quantities for power-delivery modeling.
//!
//! Every quantity is a newtype over `f64` in SI base units ([C-NEWTYPE]).
//! The types provide the arithmetic that is dimensionally meaningful and
//! nothing else, so that e.g. adding volts to amperes is a compile error
//! while `Amps * Ohms -> Volts` works:
//!
//! ```
//! use vpd_units::{Amps, Ohms, Volts, Watts};
//!
//! let i = Amps::new(1000.0);
//! let r = Ohms::from_milliohms(0.3);
//! let drop: Volts = i * r;
//! let loss: Watts = i.dissipation_in(r);
//! assert!((drop.value() - 0.3).abs() < 1e-12);
//! assert!((loss.value() - 300.0).abs() < 1e-9);
//! ```
//!
//! The crate also provides [`Efficiency`] (a validated ratio in `(0, 1]`)
//! and engineering-notation [`std::fmt::Display`] implementations
//! (`"3.30 mΩ"`), which the reporting layer relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[macro_use]
mod macros;

mod efficiency;
mod electrical;
mod fmt_eng;
mod geometry;
mod ops;
mod reactive;

pub use efficiency::{Efficiency, EfficiencyError};
pub use electrical::{Amps, Coulombs, Joules, Ohms, Siemens, Volts, Watts};
pub use fmt_eng::EngNotation;
pub use geometry::{Celsius, CurrentDensity, Meters, Resistivity, SquareMeters};
pub use ops::{capacitor_energy, inductor_energy};
pub use reactive::{Farads, Henries, Hertz, Seconds};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_example_holds() {
        let i = Amps::new(1000.0);
        let r = Ohms::from_milliohms(0.3);
        assert!(((i * r).value() - 0.3).abs() < 1e-12);
        assert!((i.dissipation_in(r).value() - 300.0).abs() < 1e-9);
    }
}
