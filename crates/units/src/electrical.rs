//! Electrical quantities: voltage, current, resistance, conductance,
//! power, charge, and energy.

quantity! {
    /// Electric potential in volts.
    ///
    /// ```
    /// use vpd_units::Volts;
    /// let bus = Volts::new(48.0);
    /// let pol = Volts::new(1.0);
    /// assert_eq!(bus / pol, 48.0); // conversion ratio is dimensionless
    /// ```
    Volts, symbol: "V"
}

quantity! {
    /// Electric current in amperes.
    ///
    /// ```
    /// use vpd_units::Amps;
    /// let per_vr: Amps = Amps::new(1000.0) / 48.0;
    /// assert!((per_vr.value() - 20.833).abs() < 1e-3);
    /// ```
    Amps, symbol: "A"
}

quantity! {
    /// Electrical resistance in ohms.
    ///
    /// ```
    /// use vpd_units::Ohms;
    /// let r = Ohms::from_milliohms(0.3);
    /// assert_eq!(r.value(), 0.0003);
    /// ```
    Ohms, symbol: "Ω"
}

quantity! {
    /// Electrical conductance in siemens.
    ///
    /// ```
    /// use vpd_units::{Ohms, Siemens};
    /// let g = Siemens::new(2.0);
    /// assert_eq!(g.resistance(), Ohms::new(0.5));
    /// ```
    Siemens, symbol: "S"
}

quantity! {
    /// Power in watts.
    ///
    /// ```
    /// use vpd_units::Watts;
    /// let total: Watts = [Watts::new(100.0), Watts::new(280.0)].into_iter().sum();
    /// assert_eq!(total, Watts::new(380.0));
    /// ```
    Watts, symbol: "W"
}

quantity! {
    /// Electric charge in coulombs (used for gate/output charge).
    ///
    /// ```
    /// use vpd_units::{Coulombs, Hertz};
    /// // Gate-drive current: Q_g * f_sw.
    /// let i = Coulombs::from_nanocoulombs(10.0) * Hertz::from_megahertz(1.0);
    /// assert!((i.value() - 0.01).abs() < 1e-12);
    /// ```
    Coulombs, symbol: "C"
}

quantity! {
    /// Energy in joules (used for per-cycle switching energy).
    ///
    /// ```
    /// use vpd_units::{Hertz, Joules};
    /// let p = Joules::from_microjoules(2.0) * Hertz::from_megahertz(1.0);
    /// assert!((p.value() - 2.0).abs() < 1e-12);
    /// ```
    Joules, symbol: "J"
}

impl Volts {
    /// Creates a voltage from millivolts.
    #[must_use]
    pub const fn from_millivolts(mv: f64) -> Self {
        Self::new(mv * 1e-3)
    }

    /// Value in millivolts.
    #[must_use]
    pub fn as_millivolts(self) -> f64 {
        self.value() * 1e3
    }

    /// Power dissipated across a resistance by this voltage drop: `V²/R`.
    ///
    /// Returns [`Watts::ZERO`] for a zero resistance with zero drop; a zero
    /// resistance with a non-zero drop yields `+∞`, mirroring `f64` division.
    #[must_use]
    pub fn dissipation_across(self, r: Ohms) -> Watts {
        if self.is_zero() && r.is_zero() {
            return Watts::ZERO;
        }
        Watts::new(self.value() * self.value() / r.value())
    }
}

impl Amps {
    /// Creates a current from milliamperes.
    #[must_use]
    pub const fn from_milliamps(ma: f64) -> Self {
        Self::new(ma * 1e-3)
    }

    /// Creates a current from kiloamperes.
    #[must_use]
    pub const fn from_kiloamps(ka: f64) -> Self {
        Self::new(ka * 1e3)
    }

    /// Conduction loss of this current through a resistance: `I²R`.
    ///
    /// ```
    /// use vpd_units::{Amps, Ohms, Watts};
    /// let loss = Amps::new(1000.0).dissipation_in(Ohms::from_milliohms(0.3));
    /// assert_eq!(loss, Watts::new(300.0));
    /// ```
    #[must_use]
    pub fn dissipation_in(self, r: Ohms) -> Watts {
        Watts::new(self.value() * self.value() * r.value())
    }
}

impl Ohms {
    /// Creates a resistance from milliohms.
    #[must_use]
    pub const fn from_milliohms(mohm: f64) -> Self {
        Self::new(mohm * 1e-3)
    }

    /// Creates a resistance from microohms.
    #[must_use]
    pub const fn from_microohms(uohm: f64) -> Self {
        Self::new(uohm * 1e-6)
    }

    /// Value in milliohms.
    #[must_use]
    pub fn as_milliohms(self) -> f64 {
        self.value() * 1e3
    }

    /// The equivalent conductance `1/R`.
    ///
    /// A zero resistance maps to infinite conductance (per `f64` division).
    #[must_use]
    pub fn conductance(self) -> Siemens {
        Siemens::new(1.0 / self.value())
    }

    /// Equivalent resistance of `n` identical resistors in parallel.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`: an empty parallel combination has no meaning.
    #[must_use]
    pub fn parallel_of(self, n: usize) -> Self {
        assert!(n > 0, "parallel combination of zero resistors");
        Self::new(self.value() / n as f64)
    }

    /// Equivalent resistance of `n` identical resistors in series.
    #[must_use]
    pub fn series_of(self, n: usize) -> Self {
        Self::new(self.value() * n as f64)
    }
}

impl Siemens {
    /// The equivalent resistance `1/G`.
    #[must_use]
    pub fn resistance(self) -> Ohms {
        Ohms::new(1.0 / self.value())
    }
}

impl Watts {
    /// Creates power from kilowatts.
    #[must_use]
    pub const fn from_kilowatts(kw: f64) -> Self {
        Self::new(kw * 1e3)
    }

    /// Creates power from milliwatts.
    #[must_use]
    pub const fn from_milliwatts(mw: f64) -> Self {
        Self::new(mw * 1e-3)
    }

    /// This power expressed as a fraction of `total` (e.g. for a
    /// Figure-7-style percent-of-1-kW breakdown).
    #[must_use]
    pub fn fraction_of(self, total: Watts) -> f64 {
        self.value() / total.value()
    }

    /// This power expressed as a percentage of `total`.
    #[must_use]
    pub fn percent_of(self, total: Watts) -> f64 {
        100.0 * self.fraction_of(total)
    }
}

impl Coulombs {
    /// Creates a charge from nanocoulombs (datasheet gate-charge units).
    #[must_use]
    pub const fn from_nanocoulombs(nc: f64) -> Self {
        Self::new(nc * 1e-9)
    }
}

impl Joules {
    /// Creates an energy from microjoules.
    #[must_use]
    pub const fn from_microjoules(uj: f64) -> Self {
        Self::new(uj * 1e-6)
    }

    /// Creates an energy from nanojoules.
    #[must_use]
    pub const fn from_nanojoules(nj: f64) -> Self {
        Self::new(nj * 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_and_series_scale() {
        let r = Ohms::new(1.0);
        assert_eq!(r.parallel_of(4), Ohms::new(0.25));
        assert_eq!(r.series_of(4), Ohms::new(4.0));
    }

    #[test]
    #[should_panic(expected = "parallel combination of zero resistors")]
    fn parallel_of_zero_panics() {
        let _ = Ohms::new(1.0).parallel_of(0);
    }

    #[test]
    fn conductance_round_trips() {
        let r = Ohms::from_milliohms(5.0);
        assert!(r.conductance().resistance().approx_eq(r, 1e-15));
    }

    #[test]
    fn dissipation_across_zero_over_zero_is_zero() {
        assert_eq!(Volts::ZERO.dissipation_across(Ohms::ZERO), Watts::ZERO);
    }

    #[test]
    fn percent_of_total() {
        let part = Watts::new(420.0);
        let total = Watts::from_kilowatts(1.0);
        assert!((part.percent_of(total) - 42.0).abs() < 1e-12);
    }

    #[test]
    fn display_uses_engineering_notation() {
        assert_eq!(format!("{}", Ohms::from_milliohms(3.3)), "3.300 mΩ");
        assert_eq!(format!("{:.1}", Watts::from_kilowatts(1.0)), "1.0 kW");
        assert_eq!(format!("{}", Volts::new(48.0)), "48.000 V");
    }

    #[test]
    fn sum_over_iterator() {
        let total: Watts = (1..=4).map(|i| Watts::new(f64::from(i))).sum();
        assert_eq!(total, Watts::new(10.0));
    }

    #[test]
    fn serde_transparent_round_trip() {
        let json = serde_json_like(Amps::new(12.5));
        assert_eq!(json, "12.5");
    }

    /// Minimal serde check without a JSON dependency: serialize through
    /// `serde`'s `Display`-free path via `serde::Serialize` into a string
    /// using the `serde_test`-style token approach is unavailable offline,
    /// so we just verify the transparent repr via `f64::from`.
    fn serde_json_like(a: Amps) -> String {
        format!("{}", f64::from(a))
    }
}
