//! Reactive-component and timing quantities: capacitance, inductance,
//! frequency, and time.

quantity! {
    /// Capacitance in farads.
    ///
    /// ```
    /// use vpd_units::Farads;
    /// let c = Farads::from_microfarads(15.0); // DPMIH total capacitance
    /// assert!((c.value() - 15e-6).abs() < 1e-18);
    /// ```
    Farads, symbol: "F"
}

quantity! {
    /// Inductance in henries.
    ///
    /// ```
    /// use vpd_units::Henries;
    /// let l = Henries::from_microhenries(0.88); // DSCH total inductance
    /// assert!((l.value() - 0.88e-6).abs() < 1e-18);
    /// ```
    Henries, symbol: "H"
}

quantity! {
    /// Frequency in hertz.
    ///
    /// ```
    /// use vpd_units::Hertz;
    /// let f = Hertz::from_megahertz(2.0);
    /// assert_eq!(f.period().value(), 0.5e-6);
    /// ```
    Hertz, symbol: "Hz"
}

quantity! {
    /// Time in seconds.
    ///
    /// ```
    /// use vpd_units::Seconds;
    /// let dt = Seconds::from_nanoseconds(10.0);
    /// assert_eq!(dt.value(), 1e-8);
    /// ```
    Seconds, symbol: "s"
}

impl Farads {
    /// Creates a capacitance from microfarads.
    #[must_use]
    pub const fn from_microfarads(uf: f64) -> Self {
        Self::new(uf * 1e-6)
    }

    /// Creates a capacitance from nanofarads.
    #[must_use]
    pub const fn from_nanofarads(nf: f64) -> Self {
        Self::new(nf * 1e-9)
    }

    /// Creates a capacitance from picofarads.
    #[must_use]
    pub const fn from_picofarads(pf: f64) -> Self {
        Self::new(pf * 1e-12)
    }
}

impl Henries {
    /// Creates an inductance from microhenries.
    #[must_use]
    pub const fn from_microhenries(uh: f64) -> Self {
        Self::new(uh * 1e-6)
    }

    /// Creates an inductance from nanohenries.
    #[must_use]
    pub const fn from_nanohenries(nh: f64) -> Self {
        Self::new(nh * 1e-9)
    }
}

impl Hertz {
    /// Creates a frequency from kilohertz.
    #[must_use]
    pub const fn from_kilohertz(khz: f64) -> Self {
        Self::new(khz * 1e3)
    }

    /// Creates a frequency from megahertz.
    #[must_use]
    pub const fn from_megahertz(mhz: f64) -> Self {
        Self::new(mhz * 1e6)
    }

    /// The switching period `1/f`.
    #[must_use]
    pub fn period(self) -> Seconds {
        Seconds::new(1.0 / self.value())
    }
}

impl Seconds {
    /// Creates a time from microseconds.
    #[must_use]
    pub const fn from_microseconds(us: f64) -> Self {
        Self::new(us * 1e-6)
    }

    /// Creates a time from nanoseconds.
    #[must_use]
    pub const fn from_nanoseconds(ns: f64) -> Self {
        Self::new(ns * 1e-9)
    }

    /// The frequency whose period is this time.
    #[must_use]
    pub fn frequency(self) -> Hertz {
        Hertz::new(1.0 / self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_frequency_round_trip() {
        let f = Hertz::from_megahertz(2.5);
        assert!(f.period().frequency().approx_eq(f, 1e-6));
    }

    #[test]
    fn submultiple_constructors() {
        assert!((Farads::from_picofarads(100.0).value() - 1e-10).abs() < 1e-24);
        assert!((Henries::from_nanohenries(250.0).value() - 2.5e-7).abs() < 1e-20);
        assert!((Hertz::from_kilohertz(500.0).value() - 5e5).abs() < 1e-9);
    }
}
