//! A minimal JSON document model with a `Display` serializer.
//!
//! The workspace is std-only (the `serde` dependency is a marker-trait
//! stand-in with no serializer behind it), so machine-readable output is
//! built by hand. [`Json`] keeps that honest: values compose as a tree
//! and the `Display` impl guarantees well-formed output — escaping,
//! `null` for non-finite floats, no trailing commas — instead of every
//! call site string-formatting its own braces.

use std::fmt;

/// A JSON value. Build with the constructors/`From` impls and the
/// [`Json::obj`] helper; serialize with `to_string()` / `{}`.
///
/// ```
/// use vpd_report::Json;
///
/// let doc = Json::obj([
///     ("name", Json::from("droop")),
///     ("volts", Json::from(0.05)),
///     ("ok", Json::from(true)),
/// ]);
/// assert_eq!(doc.to_string(), r#"{"name":"droop","volts":0.05,"ok":true}"#);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`. Also what non-finite numbers serialize as.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, emitted without a decimal point.
    Int(i64),
    /// A float, emitted with shortest round-trip formatting; NaN and
    /// infinities become `null` (JSON has no spelling for them).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object; key order is preserved as inserted.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Self {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Self {
        Json::Array(items.into_iter().collect())
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        // Saturating: a count past i64::MAX is not representable here,
        // and lying small beats wrapping negative.
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Num(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    write!(f, ":{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::from(true).to_string(), "true");
        assert_eq!(Json::from(-3_i64).to_string(), "-3");
        assert_eq!(Json::from(0.25).to_string(), "0.25");
        assert_eq!(Json::from("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::from(f64::NAN).to_string(), "null");
        assert_eq!(Json::from(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::from(f64::NEG_INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::from("a\"b\\c\nd\te\u{1}").to_string(),
            r#""a\"b\\c\nd\te\u0001""#
        );
    }

    #[test]
    fn nested_structures_compose() {
        let doc = Json::obj([
            ("xs", Json::array([Json::from(1_i64), Json::from(2_i64)])),
            ("inner", Json::obj([("k", Json::Null)])),
        ]);
        assert_eq!(doc.to_string(), r#"{"xs":[1,2],"inner":{"k":null}}"#);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::array([]).to_string(), "[]");
        assert_eq!(Json::obj::<String>([]).to_string(), "{}");
    }
}
