//! A minimal JSON document model with a `Display` serializer and a
//! strict parser.
//!
//! The workspace is std-only (the `serde` dependency is a marker-trait
//! stand-in with no serializer behind it), so machine-readable output is
//! built by hand. [`Json`] keeps that honest: values compose as a tree
//! and the `Display` impl guarantees well-formed output — escaping,
//! `null` for non-finite floats, no trailing commas — instead of every
//! call site string-formatting its own braces. [`Json::parse`] is the
//! inverse, grown for the `vpd-serve` NDJSON protocol: one complete
//! document per line, typed errors with byte offsets instead of panics.

use std::fmt;

/// A JSON value. Build with the constructors/`From` impls and the
/// [`Json::obj`] helper; serialize with `to_string()` / `{}`.
///
/// ```
/// use vpd_report::Json;
///
/// let doc = Json::obj([
///     ("name", Json::from("droop")),
///     ("volts", Json::from(0.05)),
///     ("ok", Json::from(true)),
/// ]);
/// assert_eq!(doc.to_string(), r#"{"name":"droop","volts":0.05,"ok":true}"#);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`. Also what non-finite numbers serialize as.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, emitted without a decimal point.
    Int(i64),
    /// A float, emitted with shortest round-trip formatting; NaN and
    /// infinities become `null` (JSON has no spelling for them).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object; key order is preserved as inserted.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Self {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Self {
        Json::Array(items.into_iter().collect())
    }

    /// Parses one complete JSON document from `text`.
    ///
    /// Strict by design (the NDJSON protocol feeds it untrusted lines):
    /// the whole input must be a single value plus optional surrounding
    /// whitespace — trailing bytes, trailing commas, `NaN`, comments,
    /// and unpaired surrogates are all rejected with a byte offset.
    /// Numbers without `.`/`e` that fit an `i64` parse as [`Json::Int`];
    /// everything else numeric becomes [`Json::Num`], mirroring the
    /// serializer (which prints integral floats without a decimal
    /// point).
    ///
    /// ```
    /// use vpd_report::Json;
    ///
    /// let doc = Json::parse(r#"{"id":7,"ok":true,"z":[1.5,null]}"#).unwrap();
    /// assert_eq!(doc.get("id"), Some(&Json::Int(7)));
    /// assert!(Json::parse("{\"dangling\":").is_err());
    /// ```
    ///
    /// # Errors
    ///
    /// [`JsonParseError`] describing the first offending byte.
    pub fn parse(text: &str) -> Result<Self, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Looks up `key` in an object (first occurrence); `None` for
    /// missing keys and non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `i64` (ints only; floats are not coerced).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as an `f64` ([`Json::Int`] widens losslessly within
    /// `f64`'s integer range, matching how readers treat `2` and `2.0`).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Why [`Json::parse`] rejected its input.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonParseError {
    /// Byte offset of the first offending character.
    pub offset: usize,
    /// What went wrong there.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Nesting ceiling for the recursive-descent parser: deep enough for
/// any document this workspace emits, shallow enough that adversarial
/// `[[[[…` lines error instead of overflowing the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Consumes `word` (already positioned at its first byte).
    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than 128 levels"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array_body(depth),
            Some(b'{') => self.object_body(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array_body(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object_body(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.pos += 1; // consume '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.pos += 1; // consume opening quote
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote/escape.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The input is valid UTF-8 and the scan only stops on ASCII,
            // so the run is a char boundary slice.
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("scanned run starts and ends on char boundaries"),
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonParseError> {
        let c = self.peek().ok_or_else(|| self.err("dangling escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let ch = match hi {
                    // High surrogate: require a paired \uXXXX low half.
                    0xD800..=0xDBFF => {
                        if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u')
                        {
                            self.pos += 2;
                            let lo = self.hex4()?;
                            if !(0xDC00..=0xDFFF).contains(&lo) {
                                return Err(self.err("unpaired high surrogate"));
                            }
                            let code = 0x10000
                                + ((u32::from(hi) - 0xD800) << 10)
                                + (u32::from(lo) - 0xDC00);
                            char::from_u32(code)
                                .ok_or_else(|| self.err("invalid surrogate pair"))?
                        } else {
                            return Err(self.err("unpaired high surrogate"));
                        }
                    }
                    0xDC00..=0xDFFF => return Err(self.err("unpaired low surrogate")),
                    code => char::from_u32(u32::from(code))
                        .ok_or_else(|| self.err("invalid \\u escape"))?,
                };
                out.push(ch);
            }
            _ => return Err(self.err("unknown escape character")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u16, JsonParseError> {
        let mut code: u16 = 0;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match c {
                b'0'..=b'9' => c - b'0',
                b'a'..=b'f' => c - b'a' + 10,
                b'A'..=b'F' => c - b'A' + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            code = (code << 4) | u16::from(digit);
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digits()?;
        if int_digits > 1 && self.bytes[start + usize::from(self.bytes[start] == b'-')] == b'0' {
            return Err(self.err("leading zero in number"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number tokens are ASCII");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            // Magnitudes past i64 degrade to f64, like every JS reader.
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    /// Consumes one-or-more ASCII digits, returning how many.
    fn digits(&mut self) -> Result<usize, JsonParseError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a digit"));
        }
        Ok(self.pos - start)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        // Saturating: a count past i64::MAX is not representable here,
        // and lying small beats wrapping negative.
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Num(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    write!(f, ":{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::from(true).to_string(), "true");
        assert_eq!(Json::from(-3_i64).to_string(), "-3");
        assert_eq!(Json::from(0.25).to_string(), "0.25");
        assert_eq!(Json::from("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::from(f64::NAN).to_string(), "null");
        assert_eq!(Json::from(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::from(f64::NEG_INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::from("a\"b\\c\nd\te\u{1}").to_string(),
            r#""a\"b\\c\nd\te\u0001""#
        );
    }

    #[test]
    fn nested_structures_compose() {
        let doc = Json::obj([
            ("xs", Json::array([Json::from(1_i64), Json::from(2_i64)])),
            ("inner", Json::obj([("k", Json::Null)])),
        ]);
        assert_eq!(doc.to_string(), r#"{"xs":[1,2],"inner":{"k":null}}"#);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::array([]).to_string(), "[]");
        assert_eq!(Json::obj::<String>([]).to_string(), "{}");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("0").unwrap(), Json::Int(0));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Num(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("-1.5E-2").unwrap(), Json::Num(-0.015));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::from("hi"));
    }

    #[test]
    fn int_vs_float_boundary() {
        assert_eq!(
            Json::parse("9223372036854775807").unwrap(),
            Json::Int(i64::MAX)
        );
        // One past i64::MAX degrades to f64 instead of erroring.
        assert_eq!(
            Json::parse("9223372036854775808").unwrap(),
            Json::Num(9.223372036854776e18)
        );
        // A decimal point always means Num, even when integral.
        assert_eq!(Json::parse("2.0").unwrap(), Json::Num(2.0));
    }

    #[test]
    fn parses_structures_and_preserves_order() {
        let doc = Json::parse(r#"{"b":[1,{"k":null}],"a":2}"#).unwrap();
        match &doc {
            Json::Object(pairs) => {
                assert_eq!(pairs[0].0, "b");
                assert_eq!(pairs[1].0, "a");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(doc.get("a"), Some(&Json::Int(2)));
        assert_eq!(doc.to_string(), r#"{"b":[1,{"k":null}],"a":2}"#);
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\nd\te\u0001\/""#).unwrap(),
            Json::from("a\"b\\c\nd\te\u{1}/")
        );
        assert_eq!(Json::parse(r#""\b\f""#).unwrap(), Json::from("\u{8}\u{c}"));
        // 𝄞 via a surrogate pair.
        assert_eq!(
            Json::parse(r#""\ud834\udd1e""#).unwrap(),
            Json::from("\u{1D11E}")
        );
        // Raw multi-byte UTF-8 passes through unescaped.
        assert_eq!(
            Json::parse("\"héllo → 🌍\"").unwrap(),
            Json::from("héllo → 🌍")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "   ",
            "nul",
            "truee",
            "{\"a\":1",
            "{\"a\" 1}",
            "{a:1}",
            "[1,]",
            "{\"a\":1,}",
            "[1 2]",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\u12\"",
            "\"\\ud834\"",
            "\"\\udd1e\"",
            "01",
            "1.",
            "1e",
            "-",
            "+1",
            "NaN",
            "Infinity",
            "1 2",
            "{} extra",
        ] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(err.offset <= bad.len(), "{bad}: offset {}", err.offset);
            assert!(err.to_string().contains("invalid JSON"), "{err}");
        }
    }

    #[test]
    fn rejects_unescaped_control_chars_and_deep_nesting() {
        assert!(Json::parse("\"a\nb\"").is_err());
        let deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(Json::parse(&deep).is_err());
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors_read_parsed_documents() {
        let doc = Json::parse(r#"{"s":"x","i":3,"f":1.5,"b":false}"#).unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("i").and_then(Json::as_i64), Some(3));
        assert_eq!(doc.get("i").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(doc.get("f").and_then(Json::as_i64), None);
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Null.get("s"), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A character pool that over-samples everything the escaper cares
    /// about: quotes, backslashes, control characters, multi-byte UTF-8.
    fn pool_char(pick: u32) -> char {
        const SPICE: &[char] = &[
            '"',
            '\\',
            '/',
            '\n',
            '\r',
            '\t',
            '\u{0}',
            '\u{1}',
            '\u{8}',
            '\u{c}',
            '\u{1f}',
            '\u{7f}',
            'é',
            'ß',
            '→',
            '𝄞',
            '🌍',
            '\u{ffff}',
            '\u{10FFFF}',
        ];
        let n = SPICE.len() as u32;
        if pick < n {
            SPICE[pick as usize]
        } else {
            // Printable ASCII for the rest.
            char::from_u32(0x20 + (pick - n) % 0x5f).expect("printable ascii")
        }
    }

    fn sample_string(picks: &[u32]) -> String {
        picks.iter().map(|&p| pool_char(p)).collect()
    }

    /// Deterministically folds a flat sample vector into a Json tree:
    /// structure and scalars both come from the draws, so every case is
    /// reproducible from the proptest RNG alone.
    fn sample_json(draws: &mut std::slice::Iter<'_, u32>, depth: usize) -> Json {
        let Some(&d) = draws.next() else {
            return Json::Null;
        };
        match d % if depth >= 4 { 5 } else { 7 } {
            0 => Json::Null,
            1 => Json::Bool(d % 2 == 0),
            2 => Json::Int((i64::from(d)).wrapping_mul(0x9E37_79B9) - (1 << 40)),
            3 => {
                // Finite floats only: the writer maps non-finite to null.
                let x = (f64::from(d) - 5e8) / 1027.0;
                Json::Num(x)
            }
            4 => Json::Str(sample_string(&[d % 97, (d / 97) % 97, (d / 9409) % 97])),
            5 => Json::Array((0..d % 4).map(|_| sample_json(draws, depth + 1)).collect()),
            _ => Json::Object(
                (0..d % 4)
                    .map(|i| {
                        (
                            format!("k{i}-{}", sample_string(&[d % 97])),
                            sample_json(draws, depth + 1),
                        )
                    })
                    .collect(),
            ),
        }
    }

    /// The writer prints `Num(x)` with integral `x` the same way it
    /// prints `Int`, so a parse of the output legitimately returns
    /// `Int`. Normalizing maps a value to its post-round-trip form.
    fn normalize(v: &Json) -> Json {
        match v {
            Json::Num(x) if !x.is_finite() => Json::Null,
            Json::Num(x) => {
                let printed = x.to_string();
                match printed.parse::<i64>() {
                    Ok(i) => Json::Int(i),
                    Err(_) => Json::Num(*x),
                }
            }
            Json::Array(items) => Json::Array(items.iter().map(normalize).collect()),
            Json::Object(pairs) => Json::Object(
                pairs
                    .iter()
                    .map(|(k, v)| (k.clone(), normalize(v)))
                    .collect(),
            ),
            other => other.clone(),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Any string — escapes, control bytes, astral planes — survives
        /// a serialize/parse round trip byte-for-byte.
        #[test]
        fn prop_string_escape_round_trip(
            picks in proptest::collection::vec(0_u32..1000, 0..24),
        ) {
            let original = Json::Str(sample_string(&picks));
            let parsed = Json::parse(&original.to_string()).unwrap();
            prop_assert_eq!(parsed, original);
        }

        /// Arbitrary documents round-trip up to the writer's documented
        /// collapses (integral floats print as ints, non-finite as null),
        /// and the re-serialization is a fixed point.
        #[test]
        fn prop_document_round_trip(
            draws in proptest::collection::vec(0_u32..1_000_000_000, 1..40),
        ) {
            let doc = sample_json(&mut draws.iter(), 0);
            let text = doc.to_string();
            let parsed = Json::parse(&text).unwrap();
            prop_assert_eq!(&parsed, &normalize(&doc));
            // Parsing is idempotent under re-serialization: the parsed
            // tree prints back to the identical byte string.
            prop_assert_eq!(parsed.to_string(), text);
        }
    }
}
