//! Plain-text and Markdown table rendering.

/// Column alignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Align {
    /// Left-aligned (default).
    #[default]
    Left,
    /// Right-aligned — numeric columns.
    Right,
}

/// A simple text table builder.
///
/// ```
/// use vpd_report::{Align, Table};
///
/// let mut t = Table::new(vec!["Architecture", "Loss (%)"]);
/// t.align(1, Align::Right);
/// t.row(vec!["A0".into(), "42.2".into()]);
/// t.row(vec!["A1 (DSCH)".into(), "17.5".into()]);
/// let text = t.render();
/// assert!(text.contains("A0"));
/// assert!(text.lines().count() >= 4);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = vec![Align::Left; headers.len()];
        Self {
            headers,
            rows: Vec::new(),
            aligns,
        }
    }

    /// Sets the alignment of column `col` (ignored when out of range).
    pub fn align(&mut self, col: usize, align: Align) -> &mut Self {
        if let Some(a) = self.aligns.get_mut(col) {
            *a = align;
        }
        self
    }

    /// Appends a row; short rows are padded, long rows truncated to the
    /// header width.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }

    fn pad(cell: &str, width: usize, align: Align) -> String {
        let len = cell.chars().count();
        let fill = width.saturating_sub(len);
        match align {
            Align::Left => format!("{cell}{}", " ".repeat(fill)),
            Align::Right => format!("{}{cell}", " ".repeat(fill)),
        }
    }

    /// Renders a boxed plain-text table.
    #[must_use]
    pub fn render(&self) -> String {
        let widths = self.widths();
        let sep: String = {
            let parts: Vec<String> = widths.iter().map(|w| "-".repeat(w + 2)).collect();
            format!("+{}+", parts.join("+"))
        };
        let mut out = String::new();
        out.push_str(&sep);
        out.push('\n');
        let header_cells: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| Self::pad(h, widths[i], Align::Left))
            .collect();
        out.push_str(&format!("| {} |\n", header_cells.join(" | ")));
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| Self::pad(c, widths[i], self.aligns[i]))
                .collect();
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
        out.push_str(&sep);
        out.push('\n');
        out
    }

    /// Renders a GitHub-flavored Markdown table.
    #[must_use]
    pub fn markdown(&self) -> String {
        let mut out = format!("| {} |\n", self.headers.join(" | "));
        let seps: Vec<&str> = self
            .aligns
            .iter()
            .map(|a| match a {
                Align::Left => "---",
                Align::Right => "---:",
            })
            .collect();
        out.push_str(&format!("| {} |\n", seps.join(" | ")));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name", "value"]);
        t.align(1, Align::Right);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "10000".into()]);
        t
    }

    #[test]
    fn columns_line_up() {
        let text = sample().render();
        let widths: Vec<usize> = text.lines().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{text}");
    }

    #[test]
    fn right_alignment_pads_left() {
        let text = sample().render();
        assert!(text.contains("|     1 |"), "{text}");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x".into()]);
        assert_eq!(t.len(), 1);
        let text = t.render();
        assert!(text.lines().count() == 5);
    }

    #[test]
    fn markdown_has_separator_with_alignment() {
        let md = sample().markdown();
        assert!(md.contains("| --- | ---: |"));
        assert_eq!(md.lines().count(), 4);
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = Table::new(vec!["only"]);
        assert!(t.is_empty());
        assert!(t.render().contains("only"));
    }

    #[test]
    fn unicode_headers_counted_by_chars() {
        let mut t = Table::new(vec!["µ-bump Ω"]);
        t.row(vec!["x".into()]);
        let text = t.render();
        let widths: Vec<usize> = text.lines().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{text}");
    }
}
