//! ASCII stacked horizontal bar charts — the harness's Figure-7-style
//! output.

/// One bar: a label and stacked `(segment name, value)` pairs.
#[derive(Clone, PartialEq, Debug)]
pub struct Bar {
    /// Row label (e.g. an architecture name).
    pub label: String,
    /// Stacked segments, in draw order.
    pub segments: Vec<(String, f64)>,
}

impl Bar {
    /// Creates a bar.
    #[must_use]
    pub fn new<S: Into<String>>(label: S, segments: Vec<(String, f64)>) -> Self {
        Self {
            label: label.into(),
            segments,
        }
    }

    /// Sum of all segment values.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.segments.iter().map(|(_, v)| v).sum()
    }
}

/// A stacked horizontal bar chart rendered in plain text.
///
/// ```
/// use vpd_report::{Bar, BarChart};
///
/// let mut chart = BarChart::new("PCB-to-POL loss (% of 1 kW)", 40);
/// chart.bar(Bar::new("A0", vec![("VR".into(), 10.0), ("horiz".into(), 30.0)]));
/// chart.bar(Bar::new("A1", vec![("VR".into(), 14.0), ("horiz".into(), 4.0)]));
/// let text = chart.render();
/// assert!(text.contains("A0"));
/// assert!(text.contains("40.0"));
/// ```
#[derive(Clone, Debug)]
pub struct BarChart {
    title: String,
    width: usize,
    bars: Vec<Bar>,
}

/// Fill characters cycled across segments.
const FILLS: &[char] = &['#', '=', ':', '.', '%', '+', '*'];

impl BarChart {
    /// Creates a chart with a maximum bar width in characters.
    #[must_use]
    pub fn new<S: Into<String>>(title: S, width: usize) -> Self {
        Self {
            title: title.into(),
            width: width.max(10),
            bars: Vec::new(),
        }
    }

    /// Appends a bar.
    pub fn bar(&mut self, bar: Bar) -> &mut Self {
        self.bars.push(bar);
        self
    }

    /// Renders the chart with a legend.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.title);
        let max_total = self
            .bars
            .iter()
            .map(Bar::total)
            .fold(0.0_f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let label_w = self
            .bars
            .iter()
            .map(|b| b.label.chars().count())
            .max()
            .unwrap_or(0);

        // Legend built from first occurrence of each segment name.
        let mut legend: Vec<String> = Vec::new();
        for bar in &self.bars {
            for (name, _) in &bar.segments {
                if !legend.contains(name) {
                    legend.push(name.clone());
                }
            }
        }

        for bar in &self.bars {
            let mut line = format!("{:<width$} |", bar.label, width = label_w);
            for (name, value) in &bar.segments {
                let fill = FILLS[legend.iter().position(|n| n == name).unwrap_or(0) % FILLS.len()];
                let chars = (value / max_total * self.width as f64).round() as usize;
                line.extend(std::iter::repeat_n(fill, chars));
            }
            out.push_str(&format!("{line} {:.1}\n", bar.total()));
        }

        out.push_str("legend: ");
        let entries: Vec<String> = legend
            .iter()
            .enumerate()
            .map(|(i, name)| format!("{} {name}", FILLS[i % FILLS.len()]))
            .collect();
        out.push_str(&entries.join("  "));
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longer_values_draw_longer_bars() {
        let mut chart = BarChart::new("t", 40);
        chart.bar(Bar::new("big", vec![("x".into(), 40.0)]));
        chart.bar(Bar::new("sml", vec![("x".into(), 10.0)]));
        let text = chart.render();
        let count = |label: &str| {
            text.lines()
                .find(|l| l.starts_with(label))
                .unwrap()
                .matches('#')
                .count()
        };
        assert!(count("big") > 3 * count("sml"));
    }

    #[test]
    fn legend_lists_each_segment_once() {
        let mut chart = BarChart::new("t", 20);
        chart.bar(Bar::new("a", vec![("vr".into(), 1.0), ("h".into(), 2.0)]));
        chart.bar(Bar::new("b", vec![("vr".into(), 2.0), ("h".into(), 1.0)]));
        let text = chart.render();
        let legend = text.lines().last().unwrap();
        assert_eq!(legend.matches("vr").count(), 1);
        assert!(legend.matches('h').count() >= 1);
    }

    #[test]
    fn totals_printed() {
        let mut chart = BarChart::new("t", 20);
        chart.bar(Bar::new("a", vec![("x".into(), 1.5), ("y".into(), 2.5)]));
        assert!(chart.render().contains("4.0"));
    }

    #[test]
    fn empty_chart_renders_title() {
        let chart = BarChart::new("nothing here", 20);
        assert!(chart.render().contains("nothing here"));
    }
}
