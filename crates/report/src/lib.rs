//! Reporting primitives for the experiment harness: plain-text and
//! Markdown tables, stacked ASCII bar charts (the Figure-7 output
//! format), and CSV emission.
//!
//! ```
//! use vpd_report::Table;
//!
//! let mut t = Table::new(vec!["topology", "peak efficiency"]);
//! t.row(vec!["DSCH".into(), "91.5%".into()]);
//! assert!(t.render().contains("DSCH"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chart;
mod csv;
mod histogram;
mod json;
mod render;
mod table;

pub use chart::{Bar, BarChart};
pub use csv::Csv;
pub use histogram::{sparkline, Histogram};
pub use json::{Json, JsonParseError};
pub use render::{Render, RenderFormat};
pub use table::{Align, Table};
