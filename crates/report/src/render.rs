//! The unified report-rendering contract behind the CLI's `--format`
//! flag: every report type renders itself as human text or as a
//! machine-readable [`Json`] document, and callers pick per invocation.

use crate::json::Json;
use std::str::FromStr;

/// Output format selector (the CLI's global `--format` flag).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RenderFormat {
    /// Human-readable text (the default).
    #[default]
    Text,
    /// One machine-readable JSON document.
    Json,
}

impl FromStr for RenderFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "text" => Ok(Self::Text),
            "json" => Ok(Self::Json),
            other => Err(format!("unknown format '{other}' (expected text|json)")),
        }
    }
}

/// A report that can render itself for people and for machines.
///
/// `render_text` is the CLI's default presentation; `render_json`
/// returns a [`Json`] tree so callers can embed the report in a larger
/// document (the CLI wraps every report with command/architecture
/// context) before serializing.
pub trait Render {
    /// Human-readable rendering, newline-terminated lines.
    fn render_text(&self) -> String;

    /// Machine-readable rendering as a JSON value.
    fn render_json(&self) -> Json;

    /// Renders in the requested format: text verbatim, or the compact
    /// single-document JSON serialization.
    fn render(&self, format: RenderFormat) -> String {
        match format {
            RenderFormat::Text => self.render_text(),
            RenderFormat::Json => self.render_json().to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;

    impl Render for Fixed {
        fn render_text(&self) -> String {
            "answer: 42\n".to_owned()
        }

        fn render_json(&self) -> Json {
            Json::obj([("answer", Json::from(42_i64))])
        }
    }

    #[test]
    fn format_parses_and_defaults() {
        assert_eq!("text".parse::<RenderFormat>().unwrap(), RenderFormat::Text);
        assert_eq!("json".parse::<RenderFormat>().unwrap(), RenderFormat::Json);
        assert!("yaml".parse::<RenderFormat>().is_err());
        assert_eq!(RenderFormat::default(), RenderFormat::Text);
    }

    #[test]
    fn render_dispatches_on_format() {
        assert_eq!(Fixed.render(RenderFormat::Text), "answer: 42\n");
        assert_eq!(Fixed.render(RenderFormat::Json), r#"{"answer":42}"#);
    }
}
