//! Minimal CSV emission (RFC 4180 quoting) for experiment outputs.

/// A CSV document builder.
///
/// ```
/// use vpd_report::Csv;
///
/// let mut csv = Csv::new(vec!["arch", "loss_w"]);
/// csv.row(vec!["A0".into(), "422".into()]);
/// csv.row(vec!["has,comma".into(), "1".into()]);
/// let text = csv.render();
/// assert!(text.contains("\"has,comma\""));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Csv {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    /// Creates a document with headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header count).
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    fn escape(cell: &str) -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_owned()
        }
    }

    /// Renders the document.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let head: Vec<String> = self.headers.iter().map(|h| Self::escape(h)).collect();
        out.push_str(&head.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| Self::escape(c)).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quotes_are_doubled() {
        let mut csv = Csv::new(vec!["a"]);
        csv.row(vec!["say \"hi\"".into()]);
        assert!(csv.render().contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn newlines_are_quoted() {
        let mut csv = Csv::new(vec!["a"]);
        csv.row(vec!["two\nlines".into()]);
        assert!(csv.render().contains("\"two\nlines\""));
    }

    #[test]
    fn rows_padded_to_header_count() {
        let mut csv = Csv::new(vec!["a", "b"]);
        csv.row(vec!["1".into()]);
        assert_eq!(csv.render(), "a,b\n1,\n");
    }

    #[test]
    fn plain_cells_unquoted() {
        let mut csv = Csv::new(vec!["x"]);
        csv.row(vec!["plain".into()]);
        assert_eq!(csv.render(), "x\nplain\n");
    }
}
