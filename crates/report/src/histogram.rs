//! Text histograms and sparklines — for Monte-Carlo distributions and
//! sweep series.

/// A fixed-bin histogram over `f64` samples.
///
/// ```
/// use vpd_report::Histogram;
///
/// let h = Histogram::from_samples(&[1.0, 1.2, 1.1, 3.0, 3.1], 4);
/// assert_eq!(h.bins().len(), 4);
/// assert_eq!(h.total(), 5);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins spanning the
    /// sample range. Empty input or a single repeated value produces a
    /// single-bin degenerate histogram.
    #[must_use]
    pub fn from_samples(samples: &[f64], bins: usize) -> Self {
        let bins = bins.max(1);
        let finite: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return Self {
                lo: 0.0,
                hi: 0.0,
                counts: vec![0; 1],
            };
        }
        let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if hi <= lo {
            return Self {
                lo,
                hi,
                counts: vec![finite.len(); 1],
            };
        }
        let mut counts = vec![0usize; bins];
        for v in finite {
            let t = (v - lo) / (hi - lo);
            let idx = ((t * bins as f64) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        Self { lo, hi, counts }
    }

    /// Per-bin counts.
    #[must_use]
    pub fn bins(&self) -> &[usize] {
        &self.counts
    }

    /// Total samples counted.
    #[must_use]
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// The `(low, high)` edges of bin `i`.
    #[must_use]
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Renders a horizontal-bar histogram, `width` chars at the mode.
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.bin_edges(i);
            let bar = "#".repeat(c * width.max(1) / max);
            out.push_str(&format!("[{lo:>9.2}, {hi:>9.2}) |{bar} {c}\n"));
        }
        out
    }
}

/// Block-character levels for [`sparkline`], low to high.
const SPARK_LEVELS: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a series as a one-line sparkline (`▁▂▅█…`); non-finite
/// values render as spaces.
///
/// ```
/// use vpd_report::sparkline;
/// let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
/// assert_eq!(s.chars().count(), 4);
/// assert!(s.ends_with('█'));
/// ```
#[must_use]
pub fn sparkline(series: &[f64]) -> String {
    let finite: Vec<f64> = series.iter().copied().filter(|v| v.is_finite()).collect();
    let (lo, hi) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
            (l.min(v), h.max(v))
        });
    series
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else if hi <= lo {
                SPARK_LEVELS[0]
            } else {
                let t = (v - lo) / (hi - lo);
                let idx = ((t * (SPARK_LEVELS.len() - 1) as f64).round()) as usize;
                SPARK_LEVELS[idx.min(SPARK_LEVELS.len() - 1)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_and_edges() {
        let h = Histogram::from_samples(&[0.0, 0.1, 0.9, 1.0], 2);
        assert_eq!(h.total(), 4);
        assert_eq!(h.bins(), &[2, 2]);
        let (lo, hi) = h.bin_edges(0);
        assert!((lo - 0.0).abs() < 1e-12 && (hi - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_degenerate_inputs() {
        assert_eq!(Histogram::from_samples(&[], 5).total(), 0);
        let constant = Histogram::from_samples(&[2.0; 7], 5);
        assert_eq!(constant.total(), 7);
        assert_eq!(constant.bins().len(), 1);
        let with_nan = Histogram::from_samples(&[1.0, f64::NAN, 2.0], 2);
        assert_eq!(with_nan.total(), 2);
    }

    #[test]
    fn histogram_renders_bars() {
        let h = Histogram::from_samples(&[1.0, 1.0, 1.0, 5.0], 2);
        let text = h.render(9);
        assert!(text.contains("######### 3"));
        assert!(text.contains("### 1"));
    }

    #[test]
    fn sparkline_monotone_series() {
        let s = sparkline(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.first(), Some(&'▁'));
        assert_eq!(chars.last(), Some(&'█'));
        // Levels never decrease for an increasing series.
        let idx = |c: char| SPARK_LEVELS.iter().position(|&l| l == c).unwrap();
        assert!(chars.windows(2).all(|w| idx(w[0]) <= idx(w[1])));
    }

    #[test]
    fn sparkline_flat_and_nan() {
        assert_eq!(sparkline(&[3.0, 3.0]), "▁▁");
        assert_eq!(sparkline(&[1.0, f64::NAN, 2.0]).chars().nth(1), Some(' '));
        assert_eq!(sparkline(&[]), "");
    }
}
