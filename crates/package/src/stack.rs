//! Vertical level stacks: the chain of interconnect levels a supply
//! current crosses between the PCB and the point of load.

use crate::{InterconnectTech, PackageError, ViaAllocation};
use vpd_units::{Amps, SquareMeters, Volts, Watts};

/// One level of a vertical path: a technology, the platform area it may
/// use, and the current it carries (which differs across a conversion
/// boundary).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LevelSpec {
    /// Technology at this level.
    pub tech: InterconnectTech,
    /// Platform area available to the array.
    pub platform: SquareMeters,
    /// Current crossing the level.
    pub current: Amps,
}

impl LevelSpec {
    /// A level on the technology's default platform.
    #[must_use]
    pub fn on_default_platform(tech: InterconnectTech, current: Amps) -> Self {
        Self {
            tech,
            platform: tech.default_platform_area,
            current,
        }
    }
}

/// A resolved vertical path: one allocation per level.
///
/// ```
/// use vpd_package::{InterconnectTech, LevelSpec, VerticalPath};
/// use vpd_units::Amps;
///
/// # fn main() -> Result<(), vpd_package::PackageError> {
/// // A1-style: 48 V crosses BGA and C4; 1 kA crosses TSVs and pads.
/// let hv = Amps::new(1000.0 / 48.0);
/// let pol = Amps::from_kiloamps(1.0);
/// let path = VerticalPath::resolve(&[
///     LevelSpec::on_default_platform(InterconnectTech::BGA, hv),
///     LevelSpec::on_default_platform(InterconnectTech::C4, hv),
///     LevelSpec::on_default_platform(InterconnectTech::TSV, pol),
///     LevelSpec::on_default_platform(InterconnectTech::CU_PAD, pol),
/// ])?;
/// // The paper's observation: vertical interconnect loss is negligible.
/// assert!(path.total_loss().value() < 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct VerticalPath {
    levels: Vec<ViaAllocation>,
}

impl VerticalPath {
    /// Allocates every level of the path.
    ///
    /// # Errors
    ///
    /// Propagates the first [`PackageError`] from any level.
    pub fn resolve(specs: &[LevelSpec]) -> Result<Self, PackageError> {
        let levels = specs
            .iter()
            .map(|s| ViaAllocation::for_current(s.tech, s.current, s.platform))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { levels })
    }

    /// The per-level allocations, in path order.
    #[must_use]
    pub fn levels(&self) -> &[ViaAllocation] {
        &self.levels
    }

    /// Total dissipation across all levels.
    #[must_use]
    pub fn total_loss(&self) -> Watts {
        self.levels.iter().map(ViaAllocation::loss).sum()
    }

    /// Total voltage drop across all levels.
    #[must_use]
    pub fn total_drop(&self) -> Volts {
        self.levels.iter().map(ViaAllocation::voltage_drop).sum()
    }

    /// Loss of the level using `tech`, if present.
    #[must_use]
    pub fn loss_of(&self, tech: &InterconnectTech) -> Option<Watts> {
        self.levels
            .iter()
            .find(|l| l.tech().name == tech.name)
            .map(ViaAllocation::loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a0_path() -> VerticalPath {
        // Reference architecture: the full 1 kA crosses BGA and C4 (on a
        // platform large enough to hold them).
        let pol = Amps::from_kiloamps(1.0);
        VerticalPath::resolve(&[
            LevelSpec::on_default_platform(InterconnectTech::BGA, pol),
            LevelSpec {
                tech: InterconnectTech::C4,
                platform: SquareMeters::from_square_millimeters(1200.0),
                current: pol,
            },
        ])
        .unwrap()
    }

    #[test]
    fn reference_path_resolves_and_loses_little() {
        let path = a0_path();
        // Even at 1 kA, the parallel via count keeps vertical loss tiny —
        // the paper's point that the *horizontal* interconnect dominates.
        assert!(path.total_loss().value() < 2.0);
        assert_eq!(path.levels().len(), 2);
    }

    #[test]
    fn loss_decomposition_sums_to_total() {
        let path = a0_path();
        let parts: f64 = path.levels().iter().map(|l| l.loss().value()).sum();
        assert!((parts - path.total_loss().value()).abs() < 1e-12);
    }

    #[test]
    fn drop_is_current_times_resistance() {
        let path = a0_path();
        for level in path.levels() {
            let expected = level.current_per_via().value()
                * level.power_vias() as f64
                * level.effective_resistance().value();
            assert!((level.voltage_drop().value() - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn loss_of_finds_levels() {
        let path = a0_path();
        assert!(path.loss_of(&InterconnectTech::BGA).is_some());
        assert!(path.loss_of(&InterconnectTech::TSV).is_none());
    }

    #[test]
    fn failed_level_propagates() {
        let pol = Amps::from_kiloamps(1.0);
        let err = VerticalPath::resolve(&[LevelSpec::on_default_platform(
            InterconnectTech::MICRO_BUMP,
            pol,
        )])
        .unwrap_err();
        assert!(matches!(err, PackageError::InsufficientSites { .. }));
    }

    #[test]
    fn high_voltage_path_beats_low_voltage_path() {
        // The same power crossing at 48 V instead of 1 V loses ~48² less
        // in the same technology (integer via-count effects aside).
        let hv = VerticalPath::resolve(&[LevelSpec::on_default_platform(
            InterconnectTech::BGA,
            Amps::new(1000.0 / 48.0),
        )])
        .unwrap();
        let lv = VerticalPath::resolve(&[LevelSpec::on_default_platform(
            InterconnectTech::BGA,
            Amps::from_kiloamps(1.0),
        )])
        .unwrap();
        assert!(lv.total_loss().value() > hv.total_loss().value());
    }
}
