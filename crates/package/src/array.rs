//! Via-array allocation: how many vias a current needs, how much of the
//! platform that occupies, and what it costs electrically.

use crate::{InterconnectTech, PackageError};
use vpd_units::{Amps, Ohms, SquareMeters, Volts, Watts};

/// An allocation of vias at one packaging level for one current.
///
/// Both the power and the ground return path are allocated (the paper's
/// "both power and ground distribution networks are considered").
///
/// ```
/// use vpd_package::{InterconnectTech, ViaAllocation};
/// use vpd_units::Amps;
///
/// # fn main() -> Result<(), vpd_package::PackageError> {
/// // The paper's vertical architectures bring 1 kA through the Cu pads:
/// // 20% of the 500 mm² die's pad sites.
/// let alloc = ViaAllocation::for_current(
///     InterconnectTech::CU_PAD,
///     Amps::from_kiloamps(1.0),
///     InterconnectTech::CU_PAD.default_platform_area,
/// )?;
/// assert!((alloc.utilization() - 0.20).abs() < 0.005);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ViaAllocation {
    tech: InterconnectTech,
    current: Amps,
    power_vias: usize,
    total_sites: usize,
}

impl ViaAllocation {
    /// Allocates vias for `current` through `tech` on `platform`.
    ///
    /// The electromigration limit of the material sets the per-via
    /// current; the power-site cap of the technology bounds how much of
    /// the platform power may occupy.
    ///
    /// # Errors
    ///
    /// * [`PackageError::InvalidCurrent`] for a non-positive current.
    /// * [`PackageError::InsufficientSites`] when the platform (after
    ///   the cap) cannot host the required vias.
    pub fn for_current(
        tech: InterconnectTech,
        current: Amps,
        platform: SquareMeters,
    ) -> Result<Self, PackageError> {
        if !(current.value().is_finite() && current.value() > 0.0) {
            return Err(PackageError::InvalidCurrent {
                value: current.value(),
            });
        }
        let per_via = tech.max_current_per_via();
        let power_vias = (current.value() / per_via.value()).ceil() as usize;
        let total_sites = tech.sites_in(platform);
        let permitted = (total_sites as f64 * tech.power_site_cap) as usize;
        let needed = power_vias * 2; // power + ground
        if needed > permitted {
            return Err(PackageError::InsufficientSites {
                tech: tech.name,
                needed,
                available: permitted,
            });
        }
        Ok(Self {
            tech,
            current,
            power_vias,
            total_sites,
        })
    }

    /// The technology allocated.
    #[must_use]
    pub fn tech(&self) -> InterconnectTech {
        self.tech
    }

    /// Vias carrying supply current (the ground return uses as many
    /// again).
    #[must_use]
    pub fn power_vias(&self) -> usize {
        self.power_vias
    }

    /// Power + ground vias combined.
    #[must_use]
    pub fn total_vias(&self) -> usize {
        self.power_vias * 2
    }

    /// Fraction of all platform sites occupied by power + ground.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.total_vias() as f64 / self.total_sites as f64
    }

    /// Effective resistance of the level: the per-via resistance in
    /// parallel across the power vias, doubled for the ground return.
    #[must_use]
    pub fn effective_resistance(&self) -> Ohms {
        self.tech.via_resistance().parallel_of(self.power_vias) * 2.0
    }

    /// Current per power via.
    #[must_use]
    pub fn current_per_via(&self) -> Amps {
        self.current / self.power_vias as f64
    }

    /// Voltage drop across the level (power + ground return).
    #[must_use]
    pub fn voltage_drop(&self) -> Volts {
        self.current * self.effective_resistance()
    }

    /// Power dissipated in the level at the allocated current.
    #[must_use]
    pub fn loss(&self) -> Watts {
        self.current.dissipation_in(self.effective_resistance())
    }
}

/// The platform area a technology needs to carry `current` under its
/// power-site cap — the paper's reference-architecture die-size solve.
///
/// # Errors
///
/// Returns [`PackageError::InvalidCurrent`] for a non-positive current.
pub fn required_platform_area(
    tech: InterconnectTech,
    current: Amps,
) -> Result<SquareMeters, PackageError> {
    if !(current.value().is_finite() && current.value() > 0.0) {
        return Err(PackageError::InvalidCurrent {
            value: current.value(),
        });
    }
    let per_via = tech.max_current_per_via();
    let power_vias = (current.value() / per_via.value()).ceil();
    // Round the site count up and add a one-site guard so the returned
    // platform always floors back to at least the needed count.
    let sites_needed = (power_vias * 2.0 / tech.power_site_cap).ceil() + 1.0;
    Ok(SquareMeters::new(
        sites_needed * tech.pitch.value() * tech.pitch.value(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The paper's §IV utilization claims at the 48 V / 1 kA operating
    /// point (lateral current 1000/48 ≈ 20.8 A above conversion; full
    /// 1 kA below).
    #[test]
    fn paper_utilization_claims_reproduce() {
        let i_hv = Amps::new(1000.0 / 48.0);
        let i_pol = Amps::from_kiloamps(1.0);

        let bga = ViaAllocation::for_current(
            InterconnectTech::BGA,
            i_hv,
            InterconnectTech::BGA.default_platform_area,
        )
        .unwrap();
        assert!((bga.utilization() - 0.012).abs() < 0.005, "~1% of BGAs");

        let c4 = ViaAllocation::for_current(
            InterconnectTech::C4,
            i_hv,
            InterconnectTech::C4.default_platform_area,
        )
        .unwrap();
        assert!((c4.utilization() - 0.018).abs() < 0.005, "~2% of C4s");

        let tsv = ViaAllocation::for_current(
            InterconnectTech::TSV,
            i_pol,
            InterconnectTech::TSV.default_platform_area,
        )
        .unwrap();
        assert!((tsv.utilization() - 0.104).abs() < 0.01, "~10% of TSVs");

        let pad = ViaAllocation::for_current(
            InterconnectTech::CU_PAD,
            i_pol,
            InterconnectTech::CU_PAD.default_platform_area,
        )
        .unwrap();
        assert!(pad.utilization() <= 0.20 + 1e-6, "<20% of Cu pads");
    }

    /// The reference architecture needs a ~1,200 mm² die to sink 1 kA
    /// through C4-class bumps at the 85% cap (paper §IV).
    #[test]
    fn reference_die_size_claim_reproduces() {
        let area = required_platform_area(InterconnectTech::C4, Amps::from_kiloamps(1.0)).unwrap();
        let mm2 = area.as_square_millimeters();
        assert!(
            (mm2 - 1200.0).abs() < 30.0,
            "expected ~1200 mm², got {mm2:.0}"
        );
    }

    /// µ-bumps alone cannot carry 1 kA on a 500 mm² die — the reason the
    /// paper's vertical architectures lean on Cu–Cu pads.
    #[test]
    fn micro_bumps_alone_cannot_carry_pol_current() {
        let err = ViaAllocation::for_current(
            InterconnectTech::MICRO_BUMP,
            Amps::from_kiloamps(1.0),
            InterconnectTech::MICRO_BUMP.default_platform_area,
        )
        .unwrap_err();
        assert!(matches!(err, PackageError::InsufficientSites { .. }));
    }

    #[test]
    fn vertical_losses_are_negligible_at_pol() {
        // 1 kA through the allocated Cu pads: well under 1 W.
        let pad = ViaAllocation::for_current(
            InterconnectTech::CU_PAD,
            Amps::from_kiloamps(1.0),
            InterconnectTech::CU_PAD.default_platform_area,
        )
        .unwrap();
        assert!(pad.loss().value() < 0.1);
        // And through TSVs: also small.
        let tsv = ViaAllocation::for_current(
            InterconnectTech::TSV,
            Amps::from_kiloamps(1.0),
            InterconnectTech::TSV.default_platform_area,
        )
        .unwrap();
        assert!(tsv.loss().value() < 0.2);
    }

    #[test]
    fn rejects_bad_current() {
        for bad in [0.0, -5.0, f64::NAN] {
            assert!(ViaAllocation::for_current(
                InterconnectTech::BGA,
                Amps::new(bad),
                InterconnectTech::BGA.default_platform_area,
            )
            .is_err());
            assert!(required_platform_area(InterconnectTech::BGA, Amps::new(bad)).is_err());
        }
    }

    #[test]
    fn effective_resistance_includes_ground_return() {
        let alloc = ViaAllocation::for_current(
            InterconnectTech::BGA,
            Amps::new(1.0),
            InterconnectTech::BGA.default_platform_area,
        )
        .unwrap();
        // 1 A needs exactly one power BGA; R_eff = 2 × R_via.
        assert_eq!(alloc.power_vias(), 1);
        assert!(
            (alloc.effective_resistance().value()
                - 2.0 * InterconnectTech::BGA.via_resistance().value())
            .abs()
                < 1e-12
        );
    }

    proptest! {
        /// More current never decreases utilization or loss; per-via
        /// current never exceeds the EM limit.
        #[test]
        fn prop_allocation_monotone(i1 in 0.5_f64..400.0, i2 in 0.5_f64..400.0) {
            let (lo, hi) = if i1 <= i2 { (i1, i2) } else { (i2, i1) };
            let platform = InterconnectTech::C4.default_platform_area;
            let a_lo = ViaAllocation::for_current(
                InterconnectTech::C4, Amps::new(lo), platform).unwrap();
            let a_hi = ViaAllocation::for_current(
                InterconnectTech::C4, Amps::new(hi), platform).unwrap();
            prop_assert!(a_hi.utilization() >= a_lo.utilization());
            prop_assert!(a_hi.loss().value() >= a_lo.loss().value() - 1e-12);
            let limit = InterconnectTech::C4.max_current_per_via().value();
            prop_assert!(a_lo.current_per_via().value() <= limit + 1e-12);
            prop_assert!(a_hi.current_per_via().value() <= limit + 1e-12);
        }

        /// The allocation always respects the platform cap when it
        /// succeeds.
        #[test]
        fn prop_cap_respected(i in 1.0_f64..2000.0) {
            let tech = InterconnectTech::CU_PAD;
            if let Ok(alloc) = ViaAllocation::for_current(
                tech, Amps::new(i), tech.default_platform_area) {
                prop_assert!(alloc.utilization() <= tech.power_site_cap + 1e-9);
            }
        }
    }
}
