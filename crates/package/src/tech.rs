//! Vertical-interconnect technologies: Table I of the paper, as typed
//! constants, plus the derived per-via quantities.

use vpd_units::{Amps, CurrentDensity, Meters, Ohms, Resistivity, SquareMeters};

use crate::error::PackageError;

/// Conductor material of a via, with its resistivity and
/// electromigration (EM) current-density limit.
///
/// The EM limits are the crate's calibration for the paper's utilization
/// claims (§IV): solder interconnect is limited to ~1×10³ A/cm² and
/// copper to ~8×10³ A/cm², consistent with packaging-reliability
/// literature. With exactly these two limits, the paper's "1% of BGAs,
/// 2% of C4s, 10% of TSVs, <20% of Cu pads" and the 1,200 mm² reference
/// die all reproduce (see `vpd-bench --bin claims`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum ViaMaterial {
    /// SAC-class solder (BGA balls, C4 bumps, µ-bumps).
    Solder,
    /// Copper (TSVs, Cu–Cu direct-bond pads).
    Copper,
}

impl ViaMaterial {
    /// Bulk resistivity.
    #[must_use]
    pub const fn resistivity(self) -> Resistivity {
        match self {
            Self::Solder => Resistivity::SOLDER,
            Self::Copper => Resistivity::COPPER,
        }
    }

    /// Electromigration current-density limit.
    #[must_use]
    pub const fn em_limit(self) -> CurrentDensity {
        match self {
            // 1×10³ A/cm² = 10 A/mm²
            Self::Solder => CurrentDensity::from_amps_per_square_millimeter(10.0),
            // 8×10³ A/cm² = 80 A/mm²
            Self::Copper => CurrentDensity::from_amps_per_square_millimeter(80.0),
        }
    }
}

impl std::fmt::Display for ViaMaterial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Solder => write!(f, "solder"),
            Self::Copper => write!(f, "Cu"),
        }
    }
}

/// One vertical-interconnect technology — a row of the paper's Table I.
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct InterconnectTech {
    /// Short name (`"BGA"`, `"C4"`, ...).
    pub name: &'static str,
    /// Packaging level this technology connects.
    pub packaging_level: &'static str,
    /// Conductor material.
    pub material: ViaMaterial,
    /// Ball/bump/via diameter, if circular (Cu pads are quoted by area
    /// only in Table I).
    pub diameter: Option<Meters>,
    /// Conducting cross-sectional area per via.
    pub cross_section: SquareMeters,
    /// Via height (current path length).
    pub height: Meters,
    /// Array pitch.
    pub pitch: Meters,
    /// Platform area available at this level in the paper's reference
    /// system.
    pub default_platform_area: SquareMeters,
    /// Fraction of sites that power delivery may occupy (the paper caps
    /// BGAs at 60% and C4s at 85%; other levels are uncapped).
    pub power_site_cap: f64,
}

impl InterconnectTech {
    /// Table I row 1: solder ball-grid array at the PCB/package boundary.
    pub const BGA: Self = Self {
        name: "BGA",
        packaging_level: "PCB/PKG",
        material: ViaMaterial::Solder,
        diameter: Some(Meters::from_micrometers(400.0)),
        cross_section: SquareMeters::from_square_micrometers(125_664.0),
        height: Meters::from_micrometers(300.0),
        pitch: Meters::from_micrometers(800.0),
        default_platform_area: SquareMeters::from_square_millimeters(1800.0),
        power_site_cap: 0.60,
    };

    /// Table I row 2: C4 solder bumps at the package/interposer boundary.
    pub const C4: Self = Self {
        name: "C4",
        packaging_level: "PKG/Interposer",
        material: ViaMaterial::Solder,
        diameter: Some(Meters::from_micrometers(100.0)),
        cross_section: SquareMeters::from_square_micrometers(7854.0),
        height: Meters::from_micrometers(70.0),
        pitch: Meters::from_micrometers(200.0),
        default_platform_area: SquareMeters::from_square_millimeters(1200.0),
        power_site_cap: 0.85,
    };

    /// Table I row 3: copper through-silicon vias through the interposer.
    pub const TSV: Self = Self {
        name: "TSV",
        packaging_level: "Through-Interposer",
        material: ViaMaterial::Copper,
        diameter: Some(Meters::from_micrometers(5.0)),
        cross_section: SquareMeters::from_square_micrometers(20.0),
        height: Meters::from_micrometers(50.0),
        pitch: Meters::from_micrometers(10.0),
        default_platform_area: SquareMeters::from_square_millimeters(1200.0),
        power_site_cap: 1.0,
    };

    /// Table I row 4: solder µ-bumps at the interposer/die boundary.
    pub const MICRO_BUMP: Self = Self {
        name: "µ-bump",
        packaging_level: "Interposer/Die",
        material: ViaMaterial::Solder,
        diameter: Some(Meters::from_micrometers(30.0)),
        cross_section: SquareMeters::from_square_micrometers(707.0),
        height: Meters::from_micrometers(25.0),
        pitch: Meters::from_micrometers(60.0),
        default_platform_area: SquareMeters::from_square_millimeters(500.0),
        power_site_cap: 1.0,
    };

    /// Table I row 5: advanced Cu–Cu direct-bond pads at the
    /// interposer/die boundary.
    pub const CU_PAD: Self = Self {
        name: "Cu pad",
        packaging_level: "Interposer/Die",
        material: ViaMaterial::Copper,
        diameter: None,
        cross_section: SquareMeters::from_square_micrometers(100.0),
        height: Meters::from_micrometers(10.0),
        pitch: Meters::from_micrometers(20.0),
        default_platform_area: SquareMeters::from_square_millimeters(500.0),
        power_site_cap: 1.0,
    };

    /// All five Table I technologies, top of the stack first.
    #[must_use]
    pub const fn table_i() -> [Self; 5] {
        [
            Self::BGA,
            Self::C4,
            Self::TSV,
            Self::MICRO_BUMP,
            Self::CU_PAD,
        ]
    }

    /// Single-via resistance `ρ·h/A`.
    #[must_use]
    pub fn via_resistance(&self) -> Ohms {
        self.material
            .resistivity()
            .wire_resistance(self.height, self.cross_section)
    }

    /// Electromigration-limited maximum current per via.
    #[must_use]
    pub fn max_current_per_via(&self) -> Amps {
        self.material.em_limit() * self.cross_section
    }

    /// Number of array sites available in `platform` at this pitch.
    ///
    /// A non-positive or non-finite `platform` silently yields 0 sites
    /// here (the `as usize` clamp); validating callers such as the
    /// scenario compiler should prefer [`Self::checked_sites_in`],
    /// which surfaces the rejected field by name instead.
    #[must_use]
    pub fn sites_in(&self, platform: SquareMeters) -> usize {
        (platform.value() / (self.pitch.value() * self.pitch.value())) as usize
    }

    /// Like [`Self::sites_in`], but rejects a non-positive or
    /// non-finite platform area (which the raw cast would silently
    /// clamp to 0 sites) with a typed error naming the field.
    pub fn checked_sites_in(&self, platform: SquareMeters) -> Result<usize, PackageError> {
        if !(platform.value().is_finite() && platform.value() > 0.0) {
            return Err(PackageError::InvalidGeometry {
                tech: self.name,
                field: "platform area",
                value: platform.value(),
            });
        }
        Ok(self.sites_in(platform))
    }

    /// Validates the technology's geometry, returning `self` on
    /// success. Every field that feeds a division or an `as usize`
    /// cast (pitch, height, cross-section, platform area, site cap) is
    /// checked so user-supplied technology tables fail loudly, with
    /// the offending field named, instead of yielding 0-site stacks or
    /// infinite via resistances downstream.
    pub fn validated(self) -> Result<Self, PackageError> {
        let geometry = |field: &'static str, value: f64| PackageError::InvalidGeometry {
            tech: self.name,
            field,
            value,
        };
        let positive = |field: &'static str, value: f64| {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(geometry(field, value))
            }
        };
        positive("pitch", self.pitch.value())?;
        positive("height", self.height.value())?;
        positive("cross-section", self.cross_section.value())?;
        positive("platform area", self.default_platform_area.value())?;
        if let Some(d) = self.diameter {
            positive("diameter", d.value())?;
        }
        if !(self.power_site_cap.is_finite()
            && self.power_site_cap > 0.0
            && self.power_site_cap <= 1.0)
        {
            return Err(PackageError::InvalidCap {
                value: self.power_site_cap,
            });
        }
        Ok(self)
    }

    /// Number of sites in the technology's default platform.
    #[must_use]
    pub fn default_sites(&self) -> usize {
        self.sites_in(self.default_platform_area)
    }
}

impl std::fmt::Display for InterconnectTech {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.name, self.packaging_level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I derived values, checked against hand calculations.
    #[test]
    fn via_resistances_match_hand_calcs() {
        assert!((InterconnectTech::BGA.via_resistance().as_milliohms() - 0.310).abs() < 0.01);
        assert!((InterconnectTech::C4.via_resistance().as_milliohms() - 1.159).abs() < 0.01);
        assert!((InterconnectTech::TSV.via_resistance().as_milliohms() - 42.0).abs() < 0.1);
        assert!((InterconnectTech::MICRO_BUMP.via_resistance().as_milliohms() - 4.60).abs() < 0.03);
        assert!((InterconnectTech::CU_PAD.via_resistance().as_milliohms() - 1.68).abs() < 0.01);
    }

    #[test]
    fn site_counts_match_platform_over_pitch_squared() {
        assert_eq!(InterconnectTech::BGA.default_sites(), 2812);
        assert_eq!(InterconnectTech::C4.default_sites(), 30_000);
        assert_eq!(InterconnectTech::TSV.default_sites(), 12_000_000);
        assert_eq!(InterconnectTech::MICRO_BUMP.default_sites(), 138_888);
        assert_eq!(InterconnectTech::CU_PAD.default_sites(), 1_250_000);
    }

    #[test]
    fn em_limited_currents() {
        // Solder: 10 A/mm²; BGA cross-section 0.1257 mm² → ~1.26 A.
        let bga = InterconnectTech::BGA.max_current_per_via();
        assert!((bga.value() - 1.257).abs() < 0.01);
        // Cu pad: 80 A/mm² × 1e-4 mm² → 8 mA.
        let pad = InterconnectTech::CU_PAD.max_current_per_via();
        assert!((pad.value() - 8e-3).abs() < 1e-5);
        // TSV: 80 A/mm² × 2e-5 mm² → 1.6 mA.
        let tsv = InterconnectTech::TSV.max_current_per_via();
        assert!((tsv.value() - 1.6e-3).abs() < 1e-6);
    }

    #[test]
    fn table_i_is_ordered_top_down() {
        let levels: Vec<&str> = InterconnectTech::table_i()
            .iter()
            .map(|t| t.packaging_level)
            .collect();
        assert_eq!(
            levels,
            [
                "PCB/PKG",
                "PKG/Interposer",
                "Through-Interposer",
                "Interposer/Die",
                "Interposer/Die"
            ]
        );
    }

    #[test]
    fn caps_match_paper() {
        assert_eq!(InterconnectTech::BGA.power_site_cap, 0.60);
        assert_eq!(InterconnectTech::C4.power_site_cap, 0.85);
        assert_eq!(InterconnectTech::TSV.power_site_cap, 1.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(InterconnectTech::BGA.to_string(), "BGA (PCB/PKG)");
        assert_eq!(ViaMaterial::Copper.to_string(), "Cu");
    }
}
