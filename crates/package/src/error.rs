//! Packaging-level error type.

use std::fmt;

/// Errors from via allocation and stack construction.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum PackageError {
    /// The platform does not hold enough sites (after the power-site
    /// cap) to carry the requested current.
    InsufficientSites {
        /// Technology name.
        tech: &'static str,
        /// Sites needed (power + ground).
        needed: usize,
        /// Sites permitted by the platform and cap.
        available: usize,
    },
    /// A requested current was non-positive or non-finite.
    InvalidCurrent {
        /// The rejected value in amperes.
        value: f64,
    },
    /// A utilization cap lay outside `(0, 1]`.
    InvalidCap {
        /// The rejected cap.
        value: f64,
    },
    /// A geometric parameter (pitch, height, cross-section, platform
    /// area, ...) was non-positive or non-finite.
    InvalidGeometry {
        /// Technology name the parameter belongs to.
        tech: &'static str,
        /// Which field was rejected.
        field: &'static str,
        /// The rejected value in SI base units.
        value: f64,
    },
}

impl fmt::Display for PackageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InsufficientSites {
                tech,
                needed,
                available,
            } => write!(
                f,
                "{tech} platform exhausted: {needed} sites needed, {available} available"
            ),
            Self::InvalidCurrent { value } => {
                write!(f, "current must be positive and finite, got {value}")
            }
            Self::InvalidCap { value } => {
                write!(f, "utilization cap must be in (0, 1], got {value}")
            }
            Self::InvalidGeometry { tech, field, value } => {
                write!(
                    f,
                    "{tech}: {field} must be positive and finite, got {value}"
                )
            }
        }
    }
}

impl std::error::Error for PackageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = PackageError::InsufficientSites {
            tech: "µ-bump",
            needed: 285_000,
            available: 138_888,
        };
        assert!(e.to_string().contains("285000"));
        assert!(PackageError::InvalidCurrent { value: -1.0 }
            .to_string()
            .contains("-1"));
    }
}
