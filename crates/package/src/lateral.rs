//! Lateral ("horizontal") interconnect models.
//!
//! The paper's loss breakdown treats the lateral PCB/package routing as
//! a lumped resistance; this module provides the standard derivations
//! behind such lumps — copper-trace resistance, radial plane spreading,
//! and multi-layer paralleling — and a representative board model that
//! grounds the calibrated `horizontal_pol_resistance` (280 µΩ) in real
//! copper geometry.

use vpd_units::{Meters, Ohms, Resistivity};

/// Resistance of a rectangular trace: `ρ·L/(w·t)`.
///
/// ```
/// use vpd_package::trace_resistance;
/// use vpd_units::{Meters, Ohms, Resistivity};
///
/// // 30 mm of 2-oz copper (70 µm), 10 mm wide: ~0.72 mΩ.
/// let r = trace_resistance(
///     Resistivity::COPPER,
///     Meters::from_millimeters(30.0),
///     Meters::from_millimeters(10.0),
///     Meters::from_micrometers(70.0),
/// );
/// assert!((r.as_milliohms() - 0.72).abs() < 0.01);
/// ```
#[must_use]
pub fn trace_resistance(
    resistivity: Resistivity,
    length: Meters,
    width: Meters,
    thickness: Meters,
) -> Ohms {
    Ohms::new(resistivity.value() * length.value() / (width.value() * thickness.value()))
}

/// Radial spreading resistance of a plane from an inner contact radius
/// to an outer collection radius: `ρ/(2π·t) · ln(r_outer/r_inner)`.
///
/// This is the classical disk-spreading result used for power planes
/// feeding a package from a via field.
///
/// # Panics
///
/// Panics if `r_outer <= r_inner` or either radius is non-positive —
/// a geometry error, not a recoverable condition.
#[must_use]
pub fn plane_spreading_resistance(
    resistivity: Resistivity,
    thickness: Meters,
    r_inner: Meters,
    r_outer: Meters,
) -> Ohms {
    assert!(
        r_inner.value() > 0.0 && r_outer.value() > r_inner.value(),
        "spreading geometry requires 0 < r_inner < r_outer"
    );
    let sheet = resistivity.value() / thickness.value();
    Ohms::new(sheet / (2.0 * std::f64::consts::PI) * (r_outer.value() / r_inner.value()).ln())
}

/// A representative lateral power path on a server board: `layers`
/// paralleled planes of `thickness` copper, spreading from the
/// converter's via field (`r_inner`) out to the package footprint
/// (`r_outer`), plus an escape-trace section.
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct BoardLateralModel {
    /// Paralleled copper planes dedicated to this rail.
    pub layers: usize,
    /// Per-plane copper thickness.
    pub plane_thickness: Meters,
    /// Effective inner (source via-field) radius.
    pub r_inner: Meters,
    /// Effective outer (package footprint) radius.
    pub r_outer: Meters,
}

impl BoardLateralModel {
    /// A representative A0-class board: the 1 V rail of a kilowatt
    /// accelerator on two dedicated 1-oz planes (dense boards rarely
    /// spare more copper for one rail), converter bank via field ~5 mm
    /// across, package footprint ~50 mm away.
    #[must_use]
    pub fn representative_a0() -> Self {
        Self {
            layers: 2,
            plane_thickness: Meters::from_micrometers(35.0),
            r_inner: Meters::from_millimeters(5.0),
            r_outer: Meters::from_millimeters(50.0),
        }
    }

    /// Total lateral resistance: per-plane spreading, paralleled across
    /// the layers, doubled for the ground return.
    ///
    /// # Panics
    ///
    /// Panics for degenerate geometry (see
    /// [`plane_spreading_resistance`]) or zero layers.
    #[must_use]
    pub fn resistance(&self) -> Ohms {
        assert!(self.layers > 0, "at least one plane required");
        let per_plane = plane_spreading_resistance(
            Resistivity::COPPER,
            self.plane_thickness,
            self.r_inner,
            self.r_outer,
        );
        per_plane.parallel_of(self.layers) * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_board_grounds_the_calibration() {
        // The DESIGN.md §6 calibration uses 280 µΩ for the A0 lateral
        // path; the physical derivation must land in the same decade.
        let r = BoardLateralModel::representative_a0().resistance();
        let uohm = r.value() * 1e6;
        assert!(
            (90.0..900.0).contains(&uohm),
            "physical model {uohm:.0} µΩ vs calibrated 280 µΩ"
        );
    }

    #[test]
    fn spreading_grows_logarithmically() {
        let t = Meters::from_micrometers(70.0);
        let r1 = plane_spreading_resistance(
            Resistivity::COPPER,
            t,
            Meters::from_millimeters(10.0),
            Meters::from_millimeters(20.0),
        );
        let r2 = plane_spreading_resistance(
            Resistivity::COPPER,
            t,
            Meters::from_millimeters(10.0),
            Meters::from_millimeters(40.0),
        );
        // ln(4)/ln(2) = 2.
        assert!((r2.value() / r1.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn more_layers_less_resistance() {
        let mut model = BoardLateralModel::representative_a0();
        let two = model.resistance();
        model.layers = 4;
        let four = model.resistance();
        assert!((two.value() / four.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "spreading geometry")]
    fn degenerate_radii_panic() {
        let _ = plane_spreading_resistance(
            Resistivity::COPPER,
            Meters::from_micrometers(70.0),
            Meters::from_millimeters(20.0),
            Meters::from_millimeters(10.0),
        );
    }

    #[test]
    fn trace_formula() {
        // ρ·L/(w·t), doubled length doubles R.
        let r1 = trace_resistance(
            Resistivity::COPPER,
            Meters::from_millimeters(10.0),
            Meters::from_millimeters(5.0),
            Meters::from_micrometers(35.0),
        );
        let r2 = trace_resistance(
            Resistivity::COPPER,
            Meters::from_millimeters(20.0),
            Meters::from_millimeters(5.0),
            Meters::from_micrometers(35.0),
        );
        assert!((r2.value() / r1.value() - 2.0).abs() < 1e-12);
    }
}
