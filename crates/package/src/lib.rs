//! Packaging interconnect models: Table I of the paper as typed data,
//! electromigration-limited via allocation, and vertical level stacks.
//!
//! The paper's §II sizes the vertical power path from the Table I
//! technology characteristics; this crate reproduces every derived
//! number — per-via resistance (`ρ·h/A`), array site counts
//! (`platform/pitch²`), EM-limited per-via currents, utilization
//! percentages, and the reference architecture's 1,200 mm² die-size
//! requirement.
//!
//! ```
//! use vpd_package::InterconnectTech;
//!
//! // One TSV from Table I: 42 mΩ of copper.
//! let r = InterconnectTech::TSV.via_resistance();
//! assert!((r.as_milliohms() - 42.0).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod error;
mod lateral;
mod stack;
mod tech;

pub use array::{required_platform_area, ViaAllocation};
pub use error::PackageError;
pub use lateral::{plane_spreading_resistance, trace_resistance, BoardLateralModel};
pub use stack::{LevelSpec, VerticalPath};
pub use tech::{InterconnectTech, ViaMaterial};
