//! Concrete converter instances: the Table II designs, the multi-stage
//! variants of §II, and the PCB reference converter.

use crate::{
    ConverterError, CurveAnchors, EfficiencyCurve, TopologyCharacteristics, VrTopologyKind,
};
use vpd_units::{Amps, Efficiency, SquareMeters, Volts, Watts};

/// A converter instance: a conversion pair, a fitted efficiency curve,
/// and a footprint.
///
/// ```
/// use vpd_converters::Converter;
/// use vpd_units::Amps;
///
/// # fn main() -> Result<(), vpd_converters::ConverterError> {
/// let dsch = Converter::dsch_48v_to_1v();
/// let eta = dsch.efficiency(Amps::new(10.0))?;
/// assert!((eta.percent() - 91.5).abs() < 0.01); // Table II peak point
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct Converter {
    name: String,
    v_in: Volts,
    v_out: Volts,
    curve: EfficiencyCurve,
    module_area: SquareMeters,
    characteristics: Option<TopologyCharacteristics>,
}

impl Converter {
    fn from_anchors(
        name: &str,
        v_in: Volts,
        anchors: CurveAnchors,
        module_area: SquareMeters,
        characteristics: Option<TopologyCharacteristics>,
    ) -> Self {
        let curve = EfficiencyCurve::fit(anchors).expect("calibrated anchors are consistent");
        Self {
            name: name.to_owned(),
            v_in,
            v_out: anchors.v_out,
            curve,
            module_area,
            characteristics,
        }
    }

    fn eff(pct: f64) -> Efficiency {
        Efficiency::from_percent(pct).expect("calibration percentage valid")
    }

    /// DPMIH 48 V→1 V per Table II / \[9\]: 90.0% peak at 30 A, 100 A max
    /// (86% full-load estimate from the published curve shape).
    #[must_use]
    pub fn dpmih_48v_to_1v() -> Self {
        let ch = TopologyCharacteristics::table_ii(VrTopologyKind::Dpmih);
        Self::from_anchors(
            "DPMIH 48V-1V",
            Volts::new(48.0),
            CurveAnchors {
                v_out: Volts::new(1.0),
                i_peak: ch.current_at_peak,
                eta_peak: ch.peak_efficiency,
                i_max: ch.max_load,
                eta_max: Self::eff(86.0),
            },
            ch.module_area(),
            Some(ch),
        )
    }

    /// DSCH 48 V→1 V per Table II / \[8\]: 91.5% peak at 10 A, 30 A max
    /// (88% full-load estimate).
    #[must_use]
    pub fn dsch_48v_to_1v() -> Self {
        let ch = TopologyCharacteristics::table_ii(VrTopologyKind::Dsch);
        Self::from_anchors(
            "DSCH 48V-1V",
            Volts::new(48.0),
            CurveAnchors {
                v_out: Volts::new(1.0),
                i_peak: ch.current_at_peak,
                eta_peak: ch.peak_efficiency,
                i_max: ch.max_load,
                eta_max: Self::eff(88.0),
            },
            ch.module_area(),
            Some(ch),
        )
    }

    /// 3LHD 48 V→1 V per Table II / \[10\]: 90.4% peak at 3 A, 12 A max
    /// (85% full-load estimate).
    #[must_use]
    pub fn three_level_hybrid_dickson_48v_to_1v() -> Self {
        let ch = TopologyCharacteristics::table_ii(VrTopologyKind::ThreeLevelHybridDickson);
        Self::from_anchors(
            "3LHD 48V-1V",
            Volts::new(48.0),
            CurveAnchors {
                v_out: Volts::new(1.0),
                i_peak: ch.current_at_peak,
                eta_peak: ch.peak_efficiency,
                i_max: ch.max_load,
                eta_max: Self::eff(85.0),
            },
            ch.module_area(),
            Some(ch),
        )
    }

    /// First-stage DPMIH for the multi-stage architectures: 48 V to an
    /// intermediate bus of 12 V or 6 V. Lower conversion ratios run the
    /// same topology considerably more efficiently (§III); the anchors
    /// are the crate's documented calibration.
    ///
    /// # Errors
    ///
    /// Returns [`ConverterError::StageMismatch`] for a bus other than
    /// 12 V or 6 V (the two configurations the paper evaluates).
    pub fn dpmih_first_stage(bus: Volts) -> Result<Self, ConverterError> {
        let ch = TopologyCharacteristics::table_ii(VrTopologyKind::Dpmih);
        let (eta_peak, eta_max) = if (bus.value() - 12.0).abs() < 1e-9 {
            (96.5, 95.2)
        } else if (bus.value() - 6.0).abs() < 1e-9 {
            (95.5, 94.0)
        } else {
            return Err(ConverterError::StageMismatch {
                upstream_out: bus.value(),
                downstream_in: 12.0,
            });
        };
        Ok(Self::from_anchors(
            &format!("DPMIH 48V-{}V", bus.value()),
            Volts::new(48.0),
            CurveAnchors {
                v_out: bus,
                i_peak: Amps::new(40.0),
                eta_peak: Self::eff(eta_peak),
                i_max: ch.max_load,
                eta_max: Self::eff(eta_max),
            },
            ch.module_area(),
            Some(ch),
        ))
    }

    /// Second-stage DSCH for the multi-stage architectures: 12 V or 6 V
    /// down to 1 V, integrated below the functional die (§II). DSCH "is
    /// more suitable for lower conversion ratios such as 12V-to-1V or
    /// 6V-to-1V" (§III); anchors calibrated accordingly.
    ///
    /// # Errors
    ///
    /// Returns [`ConverterError::StageMismatch`] for an input other than
    /// 12 V or 6 V.
    pub fn dsch_second_stage(bus: Volts) -> Result<Self, ConverterError> {
        let ch = TopologyCharacteristics::table_ii(VrTopologyKind::Dsch);
        let (eta_peak, eta_max) = if (bus.value() - 12.0).abs() < 1e-9 {
            (93.0, 90.0)
        } else if (bus.value() - 6.0).abs() < 1e-9 {
            (94.0, 91.5)
        } else {
            return Err(ConverterError::StageMismatch {
                upstream_out: 48.0,
                downstream_in: bus.value(),
            });
        };
        Ok(Self::from_anchors(
            &format!("DSCH {}V-1V", bus.value()),
            bus,
            CurveAnchors {
                v_out: Volts::new(1.0),
                i_peak: ch.current_at_peak,
                eta_peak: Self::eff(eta_peak),
                i_max: ch.max_load,
                eta_max: Self::eff(eta_max),
            },
            ch.module_area(),
            Some(ch),
        ))
    }

    /// First-stage DPMIH for an *arbitrary* intermediate bus in
    /// `(1 V, 48 V)`, interpolating the 12 V / 6 V calibration anchors
    /// linearly in `log₂` of the conversion ratio. Exists for the
    /// bus-voltage ablation sweep; at 12 V and 6 V it matches
    /// [`Converter::dpmih_first_stage`] exactly.
    ///
    /// # Errors
    ///
    /// Returns [`ConverterError::StageMismatch`] for a bus outside
    /// `(1, 48)` V, or [`ConverterError::BadCalibration`] when the
    /// extrapolated anchors become inconsistent.
    pub fn dpmih_first_stage_for_ratio(bus: Volts) -> Result<Self, ConverterError> {
        if !(bus.value() > 1.0 && bus.value() < 48.0) {
            return Err(ConverterError::StageMismatch {
                upstream_out: bus.value(),
                downstream_in: 12.0,
            });
        }
        let ch = TopologyCharacteristics::table_ii(VrTopologyKind::Dpmih);
        let ratio = (48.0 / bus.value()).log2();
        let eta_peak = (98.5 - 1.0 * ratio).clamp(50.0, 99.0);
        let eta_max = (97.6 - 1.2 * ratio).clamp(50.0, 99.0);
        let curve = EfficiencyCurve::fit(CurveAnchors {
            v_out: bus,
            i_peak: Amps::new(40.0),
            eta_peak: Self::eff(eta_peak),
            i_max: ch.max_load,
            eta_max: Self::eff(eta_max),
        })?;
        Ok(Self {
            name: format!("DPMIH 48V-{:.1}V", bus.value()),
            v_in: Volts::new(48.0),
            v_out: bus,
            curve,
            module_area: ch.module_area(),
            characteristics: Some(ch),
        })
    }

    /// Second-stage DSCH for an arbitrary bus input in `(1 V, 48 V)`,
    /// interpolated like [`Converter::dpmih_first_stage_for_ratio`].
    ///
    /// # Errors
    ///
    /// As for [`Converter::dpmih_first_stage_for_ratio`].
    pub fn dsch_second_stage_for_ratio(bus: Volts) -> Result<Self, ConverterError> {
        if !(bus.value() > 1.0 && bus.value() < 48.0) {
            return Err(ConverterError::StageMismatch {
                upstream_out: 48.0,
                downstream_in: bus.value(),
            });
        }
        let ch = TopologyCharacteristics::table_ii(VrTopologyKind::Dsch);
        let ratio = bus.value().log2();
        let eta_peak = (96.58 - 1.0 * ratio).clamp(50.0, 99.0);
        let eta_max = (95.37 - 1.5 * ratio).clamp(50.0, 99.0);
        let curve = EfficiencyCurve::fit(CurveAnchors {
            v_out: Volts::new(1.0),
            i_peak: ch.current_at_peak,
            eta_peak: Self::eff(eta_peak),
            i_max: ch.max_load,
            eta_max: Self::eff(eta_max),
        })?;
        Ok(Self {
            name: format!("DSCH {:.1}V-1V", bus.value()),
            v_in: bus,
            v_out: Volts::new(1.0),
            curve,
            module_area: ch.module_area(),
            characteristics: Some(ch),
        })
    }

    /// The reference architecture's PCB-level converter: a
    /// transformer-based 48 V→12 V first stage with a multi-phase
    /// synchronous 12 V→1 V buck, modeled at the paper's flat 90%
    /// efficiency with board-scale current capability.
    #[must_use]
    pub fn reference_pcb_48v_to_1v() -> Self {
        // Flat η = 90%: pure linear loss b = v_out·(1/η − 1).
        let v_out = Volts::new(1.0);
        // Board-level converters parallelize freely; 5 kA headroom keeps
        // power sweeps meaningful.
        let curve = EfficiencyCurve::from_coefficients(
            v_out,
            Amps::from_kiloamps(5.0),
            0.0,
            v_out.value() * (1.0 / 0.9 - 1.0),
            0.0,
        )
        .expect("constant-efficiency coefficients valid");
        Self {
            name: "PCB 48V-1V (transformer + multiphase buck)".to_owned(),
            v_in: Volts::new(48.0),
            v_out,
            curve,
            module_area: SquareMeters::from_square_millimeters(2000.0),
            characteristics: None,
        }
    }

    /// Converter display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input voltage.
    #[must_use]
    pub fn v_in(&self) -> Volts {
        self.v_in
    }

    /// Output voltage.
    #[must_use]
    pub fn v_out(&self) -> Volts {
        self.v_out
    }

    /// Conversion ratio `V_in : V_out`.
    #[must_use]
    pub fn conversion_ratio(&self) -> f64 {
        self.v_in / self.v_out
    }

    /// Module footprint.
    #[must_use]
    pub fn module_area(&self) -> SquareMeters {
        self.module_area
    }

    /// Maximum output current per module.
    #[must_use]
    pub fn max_load(&self) -> Amps {
        self.curve.max_load()
    }

    /// Table II characteristics, when this instance is one of the
    /// reviewed topologies.
    #[must_use]
    pub fn characteristics(&self) -> Option<&TopologyCharacteristics> {
        self.characteristics.as_ref()
    }

    /// The fitted efficiency curve.
    #[must_use]
    pub fn curve(&self) -> &EfficiencyCurve {
        &self.curve
    }

    /// Efficiency at an output current.
    ///
    /// # Errors
    ///
    /// Propagates range errors from the curve
    /// ([`ConverterError::OverCurrent`], [`ConverterError::InvalidLoad`]).
    pub fn efficiency(&self, i_out: Amps) -> Result<Efficiency, ConverterError> {
        self.curve.efficiency(i_out).map_err(|e| self.rename(e))
    }

    /// Dissipation at an output current.
    ///
    /// # Errors
    ///
    /// As for [`Converter::efficiency`].
    pub fn loss(&self, i_out: Amps) -> Result<Watts, ConverterError> {
        self.curve.loss(i_out).map_err(|e| self.rename(e))
    }

    /// Input power drawn while delivering `i_out`.
    ///
    /// # Errors
    ///
    /// As for [`Converter::efficiency`].
    pub fn input_power(&self, i_out: Amps) -> Result<Watts, ConverterError> {
        Ok(self.v_out * i_out + self.loss(i_out)?)
    }

    /// Input current drawn while delivering `i_out`.
    ///
    /// # Errors
    ///
    /// As for [`Converter::efficiency`].
    pub fn input_current(&self, i_out: Amps) -> Result<Amps, ConverterError> {
        Ok(self.input_power(i_out)? / self.v_in)
    }

    fn rename(&self, e: ConverterError) -> ConverterError {
        match e {
            ConverterError::OverCurrent { requested, max, .. } => ConverterError::OverCurrent {
                converter: self.name.clone(),
                requested,
                max,
            },
            other => other,
        }
    }
}

/// A chain of converters sharing one current path (per-module view).
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct MultiStageConverter {
    stages: Vec<Converter>,
}

impl MultiStageConverter {
    /// Builds a chain, validating that each stage's output bus feeds the
    /// next stage's input.
    ///
    /// # Errors
    ///
    /// Returns [`ConverterError::StageMismatch`] on a bus-voltage
    /// mismatch, or [`ConverterError::BadCalibration`] for an empty
    /// chain.
    pub fn new(stages: Vec<Converter>) -> Result<Self, ConverterError> {
        if stages.is_empty() {
            return Err(ConverterError::BadCalibration {
                detail: "multi-stage chain needs at least one stage".into(),
            });
        }
        for pair in stages.windows(2) {
            if (pair[0].v_out().value() - pair[1].v_in().value()).abs() > 1e-9 {
                return Err(ConverterError::StageMismatch {
                    upstream_out: pair[0].v_out().value(),
                    downstream_in: pair[1].v_in().value(),
                });
            }
        }
        Ok(Self { stages })
    }

    /// The stages, input side first.
    #[must_use]
    pub fn stages(&self) -> &[Converter] {
        &self.stages
    }

    /// Overall input voltage.
    #[must_use]
    pub fn v_in(&self) -> Volts {
        self.stages[0].v_in()
    }

    /// Overall output voltage.
    #[must_use]
    pub fn v_out(&self) -> Volts {
        self.stages[self.stages.len() - 1].v_out()
    }

    /// Per-stage losses while delivering `i_out` at the final output,
    /// ordered like [`MultiStageConverter::stages`].
    ///
    /// # Errors
    ///
    /// Propagates any stage's range error.
    pub fn stage_losses(&self, i_out: Amps) -> Result<Vec<Watts>, ConverterError> {
        let mut losses = vec![Watts::ZERO; self.stages.len()];
        let mut p_out = self.v_out() * i_out;
        for (k, stage) in self.stages.iter().enumerate().rev() {
            let i_stage = p_out / stage.v_out();
            let loss = stage.loss(i_stage)?;
            losses[k] = loss;
            p_out += loss; // becomes this stage's input power
        }
        Ok(losses)
    }

    /// Total loss delivering `i_out`.
    ///
    /// # Errors
    ///
    /// As for [`MultiStageConverter::stage_losses`].
    pub fn loss(&self, i_out: Amps) -> Result<Watts, ConverterError> {
        Ok(self.stage_losses(i_out)?.into_iter().sum())
    }

    /// End-to-end efficiency delivering `i_out`.
    ///
    /// # Errors
    ///
    /// As for [`MultiStageConverter::stage_losses`].
    pub fn efficiency(&self, i_out: Amps) -> Result<Efficiency, ConverterError> {
        let p_out = (self.v_out() * i_out).value();
        let total = p_out + self.loss(i_out)?.value();
        Efficiency::new(p_out / total).map_err(|e| ConverterError::BadCalibration {
            detail: format!("composed efficiency invalid: {e}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_peak_points_reproduce() {
        let cases = [
            (Converter::dpmih_48v_to_1v(), 30.0, 90.0),
            (Converter::dsch_48v_to_1v(), 10.0, 91.5),
            (Converter::three_level_hybrid_dickson_48v_to_1v(), 3.0, 90.4),
        ];
        for (conv, i_pk, eta_pct) in cases {
            let eta = conv.efficiency(Amps::new(i_pk)).unwrap();
            assert!(
                (eta.percent() - eta_pct).abs() < 0.01,
                "{}: {} != {eta_pct}",
                conv.name(),
                eta
            );
        }
    }

    #[test]
    fn reference_converter_is_flat_90_percent() {
        let a0 = Converter::reference_pcb_48v_to_1v();
        for i in [10.0, 100.0, 1000.0] {
            let eta = a0.efficiency(Amps::new(i)).unwrap();
            assert!((eta.percent() - 90.0).abs() < 1e-6);
        }
    }

    #[test]
    fn over_current_carries_converter_name() {
        let dsch = Converter::dsch_48v_to_1v();
        match dsch.efficiency(Amps::new(31.0)) {
            Err(ConverterError::OverCurrent { converter, .. }) => {
                assert!(converter.contains("DSCH"));
            }
            other => panic!("expected OverCurrent, got {other:?}"),
        }
    }

    #[test]
    fn input_current_respects_conversion_ratio() {
        let dpmih = Converter::dpmih_48v_to_1v();
        let i_in = dpmih.input_current(Amps::new(30.0)).unwrap();
        // 30 W out at 90% → 33.3 W in → 0.694 A at 48 V.
        assert!((i_in.value() - 33.333 / 48.0).abs() < 1e-3);
    }

    #[test]
    fn first_stage_is_more_efficient_than_full_ratio() {
        let full = Converter::dpmih_48v_to_1v();
        let first = Converter::dpmih_first_stage(Volts::new(12.0)).unwrap();
        let eta_full = full.efficiency(Amps::new(30.0)).unwrap();
        let eta_first = first.efficiency(Amps::new(30.0)).unwrap();
        assert!(eta_first.fraction() > eta_full.fraction());
    }

    #[test]
    fn stage_constructors_reject_unknown_buses() {
        assert!(Converter::dpmih_first_stage(Volts::new(9.0)).is_err());
        assert!(Converter::dsch_second_stage(Volts::new(24.0)).is_err());
    }

    #[test]
    fn multi_stage_composes_losses() {
        let chain = MultiStageConverter::new(vec![
            Converter::dpmih_first_stage(Volts::new(12.0)).unwrap(),
            Converter::dsch_second_stage(Volts::new(12.0)).unwrap(),
        ])
        .unwrap();
        let i = Amps::new(20.0);
        let losses = chain.stage_losses(i).unwrap();
        assert_eq!(losses.len(), 2);
        let eta = chain.efficiency(i).unwrap();
        // Composition is below either stage alone.
        let eta2 = chain.stages()[1].efficiency(i).unwrap();
        assert!(eta.fraction() < eta2.fraction());
        // Loss decomposition sums.
        let total = chain.loss(i).unwrap();
        let parts: Watts = losses.into_iter().sum();
        assert!(total.approx_eq(parts, 1e-9));
    }

    #[test]
    fn interpolated_stages_match_fixed_anchors() {
        for bus in [12.0, 6.0] {
            let fixed1 = Converter::dpmih_first_stage(Volts::new(bus)).unwrap();
            let interp1 = Converter::dpmih_first_stage_for_ratio(Volts::new(bus)).unwrap();
            let fixed2 = Converter::dsch_second_stage(Volts::new(bus)).unwrap();
            let interp2 = Converter::dsch_second_stage_for_ratio(Volts::new(bus)).unwrap();
            for i in [5.0, 20.0] {
                let i = Amps::new(i);
                assert!(
                    (fixed1.efficiency(i).unwrap().fraction()
                        - interp1.efficiency(i).unwrap().fraction())
                    .abs()
                        < 2e-3,
                    "first stage at {bus} V"
                );
                assert!(
                    (fixed2.efficiency(i).unwrap().fraction()
                        - interp2.efficiency(i).unwrap().fraction())
                    .abs()
                        < 2e-3,
                    "second stage at {bus} V"
                );
            }
        }
    }

    #[test]
    fn interpolated_stages_reject_out_of_range_buses() {
        assert!(Converter::dpmih_first_stage_for_ratio(Volts::new(48.0)).is_err());
        assert!(Converter::dpmih_first_stage_for_ratio(Volts::new(1.0)).is_err());
        assert!(Converter::dsch_second_stage_for_ratio(Volts::new(0.5)).is_err());
        assert!(Converter::dsch_second_stage_for_ratio(Volts::new(60.0)).is_err());
    }

    #[test]
    fn lower_ratio_stages_are_more_efficient() {
        // Monotonicity of the interpolation: a gentler second-stage
        // ratio converts more efficiently at matched current.
        let eta = |bus: f64| {
            Converter::dsch_second_stage_for_ratio(Volts::new(bus))
                .unwrap()
                .efficiency(Amps::new(10.0))
                .unwrap()
                .fraction()
        };
        assert!(eta(4.0) > eta(8.0));
        assert!(eta(8.0) > eta(16.0));
    }

    #[test]
    fn multi_stage_rejects_mismatched_buses() {
        let err = MultiStageConverter::new(vec![
            Converter::dpmih_first_stage(Volts::new(6.0)).unwrap(),
            Converter::dsch_second_stage(Volts::new(12.0)).unwrap(),
        ])
        .unwrap_err();
        assert!(matches!(err, ConverterError::StageMismatch { .. }));
        assert!(MultiStageConverter::new(vec![]).is_err());
    }

    #[test]
    fn dual_stage_beats_nothing_but_single_stage_dsch_wins() {
        // The paper's §IV finding: the dual-stage path is less efficient
        // than single-stage DSCH conversion at comparable load.
        let dual = MultiStageConverter::new(vec![
            Converter::dpmih_first_stage(Volts::new(12.0)).unwrap(),
            Converter::dsch_second_stage(Volts::new(12.0)).unwrap(),
        ])
        .unwrap();
        let single = Converter::dsch_48v_to_1v();
        let i = Amps::new(20.0);
        assert!(single.efficiency(i).unwrap().fraction() > dual.efficiency(i).unwrap().fraction());
    }
}
