//! Converter-model error type.

use std::fmt;

/// Errors from converter construction and evaluation.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum ConverterError {
    /// The requested load exceeds the converter's maximum output
    /// current.
    OverCurrent {
        /// Converter name.
        converter: String,
        /// Requested output current (A).
        requested: f64,
        /// Maximum supported output current (A).
        max: f64,
    },
    /// The requested load was non-positive or non-finite.
    InvalidLoad {
        /// The rejected current (A).
        value: f64,
    },
    /// Calibration anchors are inconsistent (would produce a negative
    /// loss coefficient).
    BadCalibration {
        /// What went wrong.
        detail: String,
    },
    /// The topology cannot realize the requested conversion at the
    /// requested frequency (minimum on-time violated).
    InfeasibleOnTime {
        /// Required on-time (seconds).
        required: f64,
        /// Technology minimum on-time (seconds).
        minimum: f64,
    },
    /// A multi-stage chain was built with mismatched bus voltages.
    StageMismatch {
        /// Output voltage of the earlier stage (V).
        upstream_out: f64,
        /// Input voltage of the later stage (V).
        downstream_in: f64,
    },
    /// A device-model error during a physics-based design.
    Device(vpd_devices::DeviceError),
}

impl fmt::Display for ConverterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OverCurrent {
                converter,
                requested,
                max,
            } => write!(
                f,
                "{converter} cannot deliver {requested:.1} A (max {max:.1} A)"
            ),
            Self::InvalidLoad { value } => {
                write!(f, "load current must be positive and finite, got {value}")
            }
            Self::BadCalibration { detail } => write!(f, "bad calibration: {detail}"),
            Self::InfeasibleOnTime { required, minimum } => write!(
                f,
                "on-time {required:.2e} s below the {minimum:.2e} s minimum"
            ),
            Self::StageMismatch {
                upstream_out,
                downstream_in,
            } => write!(
                f,
                "stage bus mismatch: {upstream_out} V feeding a {downstream_in} V input"
            ),
            Self::Device(e) => write!(f, "device model: {e}"),
        }
    }
}

impl std::error::Error for ConverterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vpd_devices::DeviceError> for ConverterError {
    fn from(e: vpd_devices::DeviceError) -> Self {
        Self::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn over_current_message() {
        let e = ConverterError::OverCurrent {
            converter: "DSCH".into(),
            requested: 40.0,
            max: 30.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("DSCH") && msg.contains("40.0") && msg.contains("30.0"));
    }
}
