//! Switched-capacitor output-impedance theory (Seeman–Sanders charge
//! multipliers).
//!
//! §III of the paper frames the SC design space through two
//! limitations: *hard charge sharing* between capacitors (the
//! slow-switching-limit loss) and the *discrete conversion ratio*. Both
//! drop out of the classical two-asymptote model implemented here:
//!
//! * **SSL** (slow switching limit): `R_SSL = Σ a_{c,i}² / (C_i · f)` —
//!   charge-sharing loss, shrinking with frequency;
//! * **FSL** (fast switching limit): `R_FSL = Σ 2·a_{r,j}²·R_j` —
//!   conduction loss through the switch resistances;
//! * combined `R_out ≈ √(R_SSL² + R_FSL²)`, and the output droops as
//!   `V_out = V_in/n − I·R_out`.
//!
//! The DPMIH topology's per-capacitor inductors *soft-charge* the
//! flying caps, removing the SSL term — exactly the advantage §III
//! credits it with; `soft_charged()` models that variant.

use crate::ConverterError;
use vpd_units::{Amps, Efficiency, Farads, Hertz, Ohms, Volts};

/// A two-phase SC converter reduced to its charge-multiplier vectors.
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct ScConverterModel {
    /// Ideal step-down ratio `n` (output = `V_in / n`).
    ratio: usize,
    /// Flying caps as `(capacitance, charge multiplier a_c)`.
    caps: Vec<(Farads, f64)>,
    /// Switches as `(on-resistance, charge multiplier a_r)`.
    switches: Vec<(Ohms, f64)>,
    /// Whether the flying caps are soft-charged (SSL suppressed).
    soft_charged: bool,
}

impl ScConverterModel {
    /// A series-parallel `n:1` step-down: `n−1` flying caps with
    /// multipliers `1/n`, and `3n−2` switches each carrying `1/n` of
    /// the output charge.
    ///
    /// # Errors
    ///
    /// Returns [`ConverterError::BadCalibration`] for `n < 2` or
    /// non-positive component values.
    pub fn series_parallel(
        n: usize,
        cap_each: Farads,
        r_switch: Ohms,
    ) -> Result<Self, ConverterError> {
        Self::validate(n, cap_each, r_switch)?;
        let a = 1.0 / n as f64;
        Ok(Self {
            ratio: n,
            caps: vec![(cap_each, a); n - 1],
            switches: vec![(r_switch, a); 3 * n - 2],
            soft_charged: false,
        })
    }

    /// A Dickson (charge-pump ladder) `n:1` step-down: same capacitor
    /// multipliers as series-parallel in two-phase operation, but only
    /// `n + 4` switches — two input-side switches carry half the charge
    /// each phase, the ladder switches carry `1/n`.
    ///
    /// # Errors
    ///
    /// As for [`ScConverterModel::series_parallel`].
    pub fn dickson(n: usize, cap_each: Farads, r_switch: Ohms) -> Result<Self, ConverterError> {
        Self::validate(n, cap_each, r_switch)?;
        let a = 1.0 / n as f64;
        let mut switches = vec![(r_switch, a); n + 2];
        switches.push((r_switch, 0.5 * a));
        switches.push((r_switch, 0.5 * a));
        Ok(Self {
            ratio: n,
            caps: vec![(cap_each, a); n - 1],
            switches,
            soft_charged: false,
        })
    }

    fn validate(n: usize, cap_each: Farads, r_switch: Ohms) -> Result<(), ConverterError> {
        if n < 2 {
            return Err(ConverterError::BadCalibration {
                detail: format!("sc ratio must be at least 2, got {n}"),
            });
        }
        if !(cap_each.value() > 0.0 && r_switch.value() > 0.0) {
            return Err(ConverterError::BadCalibration {
                detail: "sc component values must be positive".into(),
            });
        }
        Ok(())
    }

    /// The soft-charged variant of this converter (every flying cap in
    /// series with an inductor, as in DPMIH): SSL removed.
    #[must_use]
    pub fn soft_charged(mut self) -> Self {
        self.soft_charged = true;
        self
    }

    /// Ideal conversion ratio `n`.
    #[must_use]
    pub fn ratio(&self) -> usize {
        self.ratio
    }

    /// Slow-switching-limit output resistance at `f`.
    #[must_use]
    pub fn r_ssl(&self, f: Hertz) -> Ohms {
        if self.soft_charged {
            return Ohms::ZERO;
        }
        Ohms::new(
            self.caps
                .iter()
                .map(|(c, a)| a * a / (c.value() * f.value()))
                .sum(),
        )
    }

    /// Fast-switching-limit output resistance.
    #[must_use]
    pub fn r_fsl(&self) -> Ohms {
        Ohms::new(
            self.switches
                .iter()
                .map(|(r, a)| 2.0 * a * a * r.value())
                .sum(),
        )
    }

    /// Combined output resistance `√(R_SSL² + R_FSL²)`.
    #[must_use]
    pub fn r_out(&self, f: Hertz) -> Ohms {
        let ssl = self.r_ssl(f).value();
        let fsl = self.r_fsl().value();
        Ohms::new(ssl.hypot(fsl))
    }

    /// The frequency where SSL equals FSL — the knee beyond which more
    /// switching buys (almost) nothing.
    #[must_use]
    pub fn corner_frequency(&self) -> Hertz {
        let ssl_coeff: f64 = self.caps.iter().map(|(c, a)| a * a / c.value()).sum();
        Hertz::new(ssl_coeff / self.r_fsl().value().max(f64::MIN_POSITIVE))
    }

    /// Loaded output voltage `V_in/n − I·R_out`.
    #[must_use]
    pub fn output_voltage(&self, v_in: Volts, i_out: Amps, f: Hertz) -> Volts {
        Volts::new(v_in.value() / self.ratio as f64 - i_out.value() * self.r_out(f).value())
    }

    /// Conversion efficiency at a load: `η = V_out / (V_in/n)` — the
    /// intrinsic SC result that all droop is loss.
    ///
    /// # Errors
    ///
    /// Returns [`ConverterError::OverCurrent`] when the droop collapses
    /// the output (`V_out ≤ 0`) and [`ConverterError::InvalidLoad`] for
    /// a non-positive current.
    pub fn efficiency(
        &self,
        v_in: Volts,
        i_out: Amps,
        f: Hertz,
    ) -> Result<Efficiency, ConverterError> {
        if !(i_out.value() > 0.0 && i_out.value().is_finite()) {
            return Err(ConverterError::InvalidLoad {
                value: i_out.value(),
            });
        }
        let ideal = v_in.value() / self.ratio as f64;
        let v_out = self.output_voltage(v_in, i_out, f).value();
        if v_out <= 0.0 {
            return Err(ConverterError::OverCurrent {
                converter: format!("SC {}:1", self.ratio),
                requested: i_out.value(),
                max: ideal / self.r_out(f).value(),
            });
        }
        Efficiency::new(v_out / ideal).map_err(|e| ConverterError::BadCalibration {
            detail: format!("sc efficiency invalid: {e}"),
        })
    }

    /// The discrete-ratio penalty §III mentions: regulating to a target
    /// below the ideal tap wastes `1 − V_target·n/V_in` even with a
    /// perfect converter.
    #[must_use]
    pub fn ratio_penalty(&self, v_in: Volts, v_target: Volts) -> f64 {
        let ideal = v_in.value() / self.ratio as f64;
        (1.0 - v_target.value() / ideal).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sp2() -> ScConverterModel {
        ScConverterModel::series_parallel(
            2,
            Farads::from_microfarads(1.0),
            Ohms::from_milliohms(10.0),
        )
        .unwrap()
    }

    #[test]
    fn textbook_2_to_1_ssl() {
        // Single cap, a_c = 1/2: R_SSL = 1/(4·C·f).
        let model = sp2();
        let f = Hertz::from_megahertz(1.0);
        let expected = 1.0 / (4.0 * 1e-6 * 1e6);
        assert!((model.r_ssl(f).value() - expected).abs() < 1e-12);
    }

    #[test]
    fn ssl_falls_with_frequency_fsl_flat() {
        let model = sp2();
        let f1 = Hertz::from_megahertz(1.0);
        let f2 = Hertz::from_megahertz(2.0);
        assert!((model.r_ssl(f1).value() / model.r_ssl(f2).value() - 2.0).abs() < 1e-12);
        assert_eq!(model.r_fsl(), model.r_fsl());
        // r_out approaches FSL at high frequency.
        let fsl = model.r_fsl().value();
        let high = model.r_out(Hertz::new(1e9)).value();
        assert!((high - fsl).abs() < 0.01 * fsl);
    }

    #[test]
    fn corner_frequency_balances_asymptotes() {
        let model = sp2();
        let fc = model.corner_frequency();
        let ssl = model.r_ssl(fc).value();
        let fsl = model.r_fsl().value();
        assert!((ssl - fsl).abs() < 1e-9 * fsl);
    }

    #[test]
    fn soft_charging_removes_ssl() {
        let hard = sp2();
        let soft = sp2().soft_charged();
        let f = Hertz::from_kilohertz(100.0); // deep SSL regime
        assert!(hard.r_out(f).value() > 10.0 * soft.r_out(f).value());
        assert_eq!(soft.r_ssl(f), Ohms::ZERO);
        // The §III claim: at equal (low) frequency the soft-charged
        // converter is far more efficient.
        let v = Volts::new(48.0);
        let i = Amps::new(5.0);
        let eta_hard = hard.efficiency(v, i, f);
        let eta_soft = soft.efficiency(v, i, f).unwrap();
        if let Ok(eh) = eta_hard {
            assert!(eta_soft.fraction() > eh.fraction());
        } // an Err means the output collapsed entirely: even stronger
    }

    #[test]
    fn dickson_has_fewer_switch_losses_at_high_ratio() {
        let n = 8;
        let c = Farads::from_microfarads(1.0);
        let r = Ohms::from_milliohms(10.0);
        let sp = ScConverterModel::series_parallel(n, c, r).unwrap();
        let dickson = ScConverterModel::dickson(n, c, r).unwrap();
        assert!(dickson.r_fsl().value() < sp.r_fsl().value());
        // Same SSL (same cap vector).
        let f = Hertz::from_megahertz(1.0);
        assert_eq!(dickson.r_ssl(f), sp.r_ssl(f));
    }

    #[test]
    fn discrete_ratio_penalty() {
        let model = ScConverterModel::series_parallel(
            48,
            Farads::from_microfarads(1.0),
            Ohms::from_milliohms(1.0),
        )
        .unwrap();
        // Regulating 48 V / 48 = 1 V down to 0.9 V throws away 10%.
        let penalty = model.ratio_penalty(Volts::new(48.0), Volts::new(0.9));
        assert!((penalty - 0.1).abs() < 1e-12);
        // No penalty at or above the tap.
        assert_eq!(model.ratio_penalty(Volts::new(48.0), Volts::new(1.0)), 0.0);
    }

    #[test]
    fn collapse_reported_as_over_current() {
        let model = sp2();
        let err = model
            .efficiency(Volts::new(2.0), Amps::new(1e6), Hertz::from_kilohertz(1.0))
            .unwrap_err();
        assert!(matches!(err, ConverterError::OverCurrent { .. }));
        assert!(model
            .efficiency(Volts::new(2.0), Amps::ZERO, Hertz::from_kilohertz(1.0))
            .is_err());
    }

    #[test]
    fn constructor_validation() {
        let c = Farads::from_microfarads(1.0);
        let r = Ohms::from_milliohms(1.0);
        assert!(ScConverterModel::series_parallel(1, c, r).is_err());
        assert!(ScConverterModel::dickson(0, c, r).is_err());
        assert!(ScConverterModel::series_parallel(2, Farads::ZERO, r).is_err());
    }

    proptest! {
        /// Efficiency decreases monotonically with load and r_out is
        /// positive for any valid design.
        #[test]
        fn prop_efficiency_monotone_in_load(
            n in 2_usize..12,
            i1 in 0.1_f64..5.0,
            scale in 1.1_f64..4.0,
        ) {
            let model = ScConverterModel::series_parallel(
                n,
                Farads::from_microfarads(10.0),
                Ohms::from_milliohms(5.0),
            ).unwrap();
            let f = Hertz::from_megahertz(1.0);
            let v = Volts::new(48.0);
            prop_assert!(model.r_out(f).value() > 0.0);
            let e1 = model.efficiency(v, Amps::new(i1), f);
            let e2 = model.efficiency(v, Amps::new(i1 * scale), f);
            if let (Ok(e1), Ok(e2)) = (e1, e2) {
                prop_assert!(e2.fraction() <= e1.fraction() + 1e-12);
            }
        }
    }
}
