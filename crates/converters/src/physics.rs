//! Physics-based converter loss model over the device layer.
//!
//! Where [`crate::Converter`] interpolates *published* operating points,
//! this module predicts losses bottom-up from device physics: switch
//! conduction/gating/switching from [`vpd_devices::PowerTransistor`],
//! inductor DCR + core loss, and capacitor ESR / charge-sharing loss.
//! It exists for the paper's §III what-if questions: GaN versus Si,
//! frequency scaling, and the on-time feasibility wall.

use crate::{ConverterError, TopologyCharacteristics, VrTopologyKind};
use vpd_devices::{Capacitor, Inductor, InductorKind, PowerTransistor, Semiconductor};
use vpd_units::{
    Amps, Efficiency, Farads, Henries, Hertz, Ohms, Seconds, SquareMeters, Volts, Watts,
};

/// Per-topology electrical stress factors used by the physics model.
///
/// These are structural properties of each topology's switching cell
/// (how far the SC front divides the input, how many devices conduct in
/// series, the RMS shape factor of the phase current).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct StressFactors {
    /// Fraction of `V_in` a switch blocks/slews.
    pub switch_voltage_fraction: f64,
    /// Effective series conduction multiplier.
    pub conduction_factor: f64,
    /// RMS-to-average shape factor of the switch current.
    pub rms_factor: f64,
    /// Whether flying capacitors are soft-charged.
    pub soft_switching: bool,
}

impl StressFactors {
    /// Structural factors for each reviewed topology.
    #[must_use]
    pub fn for_kind(kind: VrTopologyKind) -> Self {
        match kind {
            // Eight switches, SC front halves the stress, inductors
            // soft-charge every capacitor.
            VrTopologyKind::Dpmih => Self {
                switch_voltage_fraction: 0.5,
                conduction_factor: 1.2,
                rms_factor: 1.15,
                soft_switching: true,
            },
            // Series-capacitor front divides by 3; dual-phase buck tail.
            VrTopologyKind::Dsch => Self {
                switch_voltage_fraction: 1.0 / 3.0,
                conduction_factor: 1.5,
                rms_factor: 1.25,
                soft_switching: false,
            },
            // Dickson front steps 10× down; three interleaved phases.
            VrTopologyKind::ThreeLevelHybridDickson => Self {
                switch_voltage_fraction: 0.1,
                conduction_factor: 1.3,
                rms_factor: 1.2,
                soft_switching: false,
            },
        }
    }
}

/// Minimum realizable on-time per device technology (gate-loop limited).
#[must_use]
pub fn minimum_on_time(material: Semiconductor) -> Seconds {
    match material {
        Semiconductor::Si => Seconds::from_nanoseconds(20.0),
        Semiconductor::GaN => Seconds::from_nanoseconds(4.0),
    }
}

/// A bottom-up converter design at a chosen frequency and device
/// technology.
///
/// ```
/// use vpd_converters::{PhysicsDesign, VrTopologyKind};
/// use vpd_devices::Semiconductor;
/// use vpd_units::{Amps, Hertz, Volts};
///
/// # fn main() -> Result<(), vpd_converters::ConverterError> {
/// let gan = PhysicsDesign::new(
///     VrTopologyKind::Dpmih,
///     Semiconductor::GaN,
///     Hertz::from_megahertz(1.0),
///     Volts::new(48.0),
///     Volts::new(1.0),
///     Amps::new(30.0),
/// )?;
/// let eta = gan.efficiency(Amps::new(30.0))?;
/// assert!(eta.percent() > 85.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct PhysicsDesign {
    kind: VrTopologyKind,
    material: Semiconductor,
    f_sw: Hertz,
    v_in: Volts,
    v_out: Volts,
    i_rated: Amps,
    factors: StressFactors,
    switch: PowerTransistor,
    n_switches: usize,
    inductor: Inductor,
    capacitor: Capacitor,
}

impl PhysicsDesign {
    /// Sizes a design: every switch at its loss-optimal area for the
    /// rated current, passives from the Table II totals.
    ///
    /// # Errors
    ///
    /// * [`ConverterError::InfeasibleOnTime`] when `f_sw` would require
    ///   an on-time below the device technology's minimum.
    /// * [`ConverterError::Device`] for invalid sizing inputs.
    pub fn new(
        kind: VrTopologyKind,
        material: Semiconductor,
        f_sw: Hertz,
        v_in: Volts,
        v_out: Volts,
        i_rated: Amps,
    ) -> Result<Self, ConverterError> {
        let ch = TopologyCharacteristics::table_ii(kind);
        let factors = StressFactors::for_kind(kind);

        // On-time feasibility (§III): the effective duty at the switching
        // cell, after the SC front's division.
        let duty = (v_out.value() / v_in.value()) / factors.switch_voltage_fraction;
        let on_time = duty / f_sw.value();
        let t_min = minimum_on_time(material).value();
        if on_time < t_min {
            return Err(ConverterError::InfeasibleOnTime {
                required: on_time,
                minimum: t_min,
            });
        }

        let v_stress = v_in * factors.switch_voltage_fraction;
        let i_switch = Amps::new(
            i_rated.value() * factors.rms_factor / ch.inductors.max(1) as f64
                * factors.conduction_factor.sqrt(),
        );
        let area = PowerTransistor::optimal_area(
            material,
            v_stress,
            i_switch,
            duty.min(1.0),
            f_sw,
            v_stress,
        )?;
        let switch = PowerTransistor::new(material, v_stress, area)?;

        let per_inductor_l = Henries::new(ch.total_inductance.value() / ch.inductors.max(1) as f64);
        let inductor = Inductor::new(
            per_inductor_l,
            // DCR calibrated to ~0.3 mΩ/µH of embedded metal.
            Ohms::new(0.3e-3 * per_inductor_l.value() / 1e-6),
            InductorKind::Embedded,
            SquareMeters::from_square_millimeters(i_rated.value() / ch.inductors.max(1) as f64),
        )?;
        let per_cap_c = Farads::new(ch.total_capacitance.value() / ch.capacitors.max(1) as f64);
        let capacitor = Capacitor::new(
            per_cap_c,
            Ohms::from_milliohms(1.0),
            SquareMeters::from_square_millimeters(2.0),
        )?;

        Ok(Self {
            kind,
            material,
            f_sw,
            v_in,
            v_out,
            i_rated,
            factors,
            switch,
            n_switches: ch.switches,
            inductor,
            capacitor,
        })
    }

    /// Topology of the design.
    #[must_use]
    pub fn kind(&self) -> VrTopologyKind {
        self.kind
    }

    /// Device technology of the design.
    #[must_use]
    pub fn material(&self) -> Semiconductor {
        self.material
    }

    /// Switching frequency.
    #[must_use]
    pub fn f_sw(&self) -> Hertz {
        self.f_sw
    }

    /// The sized switch (all `n` switches share the optimal area).
    #[must_use]
    pub fn switch(&self) -> &PowerTransistor {
        &self.switch
    }

    /// Total loss delivering `i_out`.
    ///
    /// # Errors
    ///
    /// Returns [`ConverterError::InvalidLoad`] for a non-positive
    /// current.
    pub fn loss(&self, i_out: Amps) -> Result<Watts, ConverterError> {
        if !(i_out.value().is_finite() && i_out.value() > 0.0) {
            return Err(ConverterError::InvalidLoad {
                value: i_out.value(),
            });
        }
        let ch = TopologyCharacteristics::table_ii(self.kind);
        let duty = (self.v_out.value() / self.v_in.value()) / self.factors.switch_voltage_fraction;
        let phases = ch.inductors.max(1) as f64;
        let i_phase = Amps::new(i_out.value() / phases);
        let i_sw_rms = Amps::new(
            i_phase.value() * self.factors.rms_factor * self.factors.conduction_factor.sqrt(),
        );
        let v_stress = self.v_in * self.factors.switch_voltage_fraction;

        // Conduction spreads across the switches that actually conduct
        // simultaneously (roughly half of them in every reviewed cell).
        let conducting = (self.n_switches as f64 / 2.0).max(1.0);
        let p_cond = self.switch.conduction_loss(i_sw_rms, duty.min(1.0)) * conducting;

        // Every switch pays gate loss each cycle.
        let p_gate = self.switch.gate_loss(self.f_sw) * self.n_switches as f64;

        // Hard-switched cells pay overlap + Coss on the switching pair.
        let p_sw = if self.factors.soft_switching {
            Watts::ZERO
        } else {
            self.switch.switching_loss(self.f_sw, v_stress, i_phase) * 2.0
        };

        // Passives.
        let ripple = self
            .inductor
            .buck_ripple(self.v_out, duty.min(1.0), self.f_sw);
        let p_l = self.inductor.loss(i_phase, ripple, self.f_sw) * phases;
        let p_c = if self.factors.soft_switching {
            self.capacitor.loss(Amps::new(i_phase.value() * 0.3)) * ch.capacitors as f64
        } else {
            // Small residual mismatch voltage on hard-switched flying caps.
            let dv = Volts::new(self.v_out.value() * 0.05);
            (self.capacitor.loss(Amps::new(i_phase.value() * 0.3))
                + self.capacitor.charge_sharing_loss(dv, self.f_sw))
                * ch.capacitors as f64
        };

        Ok(p_cond + p_gate + p_sw + p_l + p_c)
    }

    /// Efficiency delivering `i_out`.
    ///
    /// # Errors
    ///
    /// As for [`PhysicsDesign::loss`].
    pub fn efficiency(&self, i_out: Amps) -> Result<Efficiency, ConverterError> {
        let p_out = (self.v_out * i_out).value();
        let eta = p_out / (p_out + self.loss(i_out)?.value());
        Efficiency::new(eta).map_err(|e| ConverterError::BadCalibration {
            detail: format!("physics efficiency invalid: {e}"),
        })
    }

    /// The highest feasible switching frequency for this topology and
    /// technology (where on-time hits the device minimum).
    #[must_use]
    pub fn max_feasible_frequency(
        kind: VrTopologyKind,
        material: Semiconductor,
        v_in: Volts,
        v_out: Volts,
    ) -> Hertz {
        let factors = StressFactors::for_kind(kind);
        let duty = (v_out.value() / v_in.value()) / factors.switch_voltage_fraction;
        Hertz::new(duty / minimum_on_time(material).value())
    }

    /// Rated output current the design was sized for.
    #[must_use]
    pub fn i_rated(&self) -> Amps {
        self.i_rated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F1: f64 = 1.0;

    fn mk(kind: VrTopologyKind, m: Semiconductor, f_mhz: f64) -> PhysicsDesign {
        PhysicsDesign::new(
            kind,
            m,
            Hertz::from_megahertz(f_mhz),
            Volts::new(48.0),
            Volts::new(1.0),
            Amps::new(30.0),
        )
        .unwrap()
    }

    #[test]
    fn gan_beats_si_at_high_frequency() {
        let gan = mk(VrTopologyKind::Dsch, Semiconductor::GaN, F1);
        let si = mk(VrTopologyKind::Dsch, Semiconductor::Si, F1);
        let i = Amps::new(20.0);
        assert!(
            gan.efficiency(i).unwrap().fraction() > si.efficiency(i).unwrap().fraction(),
            "GaN should win at 1 MHz"
        );
    }

    #[test]
    fn efficiency_in_plausible_band() {
        // The bottom-up model should land in the same ~85-95% band as the
        // published designs it abstracts.
        for kind in VrTopologyKind::ALL {
            let d = mk(kind, Semiconductor::GaN, F1);
            let eta = d.efficiency(Amps::new(10.0)).unwrap().percent();
            assert!((80.0..99.0).contains(&eta), "{kind}: {eta:.1}%");
        }
    }

    #[test]
    fn dickson_front_relaxes_on_time() {
        // 3LHD tolerates ~10x higher frequency than DPMIH before the
        // on-time wall (duty 0.208 vs 0.0417).
        let f3 = PhysicsDesign::max_feasible_frequency(
            VrTopologyKind::ThreeLevelHybridDickson,
            Semiconductor::GaN,
            Volts::new(48.0),
            Volts::new(1.0),
        );
        let fd = PhysicsDesign::max_feasible_frequency(
            VrTopologyKind::Dpmih,
            Semiconductor::GaN,
            Volts::new(48.0),
            Volts::new(1.0),
        );
        assert!((f3.value() / fd.value() - 5.0).abs() < 0.5);
    }

    #[test]
    fn infeasible_on_time_is_rejected() {
        // Direct 48:1 with Si at 10 MHz: on-time far below 20 ns.
        let err = PhysicsDesign::new(
            VrTopologyKind::Dpmih,
            Semiconductor::Si,
            Hertz::from_megahertz(10.0),
            Volts::new(48.0),
            Volts::new(1.0),
            Amps::new(30.0),
        )
        .unwrap_err();
        assert!(matches!(err, ConverterError::InfeasibleOnTime { .. }));
    }

    #[test]
    fn soft_switching_advantage_shows_in_model() {
        // At matched conditions, the DPMIH (soft) design's switching-loss
        // fraction is lower: raise frequency and DPMIH degrades less.
        let lo = 0.5;
        let hi = 2.0;
        let degradation = |kind| {
            let d_lo = mk(kind, Semiconductor::GaN, lo);
            let d_hi = mk(kind, Semiconductor::GaN, hi);
            let i = Amps::new(20.0);
            d_lo.efficiency(i).unwrap().fraction() - d_hi.efficiency(i).unwrap().fraction()
        };
        assert!(degradation(VrTopologyKind::Dpmih) < degradation(VrTopologyKind::Dsch));
    }

    #[test]
    fn loss_rejects_bad_current() {
        let d = mk(VrTopologyKind::Dsch, Semiconductor::GaN, F1);
        assert!(d.loss(Amps::ZERO).is_err());
        assert!(d.loss(Amps::new(-5.0)).is_err());
    }
}
