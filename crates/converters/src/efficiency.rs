//! Calibrated efficiency-versus-load curves.
//!
//! The paper evaluates converters at the operating points published for
//! the real silicon ([8]–[10]): peak efficiency at one current, maximum
//! load at another. This module fits the standard quadratic loss model
//!
//! ```text
//! P_loss(I) = a + b·I + c·I²
//! ```
//!
//! to those anchors. The fixed term `a` captures switching/gating loss,
//! `b·I` captures overlap and diode-drop-like terms, and `c·I²` captures
//! conduction loss. Three constraints pin the three coefficients:
//!
//! 1. peak efficiency occurs at `I_pk` → `dη/dI = 0` → `a = c·I_pk²`;
//! 2. the efficiency at `I_pk` equals the published peak;
//! 3. the efficiency at `I_max` equals the published (or estimated)
//!    full-load value.

use crate::ConverterError;
use vpd_units::{Amps, Efficiency, Volts, Watts};

/// Published operating points a curve is fitted to.
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct CurveAnchors {
    /// Output voltage the published numbers refer to.
    pub v_out: Volts,
    /// Current at peak efficiency.
    pub i_peak: Amps,
    /// Peak efficiency.
    pub eta_peak: Efficiency,
    /// Maximum load current.
    pub i_max: Amps,
    /// Efficiency at maximum load.
    pub eta_max: Efficiency,
}

/// A fitted efficiency-versus-load curve.
///
/// ```
/// use vpd_converters::{CurveAnchors, EfficiencyCurve};
/// use vpd_units::{Amps, Efficiency, Volts};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The DPMIH anchors from Table II.
/// let curve = EfficiencyCurve::fit(CurveAnchors {
///     v_out: Volts::new(1.0),
///     i_peak: Amps::new(30.0),
///     eta_peak: Efficiency::from_percent(90.0)?,
///     i_max: Amps::new(100.0),
///     eta_max: Efficiency::from_percent(86.0)?,
/// })?;
/// let eta = curve.efficiency(Amps::new(30.0))?;
/// assert!((eta.percent() - 90.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct EfficiencyCurve {
    v_out: Volts,
    i_max: Amps,
    a: f64,
    b: f64,
    c: f64,
}

impl EfficiencyCurve {
    /// Fits the quadratic loss model to the anchors.
    ///
    /// # Errors
    ///
    /// Returns [`ConverterError::BadCalibration`] when the anchors are
    /// inconsistent: `i_peak ≥ i_max`, or a fit with negative
    /// curvature/loss.
    pub fn fit(anchors: CurveAnchors) -> Result<Self, ConverterError> {
        let v = anchors.v_out.value();
        let ip = anchors.i_peak.value();
        let im = anchors.i_max.value();
        if !(ip > 0.0 && im > ip) {
            return Err(ConverterError::BadCalibration {
                detail: format!("need 0 < i_peak < i_max, got {ip} and {im}"),
            });
        }
        // Loss implied by each anchor: P = V·I·(1/η − 1).
        let loss_at = |i: f64, eta: Efficiency| v * i * (1.0 / eta.fraction() - 1.0);
        let lp = loss_at(ip, anchors.eta_peak);
        let lm = loss_at(im, anchors.eta_max);

        // dη/dI = 0 at I_pk  ⇔  d(P/I)/dI = 0  ⇔  a = c·I_pk².
        let c = (lm - lp * im / ip) / ((im - ip) * (im - ip));
        if c < 0.0 {
            return Err(ConverterError::BadCalibration {
                detail: format!("full-load anchor too efficient for the peak anchor (c = {c:.3e})"),
            });
        }
        let a = c * ip * ip;
        let b = (lp - 2.0 * c * ip * ip) / ip;
        if b < 0.0 {
            return Err(ConverterError::BadCalibration {
                detail: format!("fit produced negative linear loss (b = {b:.3e})"),
            });
        }
        Ok(Self {
            v_out: anchors.v_out,
            i_max: anchors.i_max,
            a,
            b,
            c,
        })
    }

    /// Builds a curve directly from loss coefficients
    /// (`P = a + b·I + c·I²`).
    ///
    /// # Errors
    ///
    /// Returns [`ConverterError::BadCalibration`] for negative
    /// coefficients or a non-positive `i_max`.
    pub fn from_coefficients(
        v_out: Volts,
        i_max: Amps,
        a: f64,
        b: f64,
        c: f64,
    ) -> Result<Self, ConverterError> {
        if a < 0.0 || b < 0.0 || c < 0.0 || i_max.value() <= 0.0 || i_max.value().is_nan() {
            return Err(ConverterError::BadCalibration {
                detail: "coefficients must be non-negative with positive i_max".into(),
            });
        }
        Ok(Self {
            v_out,
            i_max,
            a,
            b,
            c,
        })
    }

    /// Output voltage the curve refers to.
    #[must_use]
    pub fn v_out(&self) -> Volts {
        self.v_out
    }

    /// Maximum supported output current.
    #[must_use]
    pub fn max_load(&self) -> Amps {
        self.i_max
    }

    /// Loss coefficients `(a, b, c)`.
    #[must_use]
    pub fn coefficients(&self) -> (f64, f64, f64) {
        (self.a, self.b, self.c)
    }

    /// Power dissipated at an output current (no range check — used by
    /// sweeps that probe beyond rating).
    #[must_use]
    pub fn loss_unchecked(&self, i_out: Amps) -> Watts {
        let i = i_out.value();
        Watts::new(self.a + self.b * i + self.c * i * i)
    }

    /// Power dissipated delivering `i_out`.
    ///
    /// # Errors
    ///
    /// * [`ConverterError::InvalidLoad`] for a non-positive current.
    /// * [`ConverterError::OverCurrent`] beyond `max_load`.
    pub fn loss(&self, i_out: Amps) -> Result<Watts, ConverterError> {
        self.check(i_out)?;
        Ok(self.loss_unchecked(i_out))
    }

    /// Conversion efficiency delivering `i_out`.
    ///
    /// # Errors
    ///
    /// As for [`EfficiencyCurve::loss`].
    pub fn efficiency(&self, i_out: Amps) -> Result<Efficiency, ConverterError> {
        self.check(i_out)?;
        let p_out = (self.v_out * i_out).value();
        let eta = p_out / (p_out + self.loss_unchecked(i_out).value());
        Efficiency::new(eta).map_err(|e| ConverterError::BadCalibration {
            detail: format!("efficiency left (0,1]: {e}"),
        })
    }

    /// The current at which efficiency peaks: `√(a/c)` (or `i_max` for a
    /// curve with no fixed loss).
    #[must_use]
    pub fn peak_efficiency_current(&self) -> Amps {
        if self.c > 0.0 && self.a > 0.0 {
            Amps::new((self.a / self.c).sqrt())
        } else {
            self.i_max
        }
    }

    fn check(&self, i_out: Amps) -> Result<(), ConverterError> {
        let i = i_out.value();
        if !(i.is_finite() && i > 0.0) {
            return Err(ConverterError::InvalidLoad { value: i });
        }
        if i > self.i_max.value() * (1.0 + 1e-9) {
            return Err(ConverterError::OverCurrent {
                converter: "efficiency curve".into(),
                requested: i,
                max: self.i_max.value(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dpmih_anchors() -> CurveAnchors {
        CurveAnchors {
            v_out: Volts::new(1.0),
            i_peak: Amps::new(30.0),
            eta_peak: Efficiency::from_percent(90.0).unwrap(),
            i_max: Amps::new(100.0),
            eta_max: Efficiency::from_percent(86.0).unwrap(),
        }
    }

    #[test]
    fn anchors_are_interpolated_exactly() {
        let curve = EfficiencyCurve::fit(dpmih_anchors()).unwrap();
        let at_peak = curve.efficiency(Amps::new(30.0)).unwrap();
        let at_max = curve.efficiency(Amps::new(100.0)).unwrap();
        assert!((at_peak.percent() - 90.0).abs() < 1e-9);
        assert!((at_max.percent() - 86.0).abs() < 1e-9);
    }

    #[test]
    fn peak_is_at_the_anchor_current() {
        let curve = EfficiencyCurve::fit(dpmih_anchors()).unwrap();
        assert!((curve.peak_efficiency_current().value() - 30.0).abs() < 1e-9);
        // And it really is a maximum.
        let eta = |i: f64| curve.efficiency(Amps::new(i)).unwrap().fraction();
        assert!(eta(30.0) >= eta(20.0));
        assert!(eta(30.0) >= eta(45.0));
    }

    #[test]
    fn rejects_inverted_anchors() {
        let mut anchors = dpmih_anchors();
        anchors.i_max = Amps::new(10.0); // below i_peak
        assert!(matches!(
            EfficiencyCurve::fit(anchors),
            Err(ConverterError::BadCalibration { .. })
        ));
    }

    #[test]
    fn rejects_impossible_full_load_efficiency() {
        let mut anchors = dpmih_anchors();
        // Full load more efficient than peak is inconsistent with a
        // quadratic loss having its optimum at i_peak.
        anchors.eta_max = Efficiency::from_percent(95.0).unwrap();
        assert!(EfficiencyCurve::fit(anchors).is_err());
    }

    #[test]
    fn over_current_and_invalid_load() {
        let curve = EfficiencyCurve::fit(dpmih_anchors()).unwrap();
        assert!(matches!(
            curve.efficiency(Amps::new(150.0)),
            Err(ConverterError::OverCurrent { .. })
        ));
        assert!(matches!(
            curve.efficiency(Amps::ZERO),
            Err(ConverterError::InvalidLoad { .. })
        ));
        assert!(curve.loss(Amps::new(f64::NAN)).is_err());
    }

    #[test]
    fn from_coefficients_validation() {
        assert!(EfficiencyCurve::from_coefficients(
            Volts::new(1.0),
            Amps::new(10.0),
            -0.1,
            0.0,
            0.0
        )
        .is_err());
        let flat =
            EfficiencyCurve::from_coefficients(Volts::new(1.0), Amps::new(10.0), 0.0, 0.111, 0.0)
                .unwrap();
        // Pure linear loss: 1/(1+0.111) ≈ 90% at every load.
        let eta = flat.efficiency(Amps::new(5.0)).unwrap();
        assert!((eta.fraction() - 0.9).abs() < 1e-3);
        assert_eq!(flat.peak_efficiency_current(), Amps::new(10.0));
    }

    proptest! {
        /// Any consistent anchor set round-trips, stays within (0,1],
        /// and peaks where promised.
        #[test]
        fn prop_fit_round_trips(
            ip in 2.0_f64..40.0,
            scale in 1.5_f64..5.0,
            eta_pk in 0.85_f64..0.96,
            drop in 0.02_f64..0.08,
        ) {
            let im = ip * scale;
            let anchors = CurveAnchors {
                v_out: Volts::new(1.0),
                i_peak: Amps::new(ip),
                eta_peak: Efficiency::new(eta_pk).unwrap(),
                i_max: Amps::new(im),
                eta_max: Efficiency::new(eta_pk - drop).unwrap(),
            };
            if let Ok(curve) = EfficiencyCurve::fit(anchors) {
                let at_pk = curve.efficiency(Amps::new(ip)).unwrap().fraction();
                let at_max = curve.efficiency(Amps::new(im)).unwrap().fraction();
                prop_assert!((at_pk - eta_pk).abs() < 1e-9);
                prop_assert!((at_max - (eta_pk - drop)).abs() < 1e-9);
                // Efficiency bounded on the whole operating range.
                for k in 1..20 {
                    let i = im * f64::from(k) / 20.0;
                    let eta = curve.efficiency(Amps::new(i)).unwrap().fraction();
                    prop_assert!(eta > 0.0 && eta <= 1.0);
                }
                // Peak location.
                prop_assert!((curve.peak_efficiency_current().value() - ip).abs() < 1e-6);
            }
        }
    }
}
