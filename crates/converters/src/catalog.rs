//! The paper's Table II: characteristics of the three state-of-the-art
//! compact 48 V-to-1 V converters, as typed data.

use vpd_units::{Amps, Efficiency, Farads, Henries, SquareMeters};

/// The three reviewed hybrid topologies (§III).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum VrTopologyKind {
    /// Dual-phase multi-inductor hybrid (\[9\], Das & Le) — SC-derived,
    /// soft-switching, highest current capability, largest footprint.
    Dpmih,
    /// Double series-capacitor hybrid (\[8\], Kirshenboim & Peretz) —
    /// buck-derived with an SC front, compact, best at moderate ratios.
    Dsch,
    /// Three-level hybrid Dickson (\[10\], Gong et al.) — Dickson SC front
    /// with a 10× internal step-down relaxing the on-time constraint.
    ThreeLevelHybridDickson,
}

impl VrTopologyKind {
    /// All reviewed topologies in Table II column order.
    pub const ALL: [Self; 3] = [Self::Dpmih, Self::Dsch, Self::ThreeLevelHybridDickson];

    /// Short display name as used in the paper.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Dpmih => "DPMIH",
            Self::Dsch => "DSCH",
            Self::ThreeLevelHybridDickson => "3LHD",
        }
    }
}

impl std::fmt::Display for VrTopologyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One column of Table II.
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct TopologyCharacteristics {
    /// Which topology.
    pub kind: VrTopologyKind,
    /// Maximum load current per VR module.
    pub max_load: Amps,
    /// Peak efficiency.
    pub peak_efficiency: Efficiency,
    /// Output current at which efficiency peaks.
    pub current_at_peak: Amps,
    /// Power switches per module.
    pub switches: usize,
    /// Switch area density (switches per mm² of module area) — Table II's
    /// "number of switches per mm²".
    pub switches_per_mm2: f64,
    /// Inductors per module.
    pub inductors: usize,
    /// Total inductance per module.
    pub total_inductance: Henries,
    /// Capacitors per module.
    pub capacitors: usize,
    /// Total capacitance per module.
    pub total_capacitance: Farads,
    /// VR modules placed along the die periphery (paper's placement
    /// study for architectures A1/A3).
    pub vrs_along_periphery: usize,
    /// VR modules placed below the die (architectures A2/A3).
    pub vrs_below_die: usize,
    /// Whether the topology soft-switches its flying capacitors (DPMIH's
    /// inductor-per-capacitor trick).
    pub soft_switching: bool,
}

impl TopologyCharacteristics {
    /// Module footprint implied by Table II: switches / switch density.
    #[must_use]
    pub fn module_area(&self) -> SquareMeters {
        SquareMeters::from_square_millimeters(self.switches as f64 / self.switches_per_mm2)
    }

    /// Table II, column by column.
    ///
    /// # Panics
    ///
    /// Never panics: the embedded efficiencies are valid by
    /// construction.
    #[must_use]
    pub fn table_ii(kind: VrTopologyKind) -> Self {
        let eff = |pct: f64| Efficiency::from_percent(pct).expect("valid table constant");
        match kind {
            VrTopologyKind::Dpmih => Self {
                kind,
                max_load: Amps::new(100.0),
                peak_efficiency: eff(90.0),
                current_at_peak: Amps::new(30.0),
                switches: 8,
                switches_per_mm2: 0.15,
                inductors: 4,
                total_inductance: Henries::from_microhenries(4.0),
                capacitors: 3,
                total_capacitance: Farads::from_microfarads(15.0),
                vrs_along_periphery: 8,
                vrs_below_die: 7,
                soft_switching: true,
            },
            VrTopologyKind::Dsch => Self {
                kind,
                max_load: Amps::new(30.0),
                peak_efficiency: eff(91.5),
                current_at_peak: Amps::new(10.0),
                switches: 5,
                switches_per_mm2: 0.69,
                inductors: 2,
                total_inductance: Henries::from_microhenries(0.88),
                capacitors: 2,
                total_capacitance: Farads::from_microfarads(6.6),
                vrs_along_periphery: 48,
                vrs_below_die: 48,
                soft_switching: false,
            },
            VrTopologyKind::ThreeLevelHybridDickson => Self {
                kind,
                max_load: Amps::new(12.0),
                peak_efficiency: eff(90.4),
                current_at_peak: Amps::new(3.0),
                switches: 11,
                switches_per_mm2: 1.22,
                inductors: 3,
                total_inductance: Henries::from_microhenries(1.86),
                capacitors: 5,
                total_capacitance: Farads::from_microfarads(5.0),
                vrs_along_periphery: 48,
                vrs_below_die: 48,
                soft_switching: false,
            },
        }
    }

    /// The fraction of a 48 V switching period the main switch conducts
    /// in this topology: the buck-derived DSCH suffers the full 48:1
    /// ratio (~2%); the Dickson front of the 3LHD steps 10× down first
    /// (~20%, as §III highlights); DPMIH's dual phases each see ~4%.
    #[must_use]
    pub fn on_time_fraction(&self) -> f64 {
        match self.kind {
            VrTopologyKind::Dpmih => 2.0 / 48.0,
            VrTopologyKind::Dsch => 1.0 / 48.0 * 3.0, // SC front divides by 3 first
            VrTopologyKind::ThreeLevelHybridDickson => 10.0 / 48.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_headline_numbers() {
        let dpmih = TopologyCharacteristics::table_ii(VrTopologyKind::Dpmih);
        assert_eq!(dpmih.max_load, Amps::new(100.0));
        assert_eq!(dpmih.switches, 8);
        assert!((dpmih.peak_efficiency.percent() - 90.0).abs() < 1e-9);

        let dsch = TopologyCharacteristics::table_ii(VrTopologyKind::Dsch);
        assert_eq!(dsch.max_load, Amps::new(30.0));
        assert_eq!(dsch.switches, 5);
        assert_eq!(dsch.vrs_along_periphery, 48);

        let tlhd = TopologyCharacteristics::table_ii(VrTopologyKind::ThreeLevelHybridDickson);
        assert_eq!(tlhd.switches, 11);
        assert_eq!(tlhd.capacitors, 5);
        assert!((tlhd.current_at_peak.value() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn module_areas_from_switch_density() {
        // DPMIH: 8 / 0.15 ≈ 53.3 mm²; DSCH: 5 / 0.69 ≈ 7.25 mm²;
        // 3LHD: 11 / 1.22 ≈ 9.0 mm².
        let area = |k| {
            TopologyCharacteristics::table_ii(k)
                .module_area()
                .as_square_millimeters()
        };
        assert!((area(VrTopologyKind::Dpmih) - 53.33).abs() < 0.1);
        assert!((area(VrTopologyKind::Dsch) - 7.25).abs() < 0.05);
        assert!((area(VrTopologyKind::ThreeLevelHybridDickson) - 9.02).abs() < 0.05);
    }

    #[test]
    fn paper_note_3lhd_smaller_than_dpmih_despite_more_switches() {
        // §III: "while eleven switches are used ... the area occupied by
        // all the switches is lower when compared to DPMIH".
        let dpmih = TopologyCharacteristics::table_ii(VrTopologyKind::Dpmih);
        let tlhd = TopologyCharacteristics::table_ii(VrTopologyKind::ThreeLevelHybridDickson);
        assert!(tlhd.switches > dpmih.switches);
        assert!(tlhd.module_area().value() < dpmih.module_area().value());
    }

    #[test]
    fn on_time_hierarchy_matches_section_iii() {
        let on = |k| TopologyCharacteristics::table_ii(k).on_time_fraction();
        // 3LHD ≈ 20%, versus ~2% for a direct 48:1 buck-derived stage.
        assert!((on(VrTopologyKind::ThreeLevelHybridDickson) - 0.208).abs() < 0.01);
        assert!(on(VrTopologyKind::Dpmih) < 0.05);
        assert!(on(VrTopologyKind::ThreeLevelHybridDickson) > 4.0 * on(VrTopologyKind::Dpmih));
    }

    #[test]
    fn only_dpmih_soft_switches() {
        assert!(TopologyCharacteristics::table_ii(VrTopologyKind::Dpmih).soft_switching);
        assert!(!TopologyCharacteristics::table_ii(VrTopologyKind::Dsch).soft_switching);
    }

    #[test]
    fn display_names() {
        assert_eq!(VrTopologyKind::Dpmih.to_string(), "DPMIH");
        assert_eq!(VrTopologyKind::ThreeLevelHybridDickson.to_string(), "3LHD");
    }
}
