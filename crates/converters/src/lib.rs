//! High-ratio voltage-converter models for vertical power delivery.
//!
//! Implements the paper's §III: the three reviewed 48 V-to-1 V hybrid
//! topologies (DPMIH, DSCH, 3LHD) with efficiency curves calibrated to
//! their published operating points (Table II), the multi-stage
//! first/second-stage variants of §II, the flat-90% PCB reference
//! converter, and a bottom-up physics loss model over the Si/GaN device
//! layer for ablation studies.
//!
//! ```
//! use vpd_converters::Converter;
//! use vpd_units::Amps;
//!
//! # fn main() -> Result<(), vpd_converters::ConverterError> {
//! // Table II peak operating point of the DPMIH converter.
//! let dpmih = Converter::dpmih_48v_to_1v();
//! assert!((dpmih.efficiency(Amps::new(30.0))?.percent() - 90.0).abs() < 0.1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod efficiency;
mod error;
mod physics;
mod sc_analysis;
mod sizing;
mod topology;

pub use catalog::{TopologyCharacteristics, VrTopologyKind};
pub use efficiency::{CurveAnchors, EfficiencyCurve};
pub use error::ConverterError;
pub use physics::{minimum_on_time, PhysicsDesign, StressFactors};
pub use sc_analysis::ScConverterModel;
pub use sizing::{frequency_for_inductance, size_passives, PassiveSizing, RippleSpec};
pub use topology::{Converter, MultiStageConverter};
