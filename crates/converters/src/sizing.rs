//! Passive sizing: the inverse problem of Table II.
//!
//! Table II reports each converter's total inductance and capacitance;
//! this module derives those values from ripple specifications — the
//! design flow §III implies ("integrated passives limited by the small
//! form factor exhibit lower energy capacity and need to be switched
//! faster"). Given a ripple budget and switching frequency it sizes the
//! phase inductor and output capacitor, and conversely reports the
//! frequency a given (small, embeddable) passive set forces.

use crate::{ConverterError, TopologyCharacteristics, VrTopologyKind};
use vpd_devices::InductorKind;
use vpd_units::{Amps, Farads, Henries, Hertz, SquareMeters, Volts};

/// Ripple requirements at the converter output.
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct RippleSpec {
    /// Peak-to-peak inductor-current ripple as a fraction of the phase
    /// current (typical designs target 0.3–0.5).
    pub current_ripple_fraction: f64,
    /// Peak-to-peak output-voltage ripple as a fraction of `V_out`.
    pub voltage_ripple_fraction: f64,
}

impl RippleSpec {
    /// A conventional 40% current / 1% voltage ripple target.
    #[must_use]
    pub fn typical() -> Self {
        Self {
            current_ripple_fraction: 0.4,
            voltage_ripple_fraction: 0.01,
        }
    }
}

/// A sized passive set for one buck-derived phase.
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct PassiveSizing {
    /// Per-phase inductance.
    pub inductance_per_phase: Henries,
    /// Output capacitance (per module).
    pub output_capacitance: Farads,
    /// Phase count the sizing assumed.
    pub phases: usize,
    /// The switching frequency the sizing assumed.
    pub f_sw: Hertz,
    /// Area an embedded inductor of this rating needs (1 A/mm² limit,
    /// per the paper's \[14\]).
    pub inductor_area_per_phase: SquareMeters,
}

/// Sizes the passives of a buck-derived output stage.
///
/// Standard relations for an interleaved buck cell whose switching node
/// swings `v_cell` with duty `d = v_out/v_cell`:
///
/// * `L = v_out·(1 − d) / (ΔI · f)`
/// * `C = ΔI / (8 · f · ΔV)` (phase-interleaving reduces the effective
///   ripple current by the phase count).
///
/// # Errors
///
/// Returns [`ConverterError::BadCalibration`] for non-positive inputs
/// or a duty outside `(0, 1)`.
pub fn size_passives(
    kind: VrTopologyKind,
    v_out: Volts,
    i_out: Amps,
    f_sw: Hertz,
    spec: &RippleSpec,
) -> Result<PassiveSizing, ConverterError> {
    if !(v_out.value() > 0.0 && i_out.value() > 0.0 && f_sw.value() > 0.0) {
        return Err(ConverterError::BadCalibration {
            detail: "sizing inputs must be positive".into(),
        });
    }
    if !(spec.current_ripple_fraction > 0.0 && spec.voltage_ripple_fraction > 0.0) {
        return Err(ConverterError::BadCalibration {
            detail: "ripple fractions must be positive".into(),
        });
    }
    let ch = TopologyCharacteristics::table_ii(kind);
    let phases = ch.inductors.max(1);
    // The SC front division sets the cell voltage the buck tail sees.
    let factors = crate::StressFactors::for_kind(kind);
    let v_cell = 48.0 * factors.switch_voltage_fraction;
    let duty = v_out.value() / v_cell;
    if !(0.0..1.0).contains(&duty) {
        return Err(ConverterError::BadCalibration {
            detail: format!("infeasible duty {duty:.3} for {kind}"),
        });
    }
    let i_phase = i_out.value() / phases as f64;
    let di = spec.current_ripple_fraction * i_phase;
    let l = v_out.value() * (1.0 - duty) / (di * f_sw.value());
    let dv = spec.voltage_ripple_fraction * v_out.value();
    // Interleaving: the capacitor sees ΔI/phases of effective ripple.
    let c = di / (phases as f64 * 8.0 * f_sw.value() * dv);
    let area = Amps::new(i_phase) / InductorKind::Embedded.current_density_limit();
    Ok(PassiveSizing {
        inductance_per_phase: Henries::new(l),
        output_capacitance: Farads::new(c),
        phases,
        f_sw,
        inductor_area_per_phase: area,
    })
}

/// The switching frequency at which the sized per-phase inductance
/// matches a given (embeddable) value — how fast a small passive set
/// forces the converter to run (§III's core tension).
///
/// # Errors
///
/// As for [`size_passives`].
pub fn frequency_for_inductance(
    kind: VrTopologyKind,
    v_out: Volts,
    i_out: Amps,
    target_l: Henries,
    spec: &RippleSpec,
) -> Result<Hertz, ConverterError> {
    if target_l.value() <= 0.0 || target_l.value().is_nan() {
        return Err(ConverterError::BadCalibration {
            detail: "target inductance must be positive".into(),
        });
    }
    // L ∝ 1/f, so solve directly from a reference sizing at 1 MHz.
    let at_1mhz = size_passives(kind, v_out, i_out, Hertz::from_megahertz(1.0), spec)?;
    let f = at_1mhz.inductance_per_phase.value() / target_l.value() * 1e6;
    Ok(Hertz::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_inductance_recovered_at_plausible_frequency() {
        // DSCH: Table II lists 0.88 µH over 2 phases → 0.44 µH/phase.
        // Sizing with typical ripple at the published ~30 A max load
        // should land at a frequency in the hundreds-of-kHz-to-MHz band
        // those designs actually use.
        let f = frequency_for_inductance(
            VrTopologyKind::Dsch,
            Volts::new(1.0),
            Amps::new(30.0),
            Henries::from_microhenries(0.44),
            &RippleSpec::typical(),
        )
        .unwrap();
        let mhz = f.value() / 1e6;
        assert!((0.05..5.0).contains(&mhz), "DSCH at {mhz:.2} MHz");
    }

    #[test]
    fn smaller_inductors_force_higher_frequency() {
        let spec = RippleSpec::typical();
        let f = |l_uh: f64| {
            frequency_for_inductance(
                VrTopologyKind::Dsch,
                Volts::new(1.0),
                Amps::new(30.0),
                Henries::from_microhenries(l_uh),
                &spec,
            )
            .unwrap()
            .value()
        };
        // Halving L doubles f — §III's "need to be switched faster".
        assert!((f(0.22) / f(0.44) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sizing_scales_inversely_with_frequency() {
        let spec = RippleSpec::typical();
        let s1 = size_passives(
            VrTopologyKind::Dpmih,
            Volts::new(1.0),
            Amps::new(100.0),
            Hertz::from_megahertz(1.0),
            &spec,
        )
        .unwrap();
        let s2 = size_passives(
            VrTopologyKind::Dpmih,
            Volts::new(1.0),
            Amps::new(100.0),
            Hertz::from_megahertz(2.0),
            &spec,
        )
        .unwrap();
        assert!(
            (s1.inductance_per_phase.value() / s2.inductance_per_phase.value() - 2.0).abs() < 1e-9
        );
        assert!((s1.output_capacitance.value() / s2.output_capacitance.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn embedded_inductor_area_matches_current_limit() {
        // 100 A over 4 DPMIH phases → 25 A/phase → 25 mm² at 1 A/mm².
        let s = size_passives(
            VrTopologyKind::Dpmih,
            Volts::new(1.0),
            Amps::new(100.0),
            Hertz::from_megahertz(1.0),
            &RippleSpec::typical(),
        )
        .unwrap();
        assert!((s.inductor_area_per_phase.as_square_millimeters() - 25.0).abs() < 1e-9);
        assert_eq!(s.phases, 4);
    }

    #[test]
    fn tighter_voltage_ripple_needs_more_capacitance() {
        let mk = |vr: f64| {
            size_passives(
                VrTopologyKind::Dsch,
                Volts::new(1.0),
                Amps::new(30.0),
                Hertz::from_megahertz(1.0),
                &RippleSpec {
                    current_ripple_fraction: 0.4,
                    voltage_ripple_fraction: vr,
                },
            )
            .unwrap()
            .output_capacitance
        };
        assert!(mk(0.005).value() > mk(0.02).value());
    }

    #[test]
    fn validation() {
        let spec = RippleSpec::typical();
        assert!(size_passives(
            VrTopologyKind::Dsch,
            Volts::ZERO,
            Amps::new(30.0),
            Hertz::from_megahertz(1.0),
            &spec
        )
        .is_err());
        assert!(size_passives(
            VrTopologyKind::Dsch,
            Volts::new(1.0),
            Amps::new(30.0),
            Hertz::from_megahertz(1.0),
            &RippleSpec {
                current_ripple_fraction: 0.0,
                voltage_ripple_fraction: 0.01
            }
        )
        .is_err());
        assert!(frequency_for_inductance(
            VrTopologyKind::Dsch,
            Volts::new(1.0),
            Amps::new(30.0),
            Henries::ZERO,
            &spec
        )
        .is_err());
        // 3LHD steps to 4.8 V internally, so a 1 V output keeps
        // duty < 1 and sizes fine; an absurd 10 V output does not.
        assert!(size_passives(
            VrTopologyKind::ThreeLevelHybridDickson,
            Volts::new(10.0),
            Amps::new(10.0),
            Hertz::from_megahertz(1.0),
            &spec
        )
        .is_err());
    }
}
