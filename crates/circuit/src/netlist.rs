//! Netlist construction: nodes, elements, and validation.

use crate::CircuitError;
use vpd_units::{Amps, Farads, Henries, Hertz, Ohms, Seconds, Volts};

/// A node handle within one [`Netlist`].
///
/// Node 0 is always ground; use [`Netlist::ground`].
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw index (stable within one netlist).
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

/// An element handle within one [`Netlist`].
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct ElementId(pub(crate) usize);

impl ElementId {
    /// The raw index (stable within one netlist).
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

/// On/off state of an ideal switch.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, Debug, Default, serde::Serialize, serde::Deserialize,
)]
pub enum SwitchState {
    /// Conducting (`r_on`).
    On,
    /// Blocking (`r_off`).
    #[default]
    Off,
}

/// A gate-drive schedule for a switch: periodic PWM, with an optional
/// one-shot **failure event** after which the switch stays off forever.
///
/// The switch is on for the first `duty` fraction of each period, with an
/// optional phase offset in `[0, 1)` of a period. When `off_at` is set,
/// the drive is forced [`SwitchState::Off`] for every `t ≥ off_at` —
/// the "VR dies mid-run" stimulus of dynamic fault studies.
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct PwmSchedule {
    frequency: Hertz,
    duty: f64,
    phase: f64,
    complement: bool,
    #[serde(default)]
    off_at: Option<f64>,
}

impl PwmSchedule {
    /// Creates a schedule.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidDuty`] when `duty` lies outside
    /// `[0, 1]`.
    pub fn new(frequency: Hertz, duty: f64, phase: f64) -> Result<Self, CircuitError> {
        if !(0.0..=1.0).contains(&duty) || !duty.is_finite() {
            return Err(CircuitError::InvalidDuty { duty });
        }
        Ok(Self {
            frequency,
            duty,
            phase: phase.rem_euclid(1.0),
            complement: false,
            off_at: None,
        })
    }

    /// A drive that holds the switch on at every time — the natural base
    /// for [`PwmSchedule::with_failure_at`] when modeling a regulator
    /// that runs until it dies.
    #[must_use]
    pub fn always_on() -> Self {
        Self {
            frequency: Hertz::new(1.0),
            duty: 1.0,
            phase: 0.0,
            complement: false,
            off_at: None,
        }
    }

    /// The complementary (inverted) schedule — for the synchronous switch
    /// of a buck half-bridge.
    ///
    /// Complementing inverts only the periodic drive; a failure event
    /// still forces off (a dead regulator conducts through neither
    /// half-bridge switch).
    #[must_use]
    pub fn complementary(mut self) -> Self {
        self.complement = !self.complement;
        self
    }

    /// The same schedule with a one-shot failure at `at`: the drive is
    /// forced off for every `t ≥ at`, regardless of the periodic
    /// pattern.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] for a negative or
    /// non-finite failure time.
    pub fn with_failure_at(mut self, at: Seconds) -> Result<Self, CircuitError> {
        if !(at.value().is_finite() && at.value() >= 0.0) {
            return Err(CircuitError::InvalidValue {
                element: "switch failure time",
                value: at.value(),
            });
        }
        self.off_at = Some(at.value());
        Ok(self)
    }

    /// Switch state at time `t` (seconds).
    #[must_use]
    pub fn state_at(&self, t: f64) -> SwitchState {
        if self.off_at.is_some_and(|dead| t >= dead) {
            return SwitchState::Off;
        }
        let cycle = (t * self.frequency.value() + self.phase).rem_euclid(1.0);
        let on = cycle < self.duty;
        match on ^ self.complement {
            true => SwitchState::On,
            false => SwitchState::Off,
        }
    }

    /// The schedule's switching frequency.
    #[must_use]
    pub fn frequency(&self) -> Hertz {
        self.frequency
    }

    /// The on-time fraction.
    #[must_use]
    pub fn duty(&self) -> f64 {
        self.duty
    }

    /// The one-shot failure time, if this drive carries one.
    #[must_use]
    pub fn failure_at(&self) -> Option<Seconds> {
        self.off_at.map(Seconds::new)
    }
}

/// What an element is, with its value(s).
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
#[non_exhaustive]
pub enum ElementKind {
    /// Linear resistor.
    Resistor {
        /// Resistance.
        r: Ohms,
    },
    /// Ideal current source driving `i` from terminal `a` to terminal `b`
    /// through the external circuit (injects into `b`).
    CurrentSource {
        /// Source current.
        i: Amps,
    },
    /// A stepping current source: `before` until `at`, `after` from then
    /// on. DC analysis uses `before`; AC treats it as an open (like any
    /// bias current source).
    StepCurrentSource {
        /// Current before the step.
        before: Amps,
        /// Current after the step.
        after: Amps,
        /// Step time.
        at: Seconds,
    },
    /// A ramping current source: `before` until `at`, then a linear
    /// ramp reaching `after` at `at + rise` (an ideal step when
    /// `rise = 0`) — the finite-slew load transient. DC analysis uses
    /// `before`; AC treats it as an open (like any bias current source).
    RampCurrentSource {
        /// Current before the ramp starts.
        before: Amps,
        /// Current once the ramp completes.
        after: Amps,
        /// Ramp start time.
        at: Seconds,
        /// Ramp duration (slew window); `0` degenerates to a step.
        rise: Seconds,
    },
    /// Ideal voltage source: `V(a) − V(b) = v`.
    VoltageSource {
        /// Source voltage.
        v: Volts,
    },
    /// Linear capacitor (open in DC).
    Capacitor {
        /// Capacitance.
        c: Farads,
        /// Initial voltage `V(a) − V(b)` for transient runs.
        v0: Volts,
    },
    /// Linear inductor (short in DC).
    Inductor {
        /// Inductance.
        l: Henries,
        /// Initial current (a→b) for transient runs.
        i0: Amps,
    },
    /// Ideal switch modeled as a two-state resistor.
    Switch {
        /// On resistance.
        r_on: Ohms,
        /// Off resistance.
        r_off: Ohms,
        /// Optional periodic drive; `None` means the switch holds
        /// `initial` forever.
        schedule: Option<PwmSchedule>,
        /// State used for DC and at `t = 0` when no schedule applies.
        initial: SwitchState,
    },
}

/// One placed element: kind + terminals + label.
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct Element {
    /// What the element is.
    pub kind: ElementKind,
    /// First terminal (`+` for sources).
    pub a: NodeId,
    /// Second terminal (`−` for sources).
    pub b: NodeId,
    /// Human-readable label for diagnostics.
    pub label: String,
}

/// A circuit under construction.
///
/// Nodes are created by label via [`Netlist::node`]; elements are added by
/// the typed builder methods, each of which validates its value
/// ([C-VALIDATE]) and returns an [`ElementId`] usable to query branch
/// results after a solve. A full build-and-solve round trip is shown on
/// [`Netlist::voltage_source`].
#[derive(Clone, PartialEq, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Netlist {
    node_labels: Vec<String>,
    elements: Vec<Element>,
}

impl Netlist {
    /// Creates a netlist containing only the ground node.
    #[must_use]
    pub fn new() -> Self {
        Self {
            node_labels: vec!["gnd".to_owned()],
            elements: Vec::new(),
        }
    }

    /// The ground node (reference, 0 V).
    #[must_use]
    pub fn ground(&self) -> NodeId {
        NodeId(0)
    }

    /// Returns the node with this label, creating it if needed.
    ///
    /// The labels `"gnd"` and `"0"` always map to ground.
    pub fn node(&mut self, label: &str) -> NodeId {
        if label == "gnd" || label == "0" {
            return NodeId(0);
        }
        if let Some(idx) = self.node_labels.iter().position(|l| l == label) {
            return NodeId(idx);
        }
        self.node_labels.push(label.to_owned());
        NodeId(self.node_labels.len() - 1)
    }

    /// Creates `n` anonymous nodes.
    pub fn nodes(&mut self, prefix: &str, n: usize) -> Vec<NodeId> {
        (0..n).map(|i| self.node(&format!("{prefix}{i}"))).collect()
    }

    /// Number of nodes, including ground.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_labels.len()
    }

    /// Number of elements.
    #[must_use]
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// The label of a node.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] for a foreign id.
    pub fn node_label(&self, node: NodeId) -> Result<&str, CircuitError> {
        self.node_labels
            .get(node.0)
            .map(String::as_str)
            .ok_or(CircuitError::UnknownNode { index: node.0 })
    }

    /// The elements, in insertion order.
    #[must_use]
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// One element by id.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownElement`] for a foreign id.
    pub fn element(&self, id: ElementId) -> Result<&Element, CircuitError> {
        self.elements
            .get(id.0)
            .ok_or(CircuitError::UnknownElement { index: id.0 })
    }

    /// Adds a resistor between `a` and `b`.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::InvalidValue`] for a non-positive or non-finite
    ///   resistance.
    /// * [`CircuitError::DegenerateElement`] when `a == b`.
    /// * [`CircuitError::UnknownNode`] for foreign node ids.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, r: Ohms) -> Result<ElementId, CircuitError> {
        self.check_positive("resistor", r.value())?;
        self.push(ElementKind::Resistor { r }, a, b, "R")
    }

    /// Adds a current source driving `i` from `a` to `b` through the
    /// external circuit (i.e. injecting `i` into node `b`).
    ///
    /// A negative or zero `i` is allowed (loads can be expressed either
    /// way).
    ///
    /// # Errors
    ///
    /// * [`CircuitError::InvalidValue`] for a non-finite current.
    /// * [`CircuitError::DegenerateElement`] / [`CircuitError::UnknownNode`]
    ///   as for [`Netlist::resistor`].
    pub fn current_source(
        &mut self,
        a: NodeId,
        b: NodeId,
        i: Amps,
    ) -> Result<ElementId, CircuitError> {
        self.check_finite("current source", i.value())?;
        self.push(ElementKind::CurrentSource { i }, a, b, "I")
    }

    /// Adds a stepping current source (`before` until `at`, `after`
    /// afterwards) — the load-transient stimulus for droop studies. DC
    /// analysis uses the pre-step value.
    ///
    /// # Errors
    ///
    /// As for [`Netlist::current_source`], plus
    /// [`CircuitError::InvalidValue`] for a negative or non-finite step
    /// time.
    pub fn step_current_source(
        &mut self,
        a: NodeId,
        b: NodeId,
        before: Amps,
        after: Amps,
        at: Seconds,
    ) -> Result<ElementId, CircuitError> {
        self.check_finite("step current source (before)", before.value())?;
        self.check_finite("step current source (after)", after.value())?;
        if !(at.value().is_finite() && at.value() >= 0.0) {
            return Err(CircuitError::InvalidValue {
                element: "step time",
                value: at.value(),
            });
        }
        self.push(
            ElementKind::StepCurrentSource { before, after, at },
            a,
            b,
            "Istep",
        )
    }

    /// Adds a ramping current source (`before` until `at`, linear to
    /// `after` over `rise`, then `after`) — the finite-di/dt load
    /// transient for slew studies. `rise = 0` degenerates to an ideal
    /// step. DC analysis uses the pre-ramp value.
    ///
    /// # Errors
    ///
    /// As for [`Netlist::step_current_source`], plus
    /// [`CircuitError::InvalidValue`] for a negative or non-finite rise
    /// time.
    pub fn ramp_current_source(
        &mut self,
        a: NodeId,
        b: NodeId,
        before: Amps,
        after: Amps,
        at: Seconds,
        rise: Seconds,
    ) -> Result<ElementId, CircuitError> {
        self.check_finite("ramp current source (before)", before.value())?;
        self.check_finite("ramp current source (after)", after.value())?;
        if !(at.value().is_finite() && at.value() >= 0.0) {
            return Err(CircuitError::InvalidValue {
                element: "ramp start time",
                value: at.value(),
            });
        }
        if !(rise.value().is_finite() && rise.value() >= 0.0) {
            return Err(CircuitError::InvalidValue {
                element: "ramp rise time",
                value: rise.value(),
            });
        }
        self.push(
            ElementKind::RampCurrentSource {
                before,
                after,
                at,
                rise,
            },
            a,
            b,
            "Iramp",
        )
    }

    /// Adds an ideal voltage source with `V(plus) − V(minus) = v`.
    ///
    /// ```
    /// use vpd_circuit::{DcSolver, Netlist};
    /// use vpd_units::{Ohms, Volts};
    ///
    /// # fn main() -> Result<(), vpd_circuit::CircuitError> {
    /// let mut net = Netlist::new();
    /// let vin = net.node("vin");
    /// let out = net.node("out");
    /// net.voltage_source(vin, net.ground(), Volts::new(10.0))?;
    /// net.resistor(vin, out, Ohms::new(1.0))?;
    /// net.resistor(out, net.ground(), Ohms::new(1.0))?;
    /// let sol = DcSolver::new().solve(&net)?;
    /// assert!((sol.voltage(out).value() - 5.0).abs() < 1e-9);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// As for [`Netlist::current_source`].
    pub fn voltage_source(
        &mut self,
        plus: NodeId,
        minus: NodeId,
        v: Volts,
    ) -> Result<ElementId, CircuitError> {
        self.check_finite("voltage source", v.value())?;
        self.push(ElementKind::VoltageSource { v }, plus, minus, "V")
    }

    /// Adds a capacitor (open-circuit in DC) with initial voltage `v0`.
    ///
    /// # Errors
    ///
    /// As for [`Netlist::resistor`].
    pub fn capacitor(
        &mut self,
        a: NodeId,
        b: NodeId,
        c: Farads,
        v0: Volts,
    ) -> Result<ElementId, CircuitError> {
        self.check_positive("capacitor", c.value())?;
        self.push(ElementKind::Capacitor { c, v0 }, a, b, "C")
    }

    /// Adds an inductor (short-circuit in DC) with initial current `i0`.
    ///
    /// # Errors
    ///
    /// As for [`Netlist::resistor`].
    pub fn inductor(
        &mut self,
        a: NodeId,
        b: NodeId,
        l: Henries,
        i0: Amps,
    ) -> Result<ElementId, CircuitError> {
        self.check_positive("inductor", l.value())?;
        self.push(ElementKind::Inductor { l, i0 }, a, b, "L")
    }

    /// Adds an ideal switch modeled as an `r_on`/`r_off` two-state
    /// resistor, optionally driven by a [`PwmSchedule`].
    ///
    /// # Errors
    ///
    /// As for [`Netlist::resistor`] (both resistances must be positive
    /// and finite).
    pub fn switch(
        &mut self,
        a: NodeId,
        b: NodeId,
        r_on: Ohms,
        r_off: Ohms,
        schedule: Option<PwmSchedule>,
        initial: SwitchState,
    ) -> Result<ElementId, CircuitError> {
        self.check_positive("switch r_on", r_on.value())?;
        self.check_positive("switch r_off", r_off.value())?;
        self.push(
            ElementKind::Switch {
                r_on,
                r_off,
                schedule,
                initial,
            },
            a,
            b,
            "S",
        )
    }

    /// Relabels the most recently added element (diagnostics only).
    pub fn label_last(&mut self, label: &str) {
        if let Some(e) = self.elements.last_mut() {
            e.label = label.to_owned();
        }
    }

    /// Changes the resistance of an existing resistor in place.
    ///
    /// Value-only mutation: the topology (nodes, element order,
    /// terminals) is untouched, so compiled solve plans stay valid and
    /// only need a numeric restamp.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::UnknownElement`] for a foreign id.
    /// * [`CircuitError::InvalidValue`] for a non-positive or non-finite
    ///   resistance, or when the element is not a resistor.
    pub fn set_resistance(&mut self, id: ElementId, r: Ohms) -> Result<(), CircuitError> {
        self.check_positive("resistor", r.value())?;
        let e = self
            .elements
            .get_mut(id.0)
            .ok_or(CircuitError::UnknownElement { index: id.0 })?;
        match &mut e.kind {
            ElementKind::Resistor { r: slot } => {
                *slot = r;
                Ok(())
            }
            _ => Err(CircuitError::InvalidValue {
                element: "set_resistance on non-resistor",
                value: r.value(),
            }),
        }
    }

    /// Changes the current of an existing current source in place (see
    /// [`Netlist::set_resistance`] for the restamp contract).
    ///
    /// # Errors
    ///
    /// * [`CircuitError::UnknownElement`] for a foreign id.
    /// * [`CircuitError::InvalidValue`] for a non-finite current, or when
    ///   the element is not a plain current source.
    pub fn set_current(&mut self, id: ElementId, i: Amps) -> Result<(), CircuitError> {
        self.check_finite("current source", i.value())?;
        let e = self
            .elements
            .get_mut(id.0)
            .ok_or(CircuitError::UnknownElement { index: id.0 })?;
        match &mut e.kind {
            ElementKind::CurrentSource { i: slot } => {
                *slot = i;
                Ok(())
            }
            _ => Err(CircuitError::InvalidValue {
                element: "set_current on non-current-source",
                value: i.value(),
            }),
        }
    }

    /// Changes the setpoint of an existing voltage source in place (see
    /// [`Netlist::set_resistance`] for the restamp contract).
    ///
    /// # Errors
    ///
    /// * [`CircuitError::UnknownElement`] for a foreign id.
    /// * [`CircuitError::InvalidValue`] for a non-finite voltage, or when
    ///   the element is not a voltage source.
    pub fn set_voltage(&mut self, id: ElementId, v: Volts) -> Result<(), CircuitError> {
        self.check_finite("voltage source", v.value())?;
        let e = self
            .elements
            .get_mut(id.0)
            .ok_or(CircuitError::UnknownElement { index: id.0 })?;
        match &mut e.kind {
            ElementKind::VoltageSource { v: slot } => {
                *slot = v;
                Ok(())
            }
            _ => Err(CircuitError::InvalidValue {
                element: "set_voltage on non-voltage-source",
                value: v.value(),
            }),
        }
    }

    /// Moves an existing element onto different terminals.
    ///
    /// The node set and element order are unchanged, but the sparsity
    /// pattern is not: compiled solve plans must be recompiled after a
    /// rewire (placement annealers pay one symbolic rebuild per move and
    /// keep everything else).
    ///
    /// # Errors
    ///
    /// * [`CircuitError::UnknownElement`] / [`CircuitError::UnknownNode`]
    ///   for foreign ids.
    /// * [`CircuitError::DegenerateElement`] when `a == b`.
    pub fn rewire(&mut self, id: ElementId, a: NodeId, b: NodeId) -> Result<(), CircuitError> {
        if a.0 >= self.node_labels.len() {
            return Err(CircuitError::UnknownNode { index: a.0 });
        }
        if b.0 >= self.node_labels.len() {
            return Err(CircuitError::UnknownNode { index: b.0 });
        }
        let e = self
            .elements
            .get_mut(id.0)
            .ok_or(CircuitError::UnknownElement { index: id.0 })?;
        if a == b {
            return Err(CircuitError::DegenerateElement {
                label: e.label.clone(),
            });
        }
        e.a = a;
        e.b = b;
        Ok(())
    }

    fn push(
        &mut self,
        kind: ElementKind,
        a: NodeId,
        b: NodeId,
        prefix: &str,
    ) -> Result<ElementId, CircuitError> {
        if a.0 >= self.node_labels.len() {
            return Err(CircuitError::UnknownNode { index: a.0 });
        }
        if b.0 >= self.node_labels.len() {
            return Err(CircuitError::UnknownNode { index: b.0 });
        }
        if a == b {
            return Err(CircuitError::DegenerateElement {
                label: format!("{prefix}{}", self.elements.len()),
            });
        }
        let label = format!("{prefix}{}", self.elements.len());
        self.elements.push(Element { kind, a, b, label });
        Ok(ElementId(self.elements.len() - 1))
    }

    fn check_positive(&self, element: &'static str, value: f64) -> Result<(), CircuitError> {
        if !(value.is_finite() && value > 0.0) {
            return Err(CircuitError::InvalidValue { element, value });
        }
        Ok(())
    }

    fn check_finite(&self, element: &'static str, value: f64) -> Result<(), CircuitError> {
        if !value.is_finite() {
            return Err(CircuitError::InvalidValue { element, value });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_labels_are_deduplicated() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let a2 = net.node("a");
        assert_eq!(a, a2);
        assert_eq!(net.node_count(), 2);
    }

    #[test]
    fn ground_aliases() {
        let mut net = Netlist::new();
        assert_eq!(net.node("gnd"), net.ground());
        assert_eq!(net.node("0"), net.ground());
    }

    #[test]
    fn rejects_negative_resistor() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let g = net.ground();
        assert!(matches!(
            net.resistor(a, g, Ohms::new(-1.0)),
            Err(CircuitError::InvalidValue { .. })
        ));
        assert!(net.resistor(a, g, Ohms::new(f64::NAN)).is_err());
        assert!(net.resistor(a, g, Ohms::ZERO).is_err());
    }

    #[test]
    fn rejects_self_loop() {
        let mut net = Netlist::new();
        let a = net.node("a");
        assert!(matches!(
            net.resistor(a, a, Ohms::new(1.0)),
            Err(CircuitError::DegenerateElement { .. })
        ));
    }

    #[test]
    fn rejects_foreign_node() {
        let mut net = Netlist::new();
        let g = net.ground();
        let bogus = NodeId(99);
        assert!(matches!(
            net.resistor(bogus, g, Ohms::new(1.0)),
            Err(CircuitError::UnknownNode { index: 99 })
        ));
    }

    #[test]
    fn pwm_schedule_states() {
        let sched = PwmSchedule::new(Hertz::new(1.0), 0.25, 0.0).unwrap();
        assert_eq!(sched.state_at(0.1), SwitchState::On);
        assert_eq!(sched.state_at(0.3), SwitchState::Off);
        assert_eq!(sched.state_at(1.1), SwitchState::On); // periodic
        let comp = sched.complementary();
        assert_eq!(comp.state_at(0.1), SwitchState::Off);
        assert_eq!(comp.state_at(0.3), SwitchState::On);
    }

    #[test]
    fn pwm_failure_event_forces_off_from_its_time_on() {
        let sched = PwmSchedule::always_on();
        assert_eq!(sched.state_at(0.0), SwitchState::On);
        assert_eq!(sched.state_at(1e9), SwitchState::On);
        assert_eq!(sched.failure_at(), None);

        let dying = sched.with_failure_at(Seconds::new(0.5)).unwrap();
        assert_eq!(dying.state_at(0.0), SwitchState::On);
        assert_eq!(dying.state_at(0.499), SwitchState::On);
        assert_eq!(dying.state_at(0.5), SwitchState::Off, "inclusive at t");
        assert_eq!(dying.state_at(7.0), SwitchState::Off, "off forever");
        assert_eq!(dying.failure_at(), Some(Seconds::new(0.5)));

        // Failure dominates the periodic pattern and its complement.
        let pwm = PwmSchedule::new(Hertz::new(1.0), 0.25, 0.0)
            .unwrap()
            .with_failure_at(Seconds::new(1.0))
            .unwrap();
        assert_eq!(pwm.state_at(0.1), SwitchState::On);
        assert_eq!(pwm.state_at(1.1), SwitchState::Off);
        assert_eq!(pwm.complementary().state_at(1.3), SwitchState::Off);

        assert!(PwmSchedule::always_on()
            .with_failure_at(Seconds::new(-1.0))
            .is_err());
        assert!(PwmSchedule::always_on()
            .with_failure_at(Seconds::new(f64::NAN))
            .is_err());
    }

    #[test]
    fn pwm_rejects_bad_duty() {
        assert!(PwmSchedule::new(Hertz::new(1.0), 1.5, 0.0).is_err());
        assert!(PwmSchedule::new(Hertz::new(1.0), -0.1, 0.0).is_err());
        assert!(PwmSchedule::new(Hertz::new(1.0), f64::NAN, 0.0).is_err());
    }

    #[test]
    fn pwm_phase_wraps() {
        let sched = PwmSchedule::new(Hertz::new(1.0), 0.5, 1.25).unwrap();
        // phase 1.25 ≡ 0.25: at t=0 the cycle position is 0.25 < 0.5 → on.
        assert_eq!(sched.state_at(0.0), SwitchState::On);
        assert_eq!(sched.state_at(0.5), SwitchState::Off);
    }

    #[test]
    fn value_mutators_update_in_place() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let g = net.ground();
        let r = net.resistor(a, g, Ohms::new(2.0)).unwrap();
        let i = net.current_source(a, g, Amps::new(1.0)).unwrap();
        let v = net.voltage_source(a, g, Volts::new(5.0)).unwrap();

        net.set_resistance(r, Ohms::new(3.0)).unwrap();
        net.set_current(i, Amps::new(-2.0)).unwrap();
        net.set_voltage(v, Volts::new(1.0)).unwrap();

        assert!(matches!(
            net.element(r).unwrap().kind,
            ElementKind::Resistor { r } if (r.value() - 3.0).abs() < 1e-15
        ));
        assert!(matches!(
            net.element(i).unwrap().kind,
            ElementKind::CurrentSource { i } if (i.value() + 2.0).abs() < 1e-15
        ));
        assert!(matches!(
            net.element(v).unwrap().kind,
            ElementKind::VoltageSource { v } if (v.value() - 1.0).abs() < 1e-15
        ));
    }

    #[test]
    fn value_mutators_validate() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let g = net.ground();
        let r = net.resistor(a, g, Ohms::new(2.0)).unwrap();
        let i = net.current_source(a, g, Amps::new(1.0)).unwrap();

        assert!(net.set_resistance(r, Ohms::new(-1.0)).is_err());
        assert!(net.set_resistance(r, Ohms::new(f64::NAN)).is_err());
        assert!(
            net.set_resistance(i, Ohms::new(1.0)).is_err(),
            "kind mismatch"
        );
        assert!(net.set_current(r, Amps::new(1.0)).is_err(), "kind mismatch");
        assert!(net.set_current(i, Amps::new(f64::INFINITY)).is_err());
        assert!(net.set_resistance(ElementId(99), Ohms::new(1.0)).is_err());
    }

    #[test]
    fn rewire_moves_terminals() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        let g = net.ground();
        let r = net.resistor(a, g, Ohms::new(1.0)).unwrap();
        net.rewire(r, b, g).unwrap();
        assert_eq!(net.element(r).unwrap().a, b);
        assert!(net.rewire(r, b, b).is_err(), "self loop");
        assert!(net.rewire(r, NodeId(99), g).is_err(), "foreign node");
        assert!(net.rewire(ElementId(99), a, g).is_err(), "foreign element");
    }

    #[test]
    fn labels_and_lookup() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let id = net.resistor(a, net.ground(), Ohms::new(2.0)).unwrap();
        net.label_last("load");
        assert_eq!(net.element(id).unwrap().label, "load");
        assert_eq!(net.node_label(a).unwrap(), "a");
        assert!(net.node_label(NodeId(42)).is_err());
        assert!(net.element(ElementId(42)).is_err());
    }
}
