//! Circuit-level error type.

use std::fmt;
use vpd_numeric::NumericError;

/// Errors produced while building or solving a circuit.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum CircuitError {
    /// An element referenced a node that does not exist in the netlist.
    UnknownNode {
        /// The raw node index that was out of range.
        index: usize,
    },
    /// An element referenced an element id that does not exist.
    UnknownElement {
        /// The raw element index that was out of range.
        index: usize,
    },
    /// An analysis needed a voltage source but the element, although it
    /// exists, is some other kind (e.g. an AC transfer function driven
    /// from a resistor).
    NotAVoltageSource {
        /// The raw index of the non-source element.
        index: usize,
    },
    /// An element value was non-positive or non-finite
    /// (e.g. a −3 Ω resistor).
    InvalidValue {
        /// Which element kind was being added.
        element: &'static str,
        /// The offending value, in SI units.
        value: f64,
    },
    /// Both terminals of an element were the same node.
    DegenerateElement {
        /// Label of the offending element.
        label: String,
    },
    /// The netlist has no elements to solve.
    EmptyNetlist,
    /// A node has no resistive path to ground, so its voltage is
    /// undefined (the MNA matrix is singular).
    FloatingNode {
        /// Label of a node in the floating component.
        label: String,
    },
    /// The underlying linear solve failed.
    Numeric(NumericError),
    /// Transient settings were invalid (non-positive step or stop time,
    /// or a step larger than the stop time).
    InvalidTimeStep {
        /// Requested step (seconds).
        dt: f64,
        /// Requested stop time (seconds).
        t_stop: f64,
    },
    /// A duty cycle lay outside `[0, 1]`.
    InvalidDuty {
        /// The rejected duty value.
        duty: f64,
    },
    /// A compiled solve plan was applied to a netlist whose topology no
    /// longer matches the one it was compiled from (element count,
    /// terminals, or element kinds changed). Recompile the plan.
    StalePlan {
        /// What changed.
        reason: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownNode { index } => write!(f, "unknown node index {index}"),
            Self::UnknownElement { index } => write!(f, "unknown element index {index}"),
            Self::NotAVoltageSource { index } => {
                write!(f, "element {index} is not a voltage source")
            }
            Self::InvalidValue { element, value } => {
                write!(
                    f,
                    "invalid {element} value {value}; must be positive and finite"
                )
            }
            Self::DegenerateElement { label } => {
                write!(f, "element {label} connects a node to itself")
            }
            Self::EmptyNetlist => write!(f, "netlist has no elements"),
            Self::FloatingNode { label } => {
                write!(f, "node {label} has no resistive path to ground")
            }
            Self::Numeric(e) => write!(f, "linear solve failed: {e}"),
            Self::InvalidTimeStep { dt, t_stop } => {
                write!(f, "invalid transient window: dt = {dt}, t_stop = {t_stop}")
            }
            Self::InvalidDuty { duty } => write!(f, "duty cycle {duty} outside [0, 1]"),
            Self::StalePlan { reason } => {
                write!(f, "solve plan is stale ({reason}); recompile it")
            }
        }
    }
}

impl std::error::Error for CircuitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericError> for CircuitError {
    fn from(e: NumericError) -> Self {
        Self::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_lowercase() {
        let errs: Vec<CircuitError> = vec![
            CircuitError::UnknownNode { index: 7 },
            CircuitError::EmptyNetlist,
            CircuitError::InvalidValue {
                element: "resistor",
                value: -1.0,
            },
            CircuitError::FloatingNode {
                label: "n12".into(),
            },
            CircuitError::InvalidDuty { duty: 1.5 },
        ];
        for e in errs {
            assert!(e.to_string().chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn numeric_error_is_source() {
        use std::error::Error;
        let e = CircuitError::from(NumericError::Singular { pivot: 0 });
        assert!(e.source().is_some());
    }
}
