//! Small-signal AC (phasor) analysis.
//!
//! Builds the complex MNA system at each frequency: resistors stamp
//! `1/R`, capacitors `jωC`, inductors `1/(jωL)`, switches their `t = 0`
//! resistance. DC voltage sources are AC shorts (their constraint rows
//! stay with a zero phasor); DC current sources are AC opens. The two
//! entry points are the PDN designer's staples: driving-point
//! **impedance** at a node and a **transfer function** from a chosen
//! source.

use crate::netlist::{ElementKind, SwitchState};
use crate::{CircuitError, ElementId, Netlist, NodeId};
use vpd_numeric::{Complex, ComplexLu, ComplexMatrix};
use vpd_units::Hertz;

/// One point of an AC sweep.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AcPoint {
    /// Sweep frequency.
    pub frequency: Hertz,
    /// Complex response (impedance in ohms, or dimensionless gain).
    pub response: Complex,
}

impl AcPoint {
    /// Magnitude of the response.
    #[must_use]
    pub fn magnitude(&self) -> f64 {
        self.response.abs()
    }

    /// Phase in degrees.
    #[must_use]
    pub fn phase_degrees(&self) -> f64 {
        self.response.arg().to_degrees()
    }
}

/// Small-signal analysis over a netlist.
#[derive(Clone, Debug)]
pub struct AcAnalysis<'a> {
    net: &'a Netlist,
}

impl<'a> AcAnalysis<'a> {
    /// Wraps a netlist for AC analysis.
    #[must_use]
    pub fn new(net: &'a Netlist) -> Self {
        Self { net }
    }

    /// Driving-point impedance at `node` (vs. ground) across `freqs`:
    /// a 1 A phasor is injected and the node voltage is the impedance.
    ///
    /// ```
    /// use vpd_circuit::{AcAnalysis, Netlist};
    /// use vpd_units::{Farads, Hertz, Ohms, Volts};
    ///
    /// # fn main() -> Result<(), vpd_circuit::CircuitError> {
    /// // 1 µF decap: |Z| = 1/(ωC) ≈ 159 Ω at 1 kHz.
    /// let mut net = Netlist::new();
    /// let n = net.node("pdn");
    /// net.capacitor(n, net.ground(), Farads::from_microfarads(1.0), Volts::ZERO)?;
    /// net.resistor(n, net.ground(), Ohms::new(1e6))?; // dc path
    /// let sweep = AcAnalysis::new(&net)
    ///     .impedance(n, &[Hertz::from_kilohertz(1.0)])?;
    /// assert!((sweep[0].magnitude() - 159.15).abs() < 0.5);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// * [`CircuitError::UnknownNode`] for a foreign node or ground.
    /// * [`CircuitError::InvalidValue`] for a non-positive frequency.
    /// * [`CircuitError::Numeric`] when the complex solve fails.
    pub fn impedance(&self, node: NodeId, freqs: &[Hertz]) -> Result<Vec<AcPoint>, CircuitError> {
        if node.index() == 0 || node.index() >= self.net.node_count() {
            return Err(CircuitError::UnknownNode {
                index: node.index(),
            });
        }
        freqs
            .iter()
            .map(|&f| {
                let x = self.solve(f, Stimulus::CurrentInto(node))?;
                Ok(AcPoint {
                    frequency: f,
                    response: x[node.index() - 1],
                })
            })
            .collect()
    }

    /// Voltage transfer function from a (DC-defined) voltage source to
    /// `output`: the source is driven with a unit phasor, every other
    /// source is shorted.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::UnknownElement`] when `source` is not a voltage
    ///   source of this netlist.
    /// * As for [`AcAnalysis::impedance`] otherwise.
    pub fn transfer(
        &self,
        source: ElementId,
        output: NodeId,
        freqs: &[Hertz],
    ) -> Result<Vec<AcPoint>, CircuitError> {
        let e = self.net.element(source)?;
        if !matches!(e.kind, ElementKind::VoltageSource { .. }) {
            return Err(CircuitError::UnknownElement {
                index: source.index(),
            });
        }
        if output.index() >= self.net.node_count() {
            return Err(CircuitError::UnknownNode {
                index: output.index(),
            });
        }
        freqs
            .iter()
            .map(|&f| {
                let x = self.solve(f, Stimulus::UnitVoltage(source))?;
                let v = if output.index() == 0 {
                    Complex::ZERO
                } else {
                    x[output.index() - 1]
                };
                Ok(AcPoint {
                    frequency: f,
                    response: v,
                })
            })
            .collect()
    }

    /// Assembles and solves the complex MNA system at one frequency.
    /// Returns the unknown vector: node voltages (ground dropped) then
    /// voltage-source currents.
    fn solve(&self, f: Hertz, stimulus: Stimulus) -> Result<Vec<Complex>, CircuitError> {
        if !(f.value() > 0.0 && f.value().is_finite()) {
            return Err(CircuitError::InvalidValue {
                element: "ac frequency",
                value: f.value(),
            });
        }
        let omega = 2.0 * std::f64::consts::PI * f.value();
        let net = self.net;
        let nv = net.node_count() - 1;
        let source_ids: Vec<usize> = net
            .elements()
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.kind, ElementKind::VoltageSource { .. }))
            .map(|(i, _)| i)
            .collect();
        let dim = nv + source_ids.len();
        let mut a = ComplexMatrix::zeros(dim, dim);
        let mut rhs = vec![Complex::ZERO; dim];
        let idx = |n: NodeId| -> Option<usize> {
            let i = n.index();
            (i > 0).then(|| i - 1)
        };
        let stamp_y = |a: &mut ComplexMatrix, na: Option<usize>, nb: Option<usize>, y: Complex| {
            if let Some(i) = na {
                a.add_at(i, i, y);
            }
            if let Some(j) = nb {
                a.add_at(j, j, y);
            }
            if let (Some(i), Some(j)) = (na, nb) {
                a.add_at(i, j, -y);
                a.add_at(j, i, -y);
            }
        };

        let mut src_k = 0;
        for (i, e) in net.elements().iter().enumerate() {
            match &e.kind {
                ElementKind::Resistor { r } => {
                    stamp_y(
                        &mut a,
                        idx(e.a),
                        idx(e.b),
                        Complex::from_real(1.0 / r.value()),
                    );
                }
                ElementKind::Switch {
                    r_on,
                    r_off,
                    schedule,
                    initial,
                } => {
                    let state = schedule.map_or(*initial, |s| s.state_at(0.0));
                    let r = match state {
                        SwitchState::On => r_on.value(),
                        SwitchState::Off => r_off.value(),
                    };
                    stamp_y(&mut a, idx(e.a), idx(e.b), Complex::from_real(1.0 / r));
                }
                ElementKind::Capacitor { c, .. } => {
                    stamp_y(
                        &mut a,
                        idx(e.a),
                        idx(e.b),
                        Complex::new(0.0, omega * c.value()),
                    );
                }
                ElementKind::Inductor { l, .. } => {
                    stamp_y(
                        &mut a,
                        idx(e.a),
                        idx(e.b),
                        Complex::new(0.0, -1.0 / (omega * l.value())),
                    );
                }
                ElementKind::VoltageSource { .. } => {
                    let row = nv + src_k;
                    if let Some(ia) = idx(e.a) {
                        a.add_at(ia, row, Complex::ONE);
                        a.add_at(row, ia, Complex::ONE);
                    }
                    if let Some(ib) = idx(e.b) {
                        a.add_at(ib, row, -Complex::ONE);
                        a.add_at(row, ib, -Complex::ONE);
                    }
                    // AC value: unit for the driven source, short (0)
                    // otherwise.
                    rhs[row] = match stimulus {
                        Stimulus::UnitVoltage(id) if id.index() == i => Complex::ONE,
                        _ => Complex::ZERO,
                    };
                    src_k += 1;
                }
                ElementKind::CurrentSource { .. } | ElementKind::StepCurrentSource { .. } => {
                    // DC bias sources are AC opens.
                }
            }
        }

        if let Stimulus::CurrentInto(node) = stimulus {
            if let Some(i) = idx(node) {
                rhs[i] += Complex::ONE;
            }
        }

        let lu = ComplexLu::new(&a).map_err(CircuitError::from)?;
        lu.solve(&rhs).map_err(CircuitError::from)
    }
}

#[derive(Clone, Copy, Debug)]
enum Stimulus {
    /// 1 A phasor injected into the node.
    CurrentInto(NodeId),
    /// Unit phasor on the given voltage source.
    UnitVoltage(ElementId),
}

/// Logarithmically spaced frequency grid (decade sweep).
///
/// # Panics
///
/// Panics if `points < 2` or the bounds are not positive and ordered.
#[must_use]
pub fn log_sweep(start: Hertz, stop: Hertz, points: usize) -> Vec<Hertz> {
    assert!(points >= 2, "need at least two sweep points");
    assert!(
        start.value() > 0.0 && stop.value() > start.value(),
        "need 0 < start < stop"
    );
    let l0 = start.value().log10();
    let l1 = stop.value().log10();
    (0..points)
        .map(|k| {
            let t = k as f64 / (points - 1) as f64;
            Hertz::new(10f64.powf(l0 + t * (l1 - l0)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpd_units::{Amps, Farads, Henries, Ohms, Volts};

    #[test]
    fn resistor_impedance_is_flat() {
        let mut net = Netlist::new();
        let n = net.node("n");
        net.resistor(n, net.ground(), Ohms::new(42.0)).unwrap();
        let sweep = AcAnalysis::new(&net)
            .impedance(
                n,
                &log_sweep(Hertz::new(1.0), Hertz::from_megahertz(1.0), 5),
            )
            .unwrap();
        for p in sweep {
            assert!((p.magnitude() - 42.0).abs() < 1e-9);
            assert!(p.phase_degrees().abs() < 1e-9);
        }
    }

    #[test]
    fn capacitor_impedance_falls_at_20db_per_decade() {
        let mut net = Netlist::new();
        let n = net.node("n");
        net.capacitor(n, net.ground(), Farads::from_microfarads(1.0), Volts::ZERO)
            .unwrap();
        net.resistor(n, net.ground(), Ohms::new(1e9)).unwrap();
        let ana = AcAnalysis::new(&net);
        let z1 = ana.impedance(n, &[Hertz::from_kilohertz(1.0)]).unwrap()[0].magnitude();
        let z10 = ana.impedance(n, &[Hertz::from_kilohertz(10.0)]).unwrap()[0].magnitude();
        assert!((z1 / z10 - 10.0).abs() < 1e-3);
    }

    #[test]
    fn series_rlc_resonates() {
        // L-C in series to ground through R: |Z| at the node dips to R at
        // f0 = 1/(2π√LC).
        let mut net = Netlist::new();
        let n = net.node("pdn");
        let mid = net.node("mid");
        net.resistor(n, mid, Ohms::from_milliohms(10.0)).unwrap();
        net.inductor(
            mid,
            net.ground(),
            Henries::from_nanohenries(100.0),
            Amps::ZERO,
        )
        .unwrap();
        net.capacitor(
            n,
            net.ground(),
            Farads::from_microfarads(100.0),
            Volts::ZERO,
        )
        .unwrap();
        net.resistor(n, net.ground(), Ohms::new(1e6)).unwrap();
        let ana = AcAnalysis::new(&net);
        // Antiresonance: parallel L (through R) and C peak between the
        // two corners; check the L-branch dominates low f and C high f.
        let lo = ana.impedance(n, &[Hertz::new(100.0)]).unwrap()[0].magnitude();
        let hi = ana.impedance(n, &[Hertz::from_megahertz(100.0)]).unwrap()[0].magnitude();
        let peak_band = ana
            .impedance(
                n,
                &log_sweep(Hertz::from_kilohertz(10.0), Hertz::from_megahertz(10.0), 40),
            )
            .unwrap();
        let peak = peak_band.iter().map(AcPoint::magnitude).fold(0.0, f64::max);
        assert!(peak > lo && peak > hi, "antiresonant peak {peak}");
    }

    #[test]
    fn rc_lowpass_transfer() {
        let mut net = Netlist::new();
        let vin = net.node("vin");
        let out = net.node("out");
        let src = net
            .voltage_source(vin, net.ground(), Volts::new(1.0))
            .unwrap();
        net.resistor(vin, out, Ohms::new(1000.0)).unwrap();
        net.capacitor(
            out,
            net.ground(),
            Farads::from_microfarads(1.0),
            Volts::ZERO,
        )
        .unwrap();
        let ana = AcAnalysis::new(&net);
        // Corner at 1/(2πRC) ≈ 159 Hz: gain 1/√2, phase −45°.
        let corner = Hertz::new(1.0 / (2.0 * std::f64::consts::PI * 1e-3));
        let p = ana.transfer(src, out, &[corner]).unwrap()[0];
        assert!((p.magnitude() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
        assert!((p.phase_degrees() + 45.0).abs() < 1e-6);
        // Well below the corner, gain ≈ 1.
        let dc_ish = ana.transfer(src, out, &[Hertz::new(0.1)]).unwrap()[0];
        assert!((dc_ish.magnitude() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn validation_paths() {
        let mut net = Netlist::new();
        let n = net.node("n");
        net.resistor(n, net.ground(), Ohms::new(1.0)).unwrap();
        let ana = AcAnalysis::new(&net);
        assert!(ana.impedance(net.ground(), &[Hertz::new(1.0)]).is_err());
        assert!(ana.impedance(n, &[Hertz::new(0.0)]).is_err());
        // `transfer` on a non-voltage-source element.
        assert!(ana.transfer(ElementId(0), n, &[Hertz::new(1.0)]).is_err());
    }

    #[test]
    fn log_sweep_shape() {
        let grid = log_sweep(Hertz::new(1.0), Hertz::new(1000.0), 4);
        assert_eq!(grid.len(), 4);
        assert!((grid[1].value() - 10.0).abs() < 1e-9);
        assert!((grid[2].value() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn log_sweep_rejects_single_point() {
        let _ = log_sweep(Hertz::new(1.0), Hertz::new(10.0), 1);
    }
}
