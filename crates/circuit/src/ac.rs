//! Small-signal AC (phasor) analysis.
//!
//! Builds the complex MNA system at each frequency: resistors stamp
//! `1/R`, capacitors `jωC`, inductors `1/(jωL)`, switches their `t = 0`
//! resistance. DC voltage sources are AC shorts (their constraint rows
//! stay with a zero phasor); DC current sources are AC opens. The two
//! entry points are the PDN designer's staples: driving-point
//! **impedance** at a node and a **transfer function** from a chosen
//! source.

use crate::netlist::{ElementKind, SwitchState};
use crate::{CircuitError, ElementId, Netlist, NodeId};
use vpd_numeric::{Complex, ComplexLu, ComplexMatrix};
use vpd_units::{Farads, Henries, Hertz, Ohms};

/// One point of an AC sweep.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AcPoint {
    /// Sweep frequency.
    pub frequency: Hertz,
    /// Complex response (impedance in ohms, or dimensionless gain).
    pub response: Complex,
}

impl AcPoint {
    /// Magnitude of the response.
    #[must_use]
    pub fn magnitude(&self) -> f64 {
        self.response.abs()
    }

    /// Phase in degrees.
    #[must_use]
    pub fn phase_degrees(&self) -> f64 {
        self.response.arg().to_degrees()
    }
}

/// Small-signal analysis over a netlist.
#[derive(Clone, Debug)]
pub struct AcAnalysis<'a> {
    net: &'a Netlist,
}

impl<'a> AcAnalysis<'a> {
    /// Wraps a netlist for AC analysis.
    #[must_use]
    pub fn new(net: &'a Netlist) -> Self {
        Self { net }
    }

    /// Driving-point impedance at `node` (vs. ground) across `freqs`:
    /// a 1 A phasor is injected and the node voltage is the impedance.
    ///
    /// ```
    /// use vpd_circuit::{AcAnalysis, Netlist};
    /// use vpd_units::{Farads, Hertz, Ohms, Volts};
    ///
    /// # fn main() -> Result<(), vpd_circuit::CircuitError> {
    /// // 1 µF decap: |Z| = 1/(ωC) ≈ 159 Ω at 1 kHz.
    /// let mut net = Netlist::new();
    /// let n = net.node("pdn");
    /// net.capacitor(n, net.ground(), Farads::from_microfarads(1.0), Volts::ZERO)?;
    /// net.resistor(n, net.ground(), Ohms::new(1e6))?; // dc path
    /// let sweep = AcAnalysis::new(&net)
    ///     .impedance(n, &[Hertz::from_kilohertz(1.0)])?;
    /// assert!((sweep[0].magnitude() - 159.15).abs() < 0.5);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// * [`CircuitError::UnknownNode`] for a foreign node or ground.
    /// * [`CircuitError::InvalidValue`] for a non-positive frequency.
    /// * [`CircuitError::Numeric`] when the complex solve fails.
    pub fn impedance(&self, node: NodeId, freqs: &[Hertz]) -> Result<Vec<AcPoint>, CircuitError> {
        if node.index() == 0 || node.index() >= self.net.node_count() {
            return Err(CircuitError::UnknownNode {
                index: node.index(),
            });
        }
        freqs
            .iter()
            .map(|&f| {
                let x = self.solve(f, Stimulus::CurrentInto(node))?;
                Ok(AcPoint {
                    frequency: f,
                    response: x[node.index() - 1],
                })
            })
            .collect()
    }

    /// Voltage transfer function from a (DC-defined) voltage source to
    /// `output`: the source is driven with a unit phasor, every other
    /// source is shorted.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::UnknownElement`] when `source` is not an
    ///   element of this netlist.
    /// * [`CircuitError::NotAVoltageSource`] when it exists but is some
    ///   other element kind.
    /// * As for [`AcAnalysis::impedance`] otherwise.
    pub fn transfer(
        &self,
        source: ElementId,
        output: NodeId,
        freqs: &[Hertz],
    ) -> Result<Vec<AcPoint>, CircuitError> {
        let e = self.net.element(source)?;
        if !matches!(e.kind, ElementKind::VoltageSource { .. }) {
            return Err(CircuitError::NotAVoltageSource {
                index: source.index(),
            });
        }
        if output.index() >= self.net.node_count() {
            return Err(CircuitError::UnknownNode {
                index: output.index(),
            });
        }
        freqs
            .iter()
            .map(|&f| {
                let x = self.solve(f, Stimulus::UnitVoltage(source))?;
                let v = if output.index() == 0 {
                    Complex::ZERO
                } else {
                    x[output.index() - 1]
                };
                Ok(AcPoint {
                    frequency: f,
                    response: v,
                })
            })
            .collect()
    }

    /// Assembles and solves the complex MNA system at one frequency.
    /// Returns the unknown vector: node voltages (ground dropped) then
    /// voltage-source currents.
    fn solve(&self, f: Hertz, stimulus: Stimulus) -> Result<Vec<Complex>, CircuitError> {
        if !(f.value() > 0.0 && f.value().is_finite()) {
            return Err(CircuitError::InvalidValue {
                element: "ac frequency",
                value: f.value(),
            });
        }
        let omega = 2.0 * std::f64::consts::PI * f.value();
        let net = self.net;
        let nv = net.node_count() - 1;
        let source_ids: Vec<usize> = net
            .elements()
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.kind, ElementKind::VoltageSource { .. }))
            .map(|(i, _)| i)
            .collect();
        let dim = nv + source_ids.len();
        let mut a = ComplexMatrix::zeros(dim, dim);
        let mut rhs = vec![Complex::ZERO; dim];
        let idx = |n: NodeId| -> Option<usize> {
            let i = n.index();
            (i > 0).then(|| i - 1)
        };
        let stamp_y = |a: &mut ComplexMatrix, na: Option<usize>, nb: Option<usize>, y: Complex| {
            if let Some(i) = na {
                a.add_at(i, i, y);
            }
            if let Some(j) = nb {
                a.add_at(j, j, y);
            }
            if let (Some(i), Some(j)) = (na, nb) {
                a.add_at(i, j, -y);
                a.add_at(j, i, -y);
            }
        };

        let mut src_k = 0;
        for (i, e) in net.elements().iter().enumerate() {
            match &e.kind {
                ElementKind::Resistor { r } => {
                    stamp_y(
                        &mut a,
                        idx(e.a),
                        idx(e.b),
                        Complex::from_real(1.0 / r.value()),
                    );
                }
                ElementKind::Switch {
                    r_on,
                    r_off,
                    schedule,
                    initial,
                } => {
                    let state = schedule.map_or(*initial, |s| s.state_at(0.0));
                    let r = match state {
                        SwitchState::On => r_on.value(),
                        SwitchState::Off => r_off.value(),
                    };
                    stamp_y(&mut a, idx(e.a), idx(e.b), Complex::from_real(1.0 / r));
                }
                ElementKind::Capacitor { c, .. } => {
                    stamp_y(
                        &mut a,
                        idx(e.a),
                        idx(e.b),
                        Complex::new(0.0, omega * c.value()),
                    );
                }
                ElementKind::Inductor { l, .. } => {
                    stamp_y(
                        &mut a,
                        idx(e.a),
                        idx(e.b),
                        Complex::new(0.0, -1.0 / (omega * l.value())),
                    );
                }
                ElementKind::VoltageSource { .. } => {
                    let row = nv + src_k;
                    if let Some(ia) = idx(e.a) {
                        a.add_at(ia, row, Complex::ONE);
                        a.add_at(row, ia, Complex::ONE);
                    }
                    if let Some(ib) = idx(e.b) {
                        a.add_at(ib, row, -Complex::ONE);
                        a.add_at(row, ib, -Complex::ONE);
                    }
                    // AC value: unit for the driven source, short (0)
                    // otherwise.
                    rhs[row] = match stimulus {
                        Stimulus::UnitVoltage(id) if id.index() == i => Complex::ONE,
                        _ => Complex::ZERO,
                    };
                    src_k += 1;
                }
                ElementKind::CurrentSource { .. }
                | ElementKind::StepCurrentSource { .. }
                | ElementKind::RampCurrentSource { .. } => {
                    // DC bias sources are AC opens.
                }
            }
        }

        if let Stimulus::CurrentInto(node) = stimulus {
            if let Some(i) = idx(node) {
                rhs[i] += Complex::ONE;
            }
        }

        let lu = ComplexLu::new(&a).map_err(CircuitError::from)?;
        lu.solve(&rhs).map_err(CircuitError::from)
    }
}

#[derive(Clone, Copy, Debug)]
enum Stimulus {
    /// 1 A phasor injected into the node.
    CurrentInto(NodeId),
    /// Unit phasor on the given voltage source.
    UnitVoltage(ElementId),
}

/// One compiled stamp of the complex MNA system, in netlist element
/// order so a restamp replays exactly the operations a from-scratch
/// assembly would perform.
#[derive(Clone, Copy, Debug)]
enum PlanOp {
    /// A two-terminal admittance between the (ground-dropped) node
    /// indices `a` and `b`.
    Admittance {
        a: Option<usize>,
        b: Option<usize>,
        kind: AdmittanceKind,
    },
    /// A voltage-source constraint row.
    Source {
        /// The element index (matched against the driven source).
        element: usize,
        a: Option<usize>,
        b: Option<usize>,
        row: usize,
    },
}

/// Frequency dependence of a compiled admittance stamp.
#[derive(Clone, Copy, Debug)]
enum AdmittanceKind {
    /// `y = g` (resistors and switches at their `t = 0` state).
    Conductance(f64),
    /// `y = jωc`.
    Capacitance(f64),
    /// `y = −j/(ωl)`.
    Inductance(f64),
}

/// A compiled AC solve plan: the netlist is walked **once** — elements
/// classified, the MNA index map and voltage-source rows fixed — and
/// every frequency point then restamps only values into one reusable
/// [`ComplexMatrix`], factoring with [`ComplexLu::factor_into`] and
/// solving with [`ComplexLu::solve_into`] so a sweep performs **zero
/// allocations per point after warm-up**.
///
/// The plan replays the exact stamp order of [`AcAnalysis`], so the two
/// paths return bitwise-identical [`AcPoint`]s; it is `Clone`, and each
/// point depends only on the compiled values and the frequency, so
/// cloned plans on worker threads produce results identical to a serial
/// sweep.
///
/// ```
/// use vpd_circuit::{AcAnalysis, AcPlan, Netlist};
/// use vpd_units::{Farads, Hertz, Ohms, Volts};
///
/// # fn main() -> Result<(), vpd_circuit::CircuitError> {
/// let mut net = Netlist::new();
/// let n = net.node("pdn");
/// net.capacitor(n, net.ground(), Farads::from_microfarads(1.0), Volts::ZERO)?;
/// net.resistor(n, net.ground(), Ohms::new(1e6))?;
/// let mut plan = AcPlan::compile(&net);
/// let f = Hertz::from_kilohertz(1.0);
/// let fast = plan.impedance_at(n, f)?;
/// let reference = AcAnalysis::new(&net).impedance(n, &[f])?[0];
/// assert_eq!(fast, reference); // bitwise, not approximately
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct AcPlan {
    /// Unknown node voltages (ground dropped).
    nv: usize,
    /// Node count of the compiled netlist, for stimulus validation.
    node_count: usize,
    /// Element count of the compiled netlist, for stimulus validation.
    element_count: usize,
    /// Stamps in element order.
    ops: Vec<PlanOp>,
    /// Element index → op index (`None` for current sources, which
    /// stamp nothing), so value restamps can find their stamp.
    op_index: Vec<Option<usize>>,
    /// Element indices of the voltage sources, in element order.
    sources: Vec<usize>,
    /// Reusable MNA matrix (`dim × dim`).
    matrix: ComplexMatrix,
    /// Reusable right-hand side.
    rhs: Vec<Complex>,
    /// Reusable factorization (matrix + permutation buffers).
    lu: ComplexLu,
    /// Reusable solution buffer.
    x: Vec<Complex>,
}

impl AcPlan {
    /// Compiles the netlist into a reusable plan. Switches are frozen
    /// at their `t = 0` state, exactly as [`AcAnalysis`] treats them.
    #[must_use]
    pub fn compile(net: &Netlist) -> Self {
        vpd_obs::incr("ac.plan_builds");
        let nv = net.node_count() - 1;
        let idx = |n: NodeId| -> Option<usize> {
            let i = n.index();
            (i > 0).then(|| i - 1)
        };
        let mut sources = Vec::new();
        let mut ops = Vec::with_capacity(net.elements().len());
        let mut op_index = Vec::with_capacity(net.elements().len());
        for (i, e) in net.elements().iter().enumerate() {
            let (a, b) = (idx(e.a), idx(e.b));
            op_index.push(match e.kind {
                ElementKind::CurrentSource { .. }
                | ElementKind::StepCurrentSource { .. }
                | ElementKind::RampCurrentSource { .. } => None,
                _ => Some(ops.len()),
            });
            match &e.kind {
                ElementKind::Resistor { r } => ops.push(PlanOp::Admittance {
                    a,
                    b,
                    kind: AdmittanceKind::Conductance(1.0 / r.value()),
                }),
                ElementKind::Switch {
                    r_on,
                    r_off,
                    schedule,
                    initial,
                } => {
                    let state = schedule.map_or(*initial, |s| s.state_at(0.0));
                    let r = match state {
                        SwitchState::On => r_on.value(),
                        SwitchState::Off => r_off.value(),
                    };
                    ops.push(PlanOp::Admittance {
                        a,
                        b,
                        kind: AdmittanceKind::Conductance(1.0 / r),
                    });
                }
                ElementKind::Capacitor { c, .. } => ops.push(PlanOp::Admittance {
                    a,
                    b,
                    kind: AdmittanceKind::Capacitance(c.value()),
                }),
                ElementKind::Inductor { l, .. } => ops.push(PlanOp::Admittance {
                    a,
                    b,
                    kind: AdmittanceKind::Inductance(l.value()),
                }),
                ElementKind::VoltageSource { .. } => {
                    ops.push(PlanOp::Source {
                        element: i,
                        a,
                        b,
                        row: nv + sources.len(),
                    });
                    sources.push(i);
                }
                ElementKind::CurrentSource { .. }
                | ElementKind::StepCurrentSource { .. }
                | ElementKind::RampCurrentSource { .. } => {
                    // DC bias sources are AC opens: no stamp.
                }
            }
        }
        let dim = nv + sources.len();
        Self {
            nv,
            node_count: net.node_count(),
            element_count: net.elements().len(),
            ops,
            op_index,
            sources,
            matrix: ComplexMatrix::zeros(dim, dim),
            rhs: vec![Complex::ZERO; dim],
            lu: ComplexLu::new(&ComplexMatrix::zeros(0, 0)).expect("0×0 factors trivially"),
            x: Vec::with_capacity(dim),
        }
    }

    /// The compiled system dimension (unknown voltages plus source
    /// currents).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.nv + self.sources.len()
    }

    /// The compiled admittance stamp for `element`, for value restamps.
    fn stamp_mut(
        &mut self,
        element: ElementId,
        what: &'static str,
        value: f64,
    ) -> Result<&mut AdmittanceKind, CircuitError> {
        if element.index() >= self.element_count {
            return Err(CircuitError::UnknownElement {
                index: element.index(),
            });
        }
        let Some(slot) = self.op_index[element.index()] else {
            return Err(CircuitError::InvalidValue {
                element: what,
                value,
            });
        };
        match &mut self.ops[slot] {
            PlanOp::Admittance { kind, .. } => Ok(kind),
            PlanOp::Source { .. } => Err(CircuitError::InvalidValue {
                element: what,
                value,
            }),
        }
    }

    /// Restamps a compiled conductance stamp (a resistor, or a switch
    /// frozen at `t = 0`) to resistance `r`, baking `1/r` exactly as
    /// [`AcPlan::compile`] would, so a restamped plan is
    /// bitwise-identical to one compiled from the edited netlist.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::UnknownElement`] for a foreign element id.
    /// * [`CircuitError::InvalidValue`] when the element's stamp is not
    ///   a conductance, or `r` is non-positive or non-finite.
    pub fn set_resistance(&mut self, element: ElementId, r: Ohms) -> Result<(), CircuitError> {
        if !(r.value() > 0.0 && r.value().is_finite()) {
            return Err(CircuitError::InvalidValue {
                element: "ac set_resistance",
                value: r.value(),
            });
        }
        match self.stamp_mut(element, "set_resistance on non-conductance", r.value())? {
            AdmittanceKind::Conductance(g) => {
                *g = 1.0 / r.value();
                Ok(())
            }
            _ => Err(CircuitError::InvalidValue {
                element: "set_resistance on non-conductance",
                value: r.value(),
            }),
        }
    }

    /// Restamps a compiled capacitor stamp to capacitance `c`, exactly
    /// as [`AcPlan::compile`] would bake it.
    ///
    /// # Errors
    ///
    /// As for [`AcPlan::set_resistance`], for capacitor stamps.
    pub fn set_capacitance(&mut self, element: ElementId, c: Farads) -> Result<(), CircuitError> {
        if !(c.value() > 0.0 && c.value().is_finite()) {
            return Err(CircuitError::InvalidValue {
                element: "ac set_capacitance",
                value: c.value(),
            });
        }
        match self.stamp_mut(element, "set_capacitance on non-capacitor", c.value())? {
            AdmittanceKind::Capacitance(v) => {
                *v = c.value();
                Ok(())
            }
            _ => Err(CircuitError::InvalidValue {
                element: "set_capacitance on non-capacitor",
                value: c.value(),
            }),
        }
    }

    /// Restamps a compiled inductor stamp to inductance `l`, exactly
    /// as [`AcPlan::compile`] would bake it.
    ///
    /// # Errors
    ///
    /// As for [`AcPlan::set_resistance`], for inductor stamps.
    pub fn set_inductance(&mut self, element: ElementId, l: Henries) -> Result<(), CircuitError> {
        if !(l.value() > 0.0 && l.value().is_finite()) {
            return Err(CircuitError::InvalidValue {
                element: "ac set_inductance",
                value: l.value(),
            });
        }
        match self.stamp_mut(element, "set_inductance on non-inductor", l.value())? {
            AdmittanceKind::Inductance(v) => {
                *v = l.value();
                Ok(())
            }
            _ => Err(CircuitError::InvalidValue {
                element: "set_inductance on non-inductor",
                value: l.value(),
            }),
        }
    }

    /// Driving-point impedance at `node` (vs. ground) at one frequency.
    ///
    /// # Errors
    ///
    /// As for [`AcAnalysis::impedance`].
    pub fn impedance_at(&mut self, node: NodeId, f: Hertz) -> Result<AcPoint, CircuitError> {
        if node.index() == 0 || node.index() >= self.node_count {
            return Err(CircuitError::UnknownNode {
                index: node.index(),
            });
        }
        self.solve_at(f, Stimulus::CurrentInto(node))?;
        Ok(AcPoint {
            frequency: f,
            response: self.x[node.index() - 1],
        })
    }

    /// Driving-point impedance across `freqs`, restamping per point.
    ///
    /// # Errors
    ///
    /// As for [`AcAnalysis::impedance`].
    pub fn impedance(
        &mut self,
        node: NodeId,
        freqs: &[Hertz],
    ) -> Result<Vec<AcPoint>, CircuitError> {
        freqs.iter().map(|&f| self.impedance_at(node, f)).collect()
    }

    /// Voltage transfer function from a voltage source to `output` at
    /// one frequency.
    ///
    /// # Errors
    ///
    /// As for [`AcAnalysis::transfer`].
    pub fn transfer_at(
        &mut self,
        source: ElementId,
        output: NodeId,
        f: Hertz,
    ) -> Result<AcPoint, CircuitError> {
        if source.index() >= self.element_count {
            return Err(CircuitError::UnknownElement {
                index: source.index(),
            });
        }
        if !self.sources.contains(&source.index()) {
            return Err(CircuitError::NotAVoltageSource {
                index: source.index(),
            });
        }
        if output.index() >= self.node_count {
            return Err(CircuitError::UnknownNode {
                index: output.index(),
            });
        }
        self.solve_at(f, Stimulus::UnitVoltage(source))?;
        let v = if output.index() == 0 {
            Complex::ZERO
        } else {
            self.x[output.index() - 1]
        };
        Ok(AcPoint {
            frequency: f,
            response: v,
        })
    }

    /// Voltage transfer function across `freqs`, restamping per point.
    ///
    /// # Errors
    ///
    /// As for [`AcAnalysis::transfer`].
    pub fn transfer(
        &mut self,
        source: ElementId,
        output: NodeId,
        freqs: &[Hertz],
    ) -> Result<Vec<AcPoint>, CircuitError> {
        freqs
            .iter()
            .map(|&f| self.transfer_at(source, output, f))
            .collect()
    }

    /// Restamps, refactors, and solves at one frequency into the
    /// plan's buffers, leaving the solution in `self.x`.
    fn solve_at(&mut self, f: Hertz, stimulus: Stimulus) -> Result<(), CircuitError> {
        if !(f.value() > 0.0 && f.value().is_finite()) {
            return Err(CircuitError::InvalidValue {
                element: "ac frequency",
                value: f.value(),
            });
        }
        vpd_obs::incr("ac.points");
        let omega = 2.0 * std::f64::consts::PI * f.value();
        let a = &mut self.matrix;
        a.fill(Complex::ZERO);
        self.rhs.fill(Complex::ZERO);
        for op in &self.ops {
            match *op {
                PlanOp::Admittance { a: na, b: nb, kind } => {
                    let y = match kind {
                        AdmittanceKind::Conductance(g) => Complex::from_real(g),
                        AdmittanceKind::Capacitance(c) => Complex::new(0.0, omega * c),
                        AdmittanceKind::Inductance(l) => Complex::new(0.0, -1.0 / (omega * l)),
                    };
                    if let Some(i) = na {
                        a.add_at(i, i, y);
                    }
                    if let Some(j) = nb {
                        a.add_at(j, j, y);
                    }
                    if let (Some(i), Some(j)) = (na, nb) {
                        a.add_at(i, j, -y);
                        a.add_at(j, i, -y);
                    }
                }
                PlanOp::Source {
                    element,
                    a: na,
                    b: nb,
                    row,
                } => {
                    if let Some(ia) = na {
                        a.add_at(ia, row, Complex::ONE);
                        a.add_at(row, ia, Complex::ONE);
                    }
                    if let Some(ib) = nb {
                        a.add_at(ib, row, -Complex::ONE);
                        a.add_at(row, ib, -Complex::ONE);
                    }
                    self.rhs[row] = match stimulus {
                        Stimulus::UnitVoltage(id) if id.index() == element => Complex::ONE,
                        _ => Complex::ZERO,
                    };
                }
            }
        }
        if let Stimulus::CurrentInto(node) = stimulus {
            if node.index() > 0 {
                self.rhs[node.index() - 1] += Complex::ONE;
            }
        }
        let _span = vpd_obs::span("ac.factor_ns");
        vpd_obs::incr("ac.factorizations");
        self.lu
            .factor_into(&self.matrix)
            .map_err(CircuitError::from)?;
        self.lu
            .solve_into(&self.rhs, &mut self.x)
            .map_err(CircuitError::from)
    }
}

/// Logarithmically spaced frequency grid (decade sweep).
///
/// # Panics
///
/// Panics if `points < 2` or the bounds are not positive and ordered;
/// use [`log_sweep_checked`] for user-supplied inputs.
#[must_use]
pub fn log_sweep(start: Hertz, stop: Hertz, points: usize) -> Vec<Hertz> {
    assert!(points >= 2, "need at least two sweep points");
    assert!(
        start.value() > 0.0 && stop.value() > start.value(),
        "need 0 < start < stop"
    );
    log_sweep_checked(start, stop, points).expect("bounds validated above")
}

/// Logarithmically spaced frequency grid (decade sweep), validating
/// instead of panicking, so CLI-reachable inputs return typed errors.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidValue`] when `points < 2`, either
/// bound is non-finite or non-positive, or `stop ≤ start`.
pub fn log_sweep_checked(
    start: Hertz,
    stop: Hertz,
    points: usize,
) -> Result<Vec<Hertz>, CircuitError> {
    if points < 2 {
        return Err(CircuitError::InvalidValue {
            element: "sweep point count (need at least 2)",
            value: points as f64,
        });
    }
    if !(start.value() > 0.0 && start.value().is_finite()) {
        return Err(CircuitError::InvalidValue {
            element: "sweep start frequency",
            value: start.value(),
        });
    }
    if !(stop.value() > start.value() && stop.value().is_finite()) {
        return Err(CircuitError::InvalidValue {
            element: "sweep stop frequency (need start < stop)",
            value: stop.value(),
        });
    }
    let l0 = start.value().log10();
    let l1 = stop.value().log10();
    Ok((0..points)
        .map(|k| {
            let t = k as f64 / (points - 1) as f64;
            Hertz::new(10f64.powf(l0 + t * (l1 - l0)))
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpd_units::{Amps, Farads, Henries, Ohms, Volts};

    #[test]
    fn resistor_impedance_is_flat() {
        let mut net = Netlist::new();
        let n = net.node("n");
        net.resistor(n, net.ground(), Ohms::new(42.0)).unwrap();
        let sweep = AcAnalysis::new(&net)
            .impedance(
                n,
                &log_sweep(Hertz::new(1.0), Hertz::from_megahertz(1.0), 5),
            )
            .unwrap();
        for p in sweep {
            assert!((p.magnitude() - 42.0).abs() < 1e-9);
            assert!(p.phase_degrees().abs() < 1e-9);
        }
    }

    #[test]
    fn capacitor_impedance_falls_at_20db_per_decade() {
        let mut net = Netlist::new();
        let n = net.node("n");
        net.capacitor(n, net.ground(), Farads::from_microfarads(1.0), Volts::ZERO)
            .unwrap();
        net.resistor(n, net.ground(), Ohms::new(1e9)).unwrap();
        let ana = AcAnalysis::new(&net);
        let z1 = ana.impedance(n, &[Hertz::from_kilohertz(1.0)]).unwrap()[0].magnitude();
        let z10 = ana.impedance(n, &[Hertz::from_kilohertz(10.0)]).unwrap()[0].magnitude();
        assert!((z1 / z10 - 10.0).abs() < 1e-3);
    }

    #[test]
    fn series_rlc_resonates() {
        // L-C in series to ground through R: |Z| at the node dips to R at
        // f0 = 1/(2π√LC).
        let mut net = Netlist::new();
        let n = net.node("pdn");
        let mid = net.node("mid");
        net.resistor(n, mid, Ohms::from_milliohms(10.0)).unwrap();
        net.inductor(
            mid,
            net.ground(),
            Henries::from_nanohenries(100.0),
            Amps::ZERO,
        )
        .unwrap();
        net.capacitor(
            n,
            net.ground(),
            Farads::from_microfarads(100.0),
            Volts::ZERO,
        )
        .unwrap();
        net.resistor(n, net.ground(), Ohms::new(1e6)).unwrap();
        let ana = AcAnalysis::new(&net);
        // Antiresonance: parallel L (through R) and C peak between the
        // two corners; check the L-branch dominates low f and C high f.
        let lo = ana.impedance(n, &[Hertz::new(100.0)]).unwrap()[0].magnitude();
        let hi = ana.impedance(n, &[Hertz::from_megahertz(100.0)]).unwrap()[0].magnitude();
        let peak_band = ana
            .impedance(
                n,
                &log_sweep(Hertz::from_kilohertz(10.0), Hertz::from_megahertz(10.0), 40),
            )
            .unwrap();
        let peak = peak_band.iter().map(AcPoint::magnitude).fold(0.0, f64::max);
        assert!(peak > lo && peak > hi, "antiresonant peak {peak}");
    }

    #[test]
    fn rc_lowpass_transfer() {
        let mut net = Netlist::new();
        let vin = net.node("vin");
        let out = net.node("out");
        let src = net
            .voltage_source(vin, net.ground(), Volts::new(1.0))
            .unwrap();
        net.resistor(vin, out, Ohms::new(1000.0)).unwrap();
        net.capacitor(
            out,
            net.ground(),
            Farads::from_microfarads(1.0),
            Volts::ZERO,
        )
        .unwrap();
        let ana = AcAnalysis::new(&net);
        // Corner at 1/(2πRC) ≈ 159 Hz: gain 1/√2, phase −45°.
        let corner = Hertz::new(1.0 / (2.0 * std::f64::consts::PI * 1e-3));
        let p = ana.transfer(src, out, &[corner]).unwrap()[0];
        assert!((p.magnitude() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
        assert!((p.phase_degrees() + 45.0).abs() < 1e-6);
        // Well below the corner, gain ≈ 1.
        let dc_ish = ana.transfer(src, out, &[Hertz::new(0.1)]).unwrap()[0];
        assert!((dc_ish.magnitude() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn validation_paths() {
        let mut net = Netlist::new();
        let n = net.node("n");
        net.resistor(n, net.ground(), Ohms::new(1.0)).unwrap();
        let ana = AcAnalysis::new(&net);
        assert!(ana.impedance(net.ground(), &[Hertz::new(1.0)]).is_err());
        assert!(ana.impedance(n, &[Hertz::new(0.0)]).is_err());
        // `transfer` on a non-voltage-source element.
        assert!(ana.transfer(ElementId(0), n, &[Hertz::new(1.0)]).is_err());
    }

    #[test]
    fn log_sweep_shape() {
        let grid = log_sweep(Hertz::new(1.0), Hertz::new(1000.0), 4);
        assert_eq!(grid.len(), 4);
        assert!((grid[1].value() - 10.0).abs() < 1e-9);
        assert!((grid[2].value() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn log_sweep_rejects_single_point() {
        let _ = log_sweep(Hertz::new(1.0), Hertz::new(10.0), 1);
    }

    #[test]
    fn log_sweep_checked_rejects_bad_inputs_with_typed_errors() {
        let ok = log_sweep_checked(Hertz::new(1.0), Hertz::new(1000.0), 4).unwrap();
        assert_eq!(ok, log_sweep(Hertz::new(1.0), Hertz::new(1000.0), 4));
        for (start, stop, points) in [
            (1.0, 10.0, 0),
            (1.0, 10.0, 1),
            (0.0, 10.0, 5),
            (-2.0, 10.0, 5),
            (f64::NAN, 10.0, 5),
            (10.0, 10.0, 5),
            (10.0, 1.0, 5),
            (1.0, f64::INFINITY, 5),
            (1.0, f64::NAN, 5),
        ] {
            let got = log_sweep_checked(Hertz::new(start), Hertz::new(stop), points);
            assert!(
                matches!(got, Err(CircuitError::InvalidValue { .. })),
                "({start}, {stop}, {points}) must be rejected, got {got:?}"
            );
        }
    }

    /// The A0-style RLC ladder used by the golden plan-vs-analysis
    /// tests: voltage source behind an RL, two decap stages, a load
    /// node.
    fn ladder() -> (Netlist, NodeId, ElementId) {
        let mut net = Netlist::new();
        let vr = net.node("vr");
        let board = net.node("board");
        let die = net.node("die");
        let g = net.ground();
        let src = net.voltage_source(vr, g, Volts::new(1.0)).unwrap();
        net.resistor(vr, board, Ohms::from_milliohms(0.5)).unwrap();
        net.inductor(board, die, Henries::from_nanohenries(15.0), Amps::ZERO)
            .unwrap();
        let bulk = net.node("bulk");
        net.capacitor(board, bulk, Farads::from_microfarads(200.0), Volts::ZERO)
            .unwrap();
        net.resistor(bulk, g, Ohms::from_milliohms(0.2)).unwrap();
        net.capacitor(die, g, Farads::from_microfarads(2.0), Volts::ZERO)
            .unwrap();
        net.resistor(die, g, Ohms::new(1e4)).unwrap();
        (net, die, src)
    }

    #[test]
    fn plan_impedance_is_bitwise_identical_to_analysis() {
        let (net, die, _) = ladder();
        let freqs = log_sweep(Hertz::new(100.0), Hertz::new(1e9), 60);
        let reference = AcAnalysis::new(&net).impedance(die, &freqs).unwrap();
        let mut plan = AcPlan::compile(&net);
        let fast = plan.impedance(die, &freqs).unwrap();
        assert_eq!(fast, reference);
        // A second pass through the same warm buffers must not drift.
        assert_eq!(plan.impedance(die, &freqs).unwrap(), reference);
    }

    #[test]
    fn plan_transfer_is_bitwise_identical_to_analysis() {
        let (net, die, src) = ladder();
        let freqs = log_sweep(Hertz::new(100.0), Hertz::new(1e8), 30);
        let reference = AcAnalysis::new(&net).transfer(src, die, &freqs).unwrap();
        let mut plan = AcPlan::compile(&net);
        assert_eq!(plan.transfer(src, die, &freqs).unwrap(), reference);
    }

    #[test]
    fn plan_matches_analytic_rc_answers() {
        // 1 µF to ground: |Z| = 1/(ωC) ≈ 159 Ω at 1 kHz, phase −90°.
        let mut net = Netlist::new();
        let n = net.node("n");
        net.capacitor(n, net.ground(), Farads::from_microfarads(1.0), Volts::ZERO)
            .unwrap();
        net.resistor(n, net.ground(), Ohms::new(1e9)).unwrap();
        let mut plan = AcPlan::compile(&net);
        let p = plan.impedance_at(n, Hertz::from_kilohertz(1.0)).unwrap();
        assert!((p.magnitude() - 159.15).abs() < 0.5);
        assert!((p.phase_degrees() + 90.0).abs() < 0.1);
    }

    #[test]
    fn plan_validation_matches_analysis() {
        let (net, die, _) = ladder();
        let mut plan = AcPlan::compile(&net);
        assert!(matches!(
            plan.impedance_at(net.ground(), Hertz::new(1.0)),
            Err(CircuitError::UnknownNode { .. })
        ));
        assert!(matches!(
            plan.impedance_at(die, Hertz::new(0.0)),
            Err(CircuitError::InvalidValue { .. })
        ));
        assert!(matches!(
            plan.impedance_at(die, Hertz::new(f64::NAN)),
            Err(CircuitError::InvalidValue { .. })
        ));
        // Element 1 is the series resistor: present, but not a source.
        assert!(matches!(
            plan.transfer_at(ElementId(1), die, Hertz::new(1.0)),
            Err(CircuitError::NotAVoltageSource { .. })
        ));
        assert!(matches!(
            plan.transfer_at(ElementId(999), die, Hertz::new(1.0)),
            Err(CircuitError::UnknownElement { .. })
        ));
    }

    #[test]
    fn analysis_transfer_reports_precise_error_kinds() {
        let (net, die, _) = ladder();
        let ana = AcAnalysis::new(&net);
        // Exists but is a resistor → NotAVoltageSource, not
        // UnknownElement (the old misleading diagnostic).
        assert!(matches!(
            ana.transfer(ElementId(1), die, &[Hertz::new(1.0)]),
            Err(CircuitError::NotAVoltageSource { index: 1 })
        ));
        assert!(matches!(
            ana.transfer(ElementId(999), die, &[Hertz::new(1.0)]),
            Err(CircuitError::UnknownElement { .. })
        ));
    }

    #[test]
    fn value_restamp_is_bitwise_identical_to_fresh_compile() {
        // Build the same ladder twice: one plan restamped to the
        // degraded values, one compiled from a netlist carrying them
        // from the start. Every sweep point must agree bitwise.
        let build = |r_series: Ohms, l_series: Henries, c_bulk: Farads| {
            let mut net = Netlist::new();
            let vr = net.node("vr");
            let board = net.node("board");
            let die = net.node("die");
            let bulk = net.node("bulk");
            let g = net.ground();
            net.voltage_source(vr, g, Volts::new(1.0)).unwrap();
            let r = net.resistor(vr, board, r_series).unwrap();
            let l = net.inductor(board, die, l_series, Amps::ZERO).unwrap();
            let c = net.capacitor(board, bulk, c_bulk, Volts::ZERO).unwrap();
            net.resistor(bulk, g, Ohms::from_milliohms(0.2)).unwrap();
            net.resistor(die, g, Ohms::new(1e4)).unwrap();
            (net, die, r, l, c)
        };
        let (nominal, die, r, l, c) = build(
            Ohms::from_milliohms(0.5),
            Henries::from_nanohenries(15.0),
            Farads::from_microfarads(200.0),
        );
        let (r2, l2, c2) = (
            Ohms::from_milliohms(2.5),
            Henries::from_nanohenries(45.0),
            Farads::from_microfarads(50.0),
        );
        let (faulted, die2, ..) = build(r2, l2, c2);
        assert_eq!(die, die2);
        let mut restamped = AcPlan::compile(&nominal);
        restamped.set_resistance(r, r2).unwrap();
        restamped.set_inductance(l, l2).unwrap();
        restamped.set_capacitance(c, c2).unwrap();
        let mut scratch = AcPlan::compile(&faulted);
        let freqs = log_sweep(Hertz::new(1e3), Hertz::new(1e9), 40);
        assert_eq!(
            restamped.impedance(die, &freqs).unwrap(),
            scratch.impedance(die, &freqs).unwrap()
        );
    }

    #[test]
    fn value_restamp_rejects_bad_targets_and_values() {
        let mut net = Netlist::new();
        let n = net.node("n");
        let g = net.ground();
        let src = net.voltage_source(n, g, Volts::new(1.0)).unwrap();
        let r = net.resistor(n, g, Ohms::new(1.0)).unwrap();
        let c = net
            .capacitor(n, g, Farads::from_microfarads(1.0), Volts::ZERO)
            .unwrap();
        let i = net.current_source(n, g, Amps::new(1.0)).unwrap();
        let mut plan = AcPlan::compile(&net);
        // Kind mismatches.
        assert!(matches!(
            plan.set_resistance(c, Ohms::new(1.0)),
            Err(CircuitError::InvalidValue { .. })
        ));
        assert!(matches!(
            plan.set_capacitance(r, Farads::new(1e-6)),
            Err(CircuitError::InvalidValue { .. })
        ));
        assert!(matches!(
            plan.set_inductance(r, Henries::new(1e-9)),
            Err(CircuitError::InvalidValue { .. })
        ));
        // Sources carry no admittance stamp at all.
        assert!(matches!(
            plan.set_resistance(src, Ohms::new(1.0)),
            Err(CircuitError::InvalidValue { .. })
        ));
        assert!(matches!(
            plan.set_resistance(i, Ohms::new(1.0)),
            Err(CircuitError::InvalidValue { .. })
        ));
        // Foreign ids and non-physical values.
        assert!(matches!(
            plan.set_resistance(ElementId(999), Ohms::new(1.0)),
            Err(CircuitError::UnknownElement { .. })
        ));
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(plan.set_resistance(r, Ohms::new(bad)).is_err());
            assert!(plan.set_capacitance(c, Farads::new(bad)).is_err());
        }
    }

    #[test]
    fn cloned_plans_solve_independently_and_identically() {
        let (net, die, _) = ladder();
        let freqs = log_sweep(Hertz::new(1e3), Hertz::new(1e8), 16);
        let mut plan = AcPlan::compile(&net);
        let mut clone = plan.clone();
        // Interleave solves in opposite orders; every point must agree.
        let forward: Vec<AcPoint> = freqs
            .iter()
            .map(|&f| plan.impedance_at(die, f).unwrap())
            .collect();
        let backward: Vec<AcPoint> = freqs
            .iter()
            .rev()
            .map(|&f| clone.impedance_at(die, f).unwrap())
            .collect();
        for (p, q) in forward.iter().zip(backward.iter().rev()) {
            assert_eq!(p, q);
        }
    }
}
