//! Backward-Euler transient simulation with switched elements.
//!
//! Reactive elements are replaced by their backward-Euler companion
//! models each step; switches follow their [`PwmSchedule`]. Because the
//! conductance matrix only changes when a switch changes state, LU
//! factorizations are cached per switch configuration — a multi-phase
//! converter with `k` switches re-factors at most `2^k` times, not once
//! per step.

use crate::netlist::{ElementKind, SwitchState};
use crate::{CircuitError, ElementId, Netlist, NodeId};
use std::collections::HashMap;
use vpd_numeric::{DenseMatrix, LuFactor};
use vpd_units::Seconds;

/// Transient run settings.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TransientSettings {
    /// Simulation stop time.
    pub t_stop: Seconds,
    /// Fixed time step.
    pub dt: Seconds,
}

impl TransientSettings {
    /// Creates settings, validating the window.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidTimeStep`] when either time is
    /// non-positive or `dt > t_stop`.
    pub fn new(t_stop: Seconds, dt: Seconds) -> Result<Self, CircuitError> {
        if !(t_stop.value() > 0.0 && dt.value() > 0.0 && dt.value() <= t_stop.value()) {
            return Err(CircuitError::InvalidTimeStep {
                dt: dt.value(),
                t_stop: t_stop.value(),
            });
        }
        Ok(Self { t_stop, dt })
    }
}

/// Recorded waveforms from a transient run.
#[derive(Clone, PartialEq, Debug)]
pub struct TransientResult {
    times: Vec<f64>,
    /// `node_v[node][step]`
    node_v: Vec<Vec<f64>>,
    /// `element_i[element][step]`, current `a → b` through the element.
    element_i: Vec<Vec<f64>>,
}

impl TransientResult {
    /// Sample times (seconds).
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Voltage waveform of a node.
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> &[f64] {
        &self.node_v[node.index()]
    }

    /// Current waveform of an element (`a → b`).
    #[must_use]
    pub fn current(&self, element: ElementId) -> &[f64] {
        &self.element_i[element.index()]
    }

    /// The trailing window covering the last `fraction` of the samples
    /// (`fraction` clamped to `[0, 1]`). `fraction = 0.0` — and an empty
    /// series — yield an **empty** window; the statistics below define
    /// the empty-window result as `0.0` rather than silently averaging
    /// the final sample.
    fn settled_tail(series: &[f64], fraction: f64) -> &[f64] {
        let n = series.len();
        let start = ((1.0 - fraction.clamp(0.0, 1.0)) * n as f64) as usize;
        &series[start.min(n)..]
    }

    /// Mean of a waveform over the last `fraction` of the run (use e.g.
    /// `0.5` to skip the start-up transient). `0.0` for an empty window.
    #[must_use]
    pub fn settled_mean(series: &[f64], fraction: f64) -> f64 {
        let tail = Self::settled_tail(series, fraction);
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    /// RMS of a waveform over the last `fraction` of the run. `0.0` for
    /// an empty window.
    #[must_use]
    pub fn settled_rms(series: &[f64], fraction: f64) -> f64 {
        let tail = Self::settled_tail(series, fraction);
        if tail.is_empty() {
            return 0.0;
        }
        (tail.iter().map(|v| v * v).sum::<f64>() / tail.len() as f64).sqrt()
    }

    /// Peak-to-peak ripple over the last `fraction` of the run. `0.0`
    /// for an empty window.
    #[must_use]
    pub fn settled_ripple(series: &[f64], fraction: f64) -> f64 {
        let tail = Self::settled_tail(series, fraction);
        if tail.is_empty() {
            return 0.0;
        }
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in tail {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        hi - lo
    }
}

/// Runs a backward-Euler transient simulation.
///
/// Initial conditions come from each capacitor's `v0` and inductor's
/// `i0`.
///
/// ```
/// use vpd_circuit::{transient, Netlist, TransientSettings, TransientResult};
/// use vpd_units::{Farads, Ohms, Seconds, Volts};
///
/// # fn main() -> Result<(), vpd_circuit::CircuitError> {
/// // RC charging: v(t) = 5·(1 − e^{−t/RC}), RC = 1 ms.
/// let mut net = Netlist::new();
/// let vin = net.node("vin");
/// let out = net.node("out");
/// net.voltage_source(vin, net.ground(), Volts::new(5.0))?;
/// net.resistor(vin, out, Ohms::new(1000.0))?;
/// net.capacitor(out, net.ground(), Farads::from_microfarads(1.0), Volts::ZERO)?;
/// let settings = TransientSettings::new(
///     Seconds::new(5e-3), Seconds::new(1e-6))?;
/// let result = transient(&net, &settings)?;
/// let v_end = *result.voltage(out).last().unwrap();
/// assert!((v_end - 5.0).abs() < 0.05); // fully charged after 5·RC
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`CircuitError::EmptyNetlist`] — nothing to simulate.
/// * [`CircuitError::Numeric`] — a step's linear solve failed.
pub fn transient(
    net: &Netlist,
    settings: &TransientSettings,
) -> Result<TransientResult, CircuitError> {
    if net.element_count() == 0 {
        return Err(CircuitError::EmptyNetlist);
    }
    let dt = settings.dt.value();
    let steps = (settings.t_stop.value() / dt).round() as usize;
    let n_nodes = net.node_count();

    // Unknown layout: node voltages (ground eliminated) then source
    // currents (voltage sources AND inductors get a current unknown —
    // inductors are stamped as resistive companions instead, so only
    // voltage sources here).
    let nv = n_nodes - 1;
    let source_ids: Vec<usize> = net
        .elements()
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e.kind, ElementKind::VoltageSource { .. }))
        .map(|(i, _)| i)
        .collect();
    let dim = nv + source_ids.len();
    let idx = |n: NodeId| -> Option<usize> {
        let i = n.index();
        (i > 0).then(|| i - 1)
    };

    // State: capacitor voltages and inductor currents.
    let mut cap_v: HashMap<usize, f64> = HashMap::new();
    let mut ind_i: HashMap<usize, f64> = HashMap::new();
    for (i, e) in net.elements().iter().enumerate() {
        match &e.kind {
            ElementKind::Capacitor { v0, .. } => {
                cap_v.insert(i, v0.value());
            }
            ElementKind::Inductor { i0, .. } => {
                ind_i.insert(i, i0.value());
            }
            _ => {}
        }
    }

    // LU cache keyed by the switch-state vector.
    let mut lu_cache: HashMap<Vec<SwitchState>, LuFactor> = HashMap::new();

    let mut times = Vec::with_capacity(steps + 1);
    let mut node_v = vec![Vec::with_capacity(steps + 1); n_nodes];
    let mut element_i = vec![Vec::with_capacity(steps + 1); net.element_count()];

    let mut voltages = vec![0.0; n_nodes];

    for step in 0..=steps {
        let t = step as f64 * dt;

        // Switch states at this time.
        let switch_states: Vec<SwitchState> = net
            .elements()
            .iter()
            .filter_map(|e| match &e.kind {
                ElementKind::Switch {
                    schedule, initial, ..
                } => Some(schedule.map_or(*initial, |s| s.state_at(t))),
                _ => None,
            })
            .collect();

        // Assemble (or reuse) the conductance matrix for this switch
        // configuration; the RHS is rebuilt every step.
        let lu = match lu_cache.get(&switch_states) {
            Some(lu) => lu,
            None => {
                let mut a = DenseMatrix::zeros(dim, dim);
                let mut sw_iter = switch_states.iter();
                let mut src_k = 0;
                for e in net.elements() {
                    match &e.kind {
                        ElementKind::Resistor { r } => {
                            stamp_g(&mut a, idx(e.a), idx(e.b), 1.0 / r.value())?;
                        }
                        ElementKind::Switch { r_on, r_off, .. } => {
                            let state = sw_iter.next().expect("switch count mismatch");
                            let r = match state {
                                SwitchState::On => r_on.value(),
                                SwitchState::Off => r_off.value(),
                            };
                            stamp_g(&mut a, idx(e.a), idx(e.b), 1.0 / r)?;
                        }
                        ElementKind::Capacitor { c, .. } => {
                            stamp_g(&mut a, idx(e.a), idx(e.b), c.value() / dt)?;
                        }
                        ElementKind::Inductor { l, .. } => {
                            stamp_g(&mut a, idx(e.a), idx(e.b), dt / l.value())?;
                        }
                        ElementKind::VoltageSource { .. } => {
                            let row = nv + src_k;
                            src_k += 1;
                            if let Some(i) = idx(e.a) {
                                a.add_at(i, row, 1.0)?;
                                a.add_at(row, i, 1.0)?;
                            }
                            if let Some(j) = idx(e.b) {
                                a.add_at(j, row, -1.0)?;
                                a.add_at(row, j, -1.0)?;
                            }
                        }
                        ElementKind::CurrentSource { .. }
                        | ElementKind::StepCurrentSource { .. } => {}
                    }
                }
                let lu = LuFactor::new(&a)?;
                lu_cache.entry(switch_states.clone()).or_insert(lu)
            }
        };

        // RHS with companion-source history terms.
        let mut rhs = vec![0.0; dim];
        let mut src_k = 0;
        for (i, e) in net.elements().iter().enumerate() {
            match &e.kind {
                ElementKind::CurrentSource { i: i_src } => {
                    if let Some(ia) = idx(e.a) {
                        rhs[ia] -= i_src.value();
                    }
                    if let Some(ib) = idx(e.b) {
                        rhs[ib] += i_src.value();
                    }
                }
                ElementKind::StepCurrentSource { before, after, at } => {
                    let i_src = if t < at.value() {
                        before.value()
                    } else {
                        after.value()
                    };
                    if let Some(ia) = idx(e.a) {
                        rhs[ia] -= i_src;
                    }
                    if let Some(ib) = idx(e.b) {
                        rhs[ib] += i_src;
                    }
                }
                ElementKind::VoltageSource { v } => {
                    rhs[nv + src_k] = v.value();
                    src_k += 1;
                }
                ElementKind::Capacitor { c, .. } => {
                    // i = C/dt (v_n − v_prev): history acts as a current
                    // source of (C/dt)·v_prev from b to a (injects into a).
                    let g = c.value() / dt;
                    let hist = g * cap_v[&i];
                    if let Some(ia) = idx(e.a) {
                        rhs[ia] += hist;
                    }
                    if let Some(ib) = idx(e.b) {
                        rhs[ib] -= hist;
                    }
                }
                ElementKind::Inductor { .. } => {
                    // i_n = i_prev + (dt/L)·v_n: history is a current
                    // source i_prev flowing a → b.
                    let hist = ind_i[&i];
                    if let Some(ia) = idx(e.a) {
                        rhs[ia] -= hist;
                    }
                    if let Some(ib) = idx(e.b) {
                        rhs[ib] += hist;
                    }
                }
                _ => {}
            }
        }

        let x = lu.solve(&rhs)?;
        voltages[0] = 0.0;
        voltages[1..n_nodes].copy_from_slice(&x[..n_nodes - 1]);

        // Record + update state.
        times.push(t);
        for (n, v) in voltages.iter().enumerate() {
            node_v[n].push(*v);
        }
        let mut sw_iter = switch_states.iter();
        let mut src_k = 0;
        for (i, e) in net.elements().iter().enumerate() {
            let vab = voltages[e.a.index()] - voltages[e.b.index()];
            let i_e = match &e.kind {
                ElementKind::Resistor { r } => vab / r.value(),
                ElementKind::Switch { r_on, r_off, .. } => {
                    let state = sw_iter.next().expect("switch count mismatch");
                    vab / match state {
                        SwitchState::On => r_on.value(),
                        SwitchState::Off => r_off.value(),
                    }
                }
                ElementKind::CurrentSource { i } => i.value(),
                ElementKind::StepCurrentSource { before, after, at } => {
                    if t < at.value() {
                        before.value()
                    } else {
                        after.value()
                    }
                }
                ElementKind::VoltageSource { .. } => {
                    let cur = x[nv + src_k];
                    src_k += 1;
                    cur
                }
                ElementKind::Capacitor { c, .. } => {
                    let g = c.value() / dt;
                    let i_c = g * (vab - cap_v[&i]);
                    cap_v.insert(i, vab);
                    i_c
                }
                ElementKind::Inductor { l, .. } => {
                    let i_l = ind_i[&i] + dt / l.value() * vab;
                    ind_i.insert(i, i_l);
                    i_l
                }
            };
            element_i[i].push(i_e);
        }
    }

    Ok(TransientResult {
        times,
        node_v,
        element_i,
    })
}

fn stamp_g(
    a: &mut DenseMatrix,
    ia: Option<usize>,
    ib: Option<usize>,
    g: f64,
) -> Result<(), CircuitError> {
    if let Some(i) = ia {
        a.add_at(i, i, g)?;
    }
    if let Some(j) = ib {
        a.add_at(j, j, g)?;
    }
    if let (Some(i), Some(j)) = (ia, ib) {
        a.add_at(i, j, -g)?;
        a.add_at(j, i, -g)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PwmSchedule;
    use vpd_units::{Amps, Farads, Henries, Hertz, Ohms, Volts};

    #[test]
    fn rc_charge_matches_analytic() {
        let mut net = Netlist::new();
        let vin = net.node("vin");
        let out = net.node("out");
        net.voltage_source(vin, net.ground(), Volts::new(1.0))
            .unwrap();
        net.resistor(vin, out, Ohms::new(1000.0)).unwrap();
        net.capacitor(
            out,
            net.ground(),
            Farads::from_microfarads(1.0),
            Volts::ZERO,
        )
        .unwrap();
        let settings = TransientSettings::new(Seconds::new(2e-3), Seconds::new(1e-7)).unwrap();
        let res = transient(&net, &settings).unwrap();
        // Compare against 1 − e^{−t/RC} at several times.
        let rc = 1e-3;
        for (k, &t) in res.times().iter().enumerate().step_by(2000) {
            let expected = 1.0 - (-t / rc).exp();
            let got = res.voltage(out)[k];
            assert!(
                (got - expected).abs() < 2e-3,
                "t={t}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn rl_rise_matches_analytic() {
        // V → R → L → gnd: i(t) = V/R (1 − e^{−tR/L}).
        let mut net = Netlist::new();
        let vin = net.node("vin");
        let mid = net.node("mid");
        net.voltage_source(vin, net.ground(), Volts::new(1.0))
            .unwrap();
        net.resistor(vin, mid, Ohms::new(1.0)).unwrap();
        let l_id = net
            .inductor(
                mid,
                net.ground(),
                Henries::from_microhenries(1.0),
                Amps::ZERO,
            )
            .unwrap();
        let settings = TransientSettings::new(Seconds::new(5e-6), Seconds::new(1e-9)).unwrap();
        let res = transient(&net, &settings).unwrap();
        let tau = 1e-6;
        for (k, &t) in res.times().iter().enumerate().step_by(1000) {
            let expected = 1.0 - (-t / tau).exp();
            let got = res.current(l_id)[k];
            assert!(
                (got - expected).abs() < 5e-3,
                "t={t}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn switched_rc_reaches_duty_weighted_average() {
        // A PWM switch chopping 1 V into an RC filter settles at ~duty·V.
        let f = Hertz::from_megahertz(1.0);
        let duty = 0.3;
        let mut net = Netlist::new();
        let vin = net.node("vin");
        let sw = net.node("sw");
        let out = net.node("out");
        net.voltage_source(vin, net.ground(), Volts::new(1.0))
            .unwrap();
        net.switch(
            vin,
            sw,
            Ohms::from_milliohms(1.0),
            Ohms::new(1e7),
            Some(PwmSchedule::new(f, duty, 0.0).unwrap()),
            SwitchState::Off,
        )
        .unwrap();
        // Pull-down so `sw` follows the off state too.
        net.switch(
            sw,
            net.ground(),
            Ohms::from_milliohms(1.0),
            Ohms::new(1e7),
            Some(PwmSchedule::new(f, duty, 0.0).unwrap().complementary()),
            SwitchState::On,
        )
        .unwrap();
        net.resistor(sw, out, Ohms::new(10.0)).unwrap();
        net.capacitor(
            out,
            net.ground(),
            Farads::from_microfarads(10.0),
            Volts::ZERO,
        )
        .unwrap();
        let settings = TransientSettings::new(Seconds::new(2e-3), Seconds::new(5e-9)).unwrap();
        let res = transient(&net, &settings).unwrap();
        let settled = TransientResult::settled_mean(res.voltage(out), 0.2);
        assert!(
            (settled - duty).abs() < 0.02,
            "settled at {settled}, expected ~{duty}"
        );
    }

    #[test]
    fn step_current_source_steps() {
        // A step source into an RC supply node produces the classic
        // first-order droop toward the new operating point.
        let mut net = Netlist::new();
        let n = net.node("n");
        net.voltage_source(n, net.ground(), Volts::new(1.0))
            .unwrap();
        let mid = net.node("mid");
        net.resistor(n, mid, Ohms::from_milliohms(1.0)).unwrap();
        net.capacitor(
            mid,
            net.ground(),
            Farads::from_microfarads(100.0),
            Volts::new(1.0),
        )
        .unwrap();
        let step_id = net
            .step_current_source(
                mid,
                net.ground(),
                Amps::new(10.0),
                Amps::new(100.0),
                Seconds::from_microseconds(1.0),
            )
            .unwrap();
        let settings = TransientSettings::new(
            Seconds::from_microseconds(5.0),
            Seconds::from_nanoseconds(2.0),
        )
        .unwrap();
        let res = transient(&net, &settings).unwrap();
        let i = res.current(step_id);
        let times = res.times();
        // Before the step: 10 A; after: 100 A.
        let before_idx = times.iter().position(|&t| t > 0.5e-6).unwrap();
        let after_idx = times.iter().position(|&t| t > 2e-6).unwrap();
        assert_eq!(i[before_idx], 10.0);
        assert_eq!(i[after_idx], 100.0);
        // Voltage settles lower after the step (bigger IR drop).
        let v = res.voltage(mid);
        assert!(v[after_idx.max(times.len() - 2)] < v[before_idx]);
    }

    #[test]
    fn settings_validation() {
        assert!(TransientSettings::new(Seconds::new(0.0), Seconds::new(1e-9)).is_err());
        assert!(TransientSettings::new(Seconds::new(1e-3), Seconds::new(-1.0)).is_err());
        assert!(TransientSettings::new(Seconds::new(1e-9), Seconds::new(1e-3)).is_err());
    }

    #[test]
    fn empty_netlist_rejected() {
        let settings = TransientSettings::new(Seconds::new(1e-3), Seconds::new(1e-6)).unwrap();
        assert!(matches!(
            transient(&Netlist::new(), &settings),
            Err(CircuitError::EmptyNetlist)
        ));
    }

    #[test]
    fn waveform_stats() {
        let series = [0.0, 1.0, 0.0, 1.0];
        assert!((TransientResult::settled_mean(&series, 1.0) - 0.5).abs() < 1e-12);
        assert!((TransientResult::settled_ripple(&series, 1.0) - 1.0).abs() < 1e-12);
        assert!((TransientResult::settled_rms(&series, 1.0) - (0.5_f64).sqrt()).abs() < 1e-12);
        assert_eq!(TransientResult::settled_mean(&[], 0.5), 0.0);
    }

    #[test]
    fn waveform_stats_edge_fractions() {
        let series = [2.0, 4.0, 6.0, 8.0];
        // fraction = 0 is an empty window — it must NOT silently average
        // the final sample (the old clamp made this return 8.0).
        assert_eq!(TransientResult::settled_mean(&series, 0.0), 0.0);
        assert_eq!(TransientResult::settled_rms(&series, 0.0), 0.0);
        assert_eq!(TransientResult::settled_ripple(&series, 0.0), 0.0);
        // fraction = 1 covers the whole series.
        assert!((TransientResult::settled_mean(&series, 1.0) - 5.0).abs() < 1e-12);
        assert!((TransientResult::settled_ripple(&series, 1.0) - 6.0).abs() < 1e-12);
        // fraction > 1 clamps to the whole series; negative clamps to
        // the empty window.
        assert_eq!(
            TransientResult::settled_mean(&series, 7.5),
            TransientResult::settled_mean(&series, 1.0)
        );
        assert_eq!(TransientResult::settled_rms(&series, -0.5), 0.0);
        // Half window: the last two samples exactly.
        assert!((TransientResult::settled_mean(&series, 0.5) - 7.0).abs() < 1e-12);
        // Empty series stays 0 for every statistic and fraction.
        for f in [0.0, 0.5, 1.0, 2.0] {
            assert_eq!(TransientResult::settled_mean(&[], f), 0.0);
            assert_eq!(TransientResult::settled_rms(&[], f), 0.0);
            assert_eq!(TransientResult::settled_ripple(&[], f), 0.0);
        }
    }
}
