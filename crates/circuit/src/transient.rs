//! Backward-Euler transient simulation with switched elements.
//!
//! Reactive elements are replaced by their backward-Euler companion
//! models each step; switches follow their [`PwmSchedule`]. Because the
//! conductance matrix only changes when a switch changes state, LU
//! factorizations are cached per switch configuration — a multi-phase
//! converter with `k` switches re-factors at most `2^k` times, not once
//! per step.

use crate::netlist::{ElementKind, PwmSchedule, SwitchState};
use crate::{CircuitError, ElementId, Netlist, NodeId};
use std::collections::HashMap;
use vpd_numeric::{DenseMatrix, LuFactor};
use vpd_units::{Amps, Seconds};

/// Transient run settings.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TransientSettings {
    /// Simulation stop time.
    pub t_stop: Seconds,
    /// Fixed time step.
    pub dt: Seconds,
}

impl TransientSettings {
    /// Creates settings, validating the window.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidTimeStep`] when either time is
    /// non-positive or `dt > t_stop`.
    pub fn new(t_stop: Seconds, dt: Seconds) -> Result<Self, CircuitError> {
        if !(t_stop.value() > 0.0 && dt.value() > 0.0 && dt.value() <= t_stop.value()) {
            return Err(CircuitError::InvalidTimeStep {
                dt: dt.value(),
                t_stop: t_stop.value(),
            });
        }
        Ok(Self { t_stop, dt })
    }
}

/// Recorded waveforms from a transient run.
#[derive(Clone, PartialEq, Debug)]
pub struct TransientResult {
    times: Vec<f64>,
    /// `node_v[node][step]`
    node_v: Vec<Vec<f64>>,
    /// `element_i[element][step]`, current `a → b` through the element.
    element_i: Vec<Vec<f64>>,
}

impl TransientResult {
    /// Sample times (seconds).
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Voltage waveform of a node.
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> &[f64] {
        &self.node_v[node.index()]
    }

    /// Current waveform of an element (`a → b`).
    #[must_use]
    pub fn current(&self, element: ElementId) -> &[f64] {
        &self.element_i[element.index()]
    }

    /// The trailing window covering the last `fraction` of the samples
    /// (`fraction` clamped to `[0, 1]`). `fraction = 0.0` — and an empty
    /// series — yield an **empty** window; the statistics below define
    /// the empty-window result as `0.0` rather than silently averaging
    /// the final sample.
    fn settled_tail(series: &[f64], fraction: f64) -> &[f64] {
        let n = series.len();
        let start = ((1.0 - fraction.clamp(0.0, 1.0)) * n as f64) as usize;
        &series[start.min(n)..]
    }

    /// Mean of a waveform over the last `fraction` of the run (use e.g.
    /// `0.5` to skip the start-up transient). `0.0` for an empty window.
    #[must_use]
    pub fn settled_mean(series: &[f64], fraction: f64) -> f64 {
        let tail = Self::settled_tail(series, fraction);
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    /// RMS of a waveform over the last `fraction` of the run. `0.0` for
    /// an empty window.
    #[must_use]
    pub fn settled_rms(series: &[f64], fraction: f64) -> f64 {
        let tail = Self::settled_tail(series, fraction);
        if tail.is_empty() {
            return 0.0;
        }
        (tail.iter().map(|v| v * v).sum::<f64>() / tail.len() as f64).sqrt()
    }

    /// Peak-to-peak ripple over the last `fraction` of the run. `0.0`
    /// for an empty window.
    #[must_use]
    pub fn settled_ripple(series: &[f64], fraction: f64) -> f64 {
        let tail = Self::settled_tail(series, fraction);
        if tail.is_empty() {
            return 0.0;
        }
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in tail {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        hi - lo
    }
}

/// Runs a backward-Euler transient simulation.
///
/// Initial conditions come from each capacitor's `v0` and inductor's
/// `i0`.
///
/// ```
/// use vpd_circuit::{transient, Netlist, TransientSettings, TransientResult};
/// use vpd_units::{Farads, Ohms, Seconds, Volts};
///
/// # fn main() -> Result<(), vpd_circuit::CircuitError> {
/// // RC charging: v(t) = 5·(1 − e^{−t/RC}), RC = 1 ms.
/// let mut net = Netlist::new();
/// let vin = net.node("vin");
/// let out = net.node("out");
/// net.voltage_source(vin, net.ground(), Volts::new(5.0))?;
/// net.resistor(vin, out, Ohms::new(1000.0))?;
/// net.capacitor(out, net.ground(), Farads::from_microfarads(1.0), Volts::ZERO)?;
/// let settings = TransientSettings::new(
///     Seconds::new(5e-3), Seconds::new(1e-6))?;
/// let result = transient(&net, &settings)?;
/// let v_end = *result.voltage(out).last().unwrap();
/// assert!((v_end - 5.0).abs() < 0.05); // fully charged after 5·RC
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`CircuitError::EmptyNetlist`] — nothing to simulate.
/// * [`CircuitError::Numeric`] — a step's linear solve failed.
pub fn transient(
    net: &Netlist,
    settings: &TransientSettings,
) -> Result<TransientResult, CircuitError> {
    if net.element_count() == 0 {
        return Err(CircuitError::EmptyNetlist);
    }
    let dt = settings.dt.value();
    let steps = (settings.t_stop.value() / dt).round() as usize;
    let n_nodes = net.node_count();

    // Unknown layout: node voltages (ground eliminated) then source
    // currents (voltage sources AND inductors get a current unknown —
    // inductors are stamped as resistive companions instead, so only
    // voltage sources here).
    let nv = n_nodes - 1;
    let source_ids: Vec<usize> = net
        .elements()
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e.kind, ElementKind::VoltageSource { .. }))
        .map(|(i, _)| i)
        .collect();
    let dim = nv + source_ids.len();
    let idx = |n: NodeId| -> Option<usize> {
        let i = n.index();
        (i > 0).then(|| i - 1)
    };

    // State: capacitor voltages and inductor currents.
    let mut cap_v: HashMap<usize, f64> = HashMap::new();
    let mut ind_i: HashMap<usize, f64> = HashMap::new();
    for (i, e) in net.elements().iter().enumerate() {
        match &e.kind {
            ElementKind::Capacitor { v0, .. } => {
                cap_v.insert(i, v0.value());
            }
            ElementKind::Inductor { i0, .. } => {
                ind_i.insert(i, i0.value());
            }
            _ => {}
        }
    }

    // LU cache keyed by the switch-state vector.
    let mut lu_cache: HashMap<Vec<SwitchState>, LuFactor> = HashMap::new();

    let mut times = Vec::with_capacity(steps + 1);
    let mut node_v = vec![Vec::with_capacity(steps + 1); n_nodes];
    let mut element_i = vec![Vec::with_capacity(steps + 1); net.element_count()];

    let mut voltages = vec![0.0; n_nodes];

    for step in 0..=steps {
        let t = step as f64 * dt;

        // Switch states at this time.
        let switch_states: Vec<SwitchState> = net
            .elements()
            .iter()
            .filter_map(|e| match &e.kind {
                ElementKind::Switch {
                    schedule, initial, ..
                } => Some(schedule.map_or(*initial, |s| s.state_at(t))),
                _ => None,
            })
            .collect();

        // Assemble (or reuse) the conductance matrix for this switch
        // configuration; the RHS is rebuilt every step.
        let lu = match lu_cache.get(&switch_states) {
            Some(lu) => lu,
            None => {
                let mut a = DenseMatrix::zeros(dim, dim);
                let mut sw_iter = switch_states.iter();
                let mut src_k = 0;
                for e in net.elements() {
                    match &e.kind {
                        ElementKind::Resistor { r } => {
                            stamp_g(&mut a, idx(e.a), idx(e.b), 1.0 / r.value())?;
                        }
                        ElementKind::Switch { r_on, r_off, .. } => {
                            let state = sw_iter.next().expect("switch count mismatch");
                            let r = match state {
                                SwitchState::On => r_on.value(),
                                SwitchState::Off => r_off.value(),
                            };
                            stamp_g(&mut a, idx(e.a), idx(e.b), 1.0 / r)?;
                        }
                        ElementKind::Capacitor { c, .. } => {
                            stamp_g(&mut a, idx(e.a), idx(e.b), c.value() / dt)?;
                        }
                        ElementKind::Inductor { l, .. } => {
                            stamp_g(&mut a, idx(e.a), idx(e.b), dt / l.value())?;
                        }
                        ElementKind::VoltageSource { .. } => {
                            let row = nv + src_k;
                            src_k += 1;
                            if let Some(i) = idx(e.a) {
                                a.add_at(i, row, 1.0)?;
                                a.add_at(row, i, 1.0)?;
                            }
                            if let Some(j) = idx(e.b) {
                                a.add_at(j, row, -1.0)?;
                                a.add_at(row, j, -1.0)?;
                            }
                        }
                        ElementKind::CurrentSource { .. }
                        | ElementKind::StepCurrentSource { .. }
                        | ElementKind::RampCurrentSource { .. } => {}
                    }
                }
                let lu = LuFactor::new(&a)?;
                lu_cache.entry(switch_states.clone()).or_insert(lu)
            }
        };

        // RHS with companion-source history terms.
        let mut rhs = vec![0.0; dim];
        let mut src_k = 0;
        for (i, e) in net.elements().iter().enumerate() {
            match &e.kind {
                ElementKind::CurrentSource { i: i_src } => {
                    if let Some(ia) = idx(e.a) {
                        rhs[ia] -= i_src.value();
                    }
                    if let Some(ib) = idx(e.b) {
                        rhs[ib] += i_src.value();
                    }
                }
                ElementKind::StepCurrentSource { before, after, at } => {
                    let i_src = if t < at.value() {
                        before.value()
                    } else {
                        after.value()
                    };
                    if let Some(ia) = idx(e.a) {
                        rhs[ia] -= i_src;
                    }
                    if let Some(ib) = idx(e.b) {
                        rhs[ib] += i_src;
                    }
                }
                ElementKind::RampCurrentSource {
                    before,
                    after,
                    at,
                    rise,
                } => {
                    let i_src =
                        ramp_value(before.value(), after.value(), at.value(), rise.value(), t);
                    if let Some(ia) = idx(e.a) {
                        rhs[ia] -= i_src;
                    }
                    if let Some(ib) = idx(e.b) {
                        rhs[ib] += i_src;
                    }
                }
                ElementKind::VoltageSource { v } => {
                    rhs[nv + src_k] = v.value();
                    src_k += 1;
                }
                ElementKind::Capacitor { c, .. } => {
                    // i = C/dt (v_n − v_prev): history acts as a current
                    // source of (C/dt)·v_prev from b to a (injects into a).
                    let g = c.value() / dt;
                    let hist = g * cap_v[&i];
                    if let Some(ia) = idx(e.a) {
                        rhs[ia] += hist;
                    }
                    if let Some(ib) = idx(e.b) {
                        rhs[ib] -= hist;
                    }
                }
                ElementKind::Inductor { .. } => {
                    // i_n = i_prev + (dt/L)·v_n: history is a current
                    // source i_prev flowing a → b.
                    let hist = ind_i[&i];
                    if let Some(ia) = idx(e.a) {
                        rhs[ia] -= hist;
                    }
                    if let Some(ib) = idx(e.b) {
                        rhs[ib] += hist;
                    }
                }
                _ => {}
            }
        }

        let x = lu.solve(&rhs)?;
        voltages[0] = 0.0;
        voltages[1..n_nodes].copy_from_slice(&x[..n_nodes - 1]);

        // Record + update state.
        times.push(t);
        for (n, v) in voltages.iter().enumerate() {
            node_v[n].push(*v);
        }
        let mut sw_iter = switch_states.iter();
        let mut src_k = 0;
        for (i, e) in net.elements().iter().enumerate() {
            let vab = voltages[e.a.index()] - voltages[e.b.index()];
            let i_e = match &e.kind {
                ElementKind::Resistor { r } => vab / r.value(),
                ElementKind::Switch { r_on, r_off, .. } => {
                    let state = sw_iter.next().expect("switch count mismatch");
                    vab / match state {
                        SwitchState::On => r_on.value(),
                        SwitchState::Off => r_off.value(),
                    }
                }
                ElementKind::CurrentSource { i } => i.value(),
                ElementKind::StepCurrentSource { before, after, at } => {
                    if t < at.value() {
                        before.value()
                    } else {
                        after.value()
                    }
                }
                ElementKind::RampCurrentSource {
                    before,
                    after,
                    at,
                    rise,
                } => ramp_value(before.value(), after.value(), at.value(), rise.value(), t),
                ElementKind::VoltageSource { .. } => {
                    let cur = x[nv + src_k];
                    src_k += 1;
                    cur
                }
                ElementKind::Capacitor { c, .. } => {
                    let g = c.value() / dt;
                    let i_c = g * (vab - cap_v[&i]);
                    cap_v.insert(i, vab);
                    i_c
                }
                ElementKind::Inductor { l, .. } => {
                    let i_l = ind_i[&i] + dt / l.value() * vab;
                    ind_i.insert(i, i_l);
                    i_l
                }
            };
            element_i[i].push(i_e);
        }
    }

    Ok(TransientResult {
        times,
        node_v,
        element_i,
    })
}

/// Value of a ramping current source at time `t`: `before` until `at`,
/// linear to `after` over `rise`, then `after`. `rise = 0` degenerates
/// to an ideal step (`t >= at` implies `t >= at + 0`), so the divide is
/// never reached with a zero denominator.
fn ramp_value(before: f64, after: f64, at: f64, rise: f64, t: f64) -> f64 {
    if t < at {
        before
    } else if t >= at + rise {
        after
    } else {
        before + (after - before) * ((t - at) / rise)
    }
}

fn stamp_g(
    a: &mut DenseMatrix,
    ia: Option<usize>,
    ib: Option<usize>,
    g: f64,
) -> Result<(), CircuitError> {
    if let Some(i) = ia {
        a.add_at(i, i, g)?;
    }
    if let Some(j) = ib {
        a.add_at(j, j, g)?;
    }
    if let (Some(i), Some(j)) = (ia, ib) {
        a.add_at(i, j, -g)?;
        a.add_at(j, i, -g)?;
    }
    Ok(())
}

/// One compiled element: reduced node indices for stamping, raw node
/// indices for waveform recording, and the element-specific operation.
#[derive(Clone, Debug)]
struct TranOp {
    /// Reduced index of node `a` (`None` = ground).
    na: Option<usize>,
    /// Reduced index of node `b` (`None` = ground).
    nb: Option<usize>,
    /// Raw index of node `a`, for `v_ab` in the record pass.
    ra: usize,
    /// Raw index of node `b`.
    rb: usize,
    kind: TranOpKind,
}

/// The compiled per-element operation. Conductances are pre-divided at
/// compile time (`1/r`, `c/dt`, `dt/l`) from exactly the operands the
/// legacy walk divides each build, so the stamps are bitwise identical.
#[derive(Clone, Debug)]
enum TranOpKind {
    /// Fixed conductance (resistor). `r` is kept for the record pass,
    /// which divides by resistance like the legacy walk.
    Conductance { g: f64, r: f64 },
    /// A scheduled switch; consumes one slot of the switch-state vector.
    Switch {
        g_on: f64,
        g_off: f64,
        r_on: f64,
        r_off: f64,
        schedule: Option<PwmSchedule>,
        initial: SwitchState,
    },
    /// Backward-Euler capacitor companion, `g = c/dt`.
    Capacitor { g: f64 },
    /// Backward-Euler inductor companion, `g = dt/l`.
    Inductor { g: f64 },
    /// Ideal voltage source occupying MNA row `row`.
    VoltageSource { v: f64, row: usize },
    /// Constant current source.
    CurrentSource { i: f64 },
    /// Step current source.
    StepCurrent { before: f64, after: f64, at: f64 },
    /// Ramp current source.
    RampCurrent {
        before: f64,
        after: f64,
        at: f64,
        rise: f64,
    },
}

/// A compiled, reusable transient simulation.
///
/// One netlist walk at [`TransientPlan::compile`] lowers every element
/// to a [`TranOp`] with pre-divided companion conductances and
/// pre-assigned source rows; [`TransientPlan::run`] then replays the op
/// list with reusable matrix/RHS/solution buffers. The replay follows
/// the exact stamp, solve, and record order of [`transient`], so the
/// two paths produce bitwise-identical [`TransientResult`]s.
///
/// The per-switch-configuration LU cache **persists across runs**:
/// repeated runs at the same `dt` re-factor zero times, and the
/// restamp API ([`TransientPlan::set_load_step`],
/// [`TransientPlan::set_load_ramp`], [`TransientPlan::set_source`])
/// rewrites only right-hand-side inputs — voltage-source matrix stamps
/// are topological `±1` entries — so sweeps over source values never
/// invalidate a factorization. The plan is `Clone`, so parallel sweeps
/// can hand each worker its own buffers (with the factor cache already
/// warm if [`TransientPlan::prefactor`] ran first).
///
/// [`TransientPlan::advance`] exposes the same run incrementally for
/// streaming consumers: each call executes a bounded number of steps
/// and the partial waveforms are visible through
/// [`TransientPlan::result`].
///
/// ```
/// use vpd_circuit::{transient, Netlist, TransientPlan, TransientSettings};
/// use vpd_units::{Farads, Ohms, Seconds, Volts};
///
/// # fn main() -> Result<(), vpd_circuit::CircuitError> {
/// let mut net = Netlist::new();
/// let vin = net.node("vin");
/// let out = net.node("out");
/// net.voltage_source(vin, net.ground(), Volts::new(5.0))?;
/// net.resistor(vin, out, Ohms::new(1000.0))?;
/// net.capacitor(out, net.ground(), Farads::from_microfarads(1.0), Volts::ZERO)?;
/// let settings = TransientSettings::new(Seconds::new(1e-4), Seconds::new(1e-6))?;
/// let mut plan = TransientPlan::compile(&net, &settings)?;
/// let fast = plan.run()?.clone();
/// let slow = transient(&net, &settings)?;
/// assert_eq!(fast, slow);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct TransientPlan {
    dt: f64,
    steps: usize,
    n_nodes: usize,
    dim: usize,
    ops: Vec<TranOp>,
    /// Initial capacitor voltages / inductor currents, element-indexed.
    init_state: Vec<f64>,
    /// Live capacitor voltages / inductor currents, element-indexed.
    state: Vec<f64>,
    /// Switch states at the step being processed (reused buffer).
    sw_buf: Vec<SwitchState>,
    /// LU factorizations, one per switch configuration seen so far.
    factors: Vec<LuFactor>,
    /// Switch configuration → index into `factors`.
    factor_index: HashMap<Vec<SwitchState>, usize>,
    /// The configuration `current` was resolved for, compared (not
    /// hashed) each step so an unchanged configuration costs one `==`.
    current_key: Vec<SwitchState>,
    current: Option<usize>,
    rhs: Vec<f64>,
    x: Vec<f64>,
    voltages: Vec<f64>,
    result: TransientResult,
    next_step: usize,
}

impl TransientPlan {
    /// Compiles a netlist into a reusable transient plan.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::EmptyNetlist`] when the netlist has no
    /// elements.
    pub fn compile(net: &Netlist, settings: &TransientSettings) -> Result<Self, CircuitError> {
        if net.element_count() == 0 {
            return Err(CircuitError::EmptyNetlist);
        }
        vpd_obs::incr("transient.plan_builds");
        let dt = settings.dt.value();
        let steps = (settings.t_stop.value() / dt).round() as usize;
        let n_nodes = net.node_count();
        let nv = n_nodes - 1;
        let idx = |n: NodeId| -> Option<usize> {
            let i = n.index();
            (i > 0).then(|| i - 1)
        };

        let mut ops = Vec::with_capacity(net.element_count());
        let mut init_state = vec![0.0; net.element_count()];
        let mut n_sources = 0;
        let mut n_switches = 0;
        for (i, e) in net.elements().iter().enumerate() {
            let kind = match &e.kind {
                ElementKind::Resistor { r } => TranOpKind::Conductance {
                    g: 1.0 / r.value(),
                    r: r.value(),
                },
                ElementKind::Switch {
                    r_on,
                    r_off,
                    schedule,
                    initial,
                } => {
                    n_switches += 1;
                    TranOpKind::Switch {
                        g_on: 1.0 / r_on.value(),
                        g_off: 1.0 / r_off.value(),
                        r_on: r_on.value(),
                        r_off: r_off.value(),
                        schedule: *schedule,
                        initial: *initial,
                    }
                }
                ElementKind::Capacitor { c, v0 } => {
                    init_state[i] = v0.value();
                    TranOpKind::Capacitor { g: c.value() / dt }
                }
                ElementKind::Inductor { l, i0 } => {
                    init_state[i] = i0.value();
                    TranOpKind::Inductor { g: dt / l.value() }
                }
                ElementKind::VoltageSource { v } => {
                    let row = nv + n_sources;
                    n_sources += 1;
                    TranOpKind::VoltageSource { v: v.value(), row }
                }
                ElementKind::CurrentSource { i } => TranOpKind::CurrentSource { i: i.value() },
                ElementKind::StepCurrentSource { before, after, at } => TranOpKind::StepCurrent {
                    before: before.value(),
                    after: after.value(),
                    at: at.value(),
                },
                ElementKind::RampCurrentSource {
                    before,
                    after,
                    at,
                    rise,
                } => TranOpKind::RampCurrent {
                    before: before.value(),
                    after: after.value(),
                    at: at.value(),
                    rise: rise.value(),
                },
            };
            ops.push(TranOp {
                na: idx(e.a),
                nb: idx(e.b),
                ra: e.a.index(),
                rb: e.b.index(),
                kind,
            });
        }
        let dim = nv + n_sources;
        let state = init_state.clone();
        Ok(Self {
            dt,
            steps,
            n_nodes,
            dim,
            ops,
            init_state,
            state,
            sw_buf: Vec::with_capacity(n_switches),
            factors: Vec::new(),
            factor_index: HashMap::new(),
            current_key: Vec::new(),
            current: None,
            rhs: vec![0.0; dim],
            x: Vec::with_capacity(dim),
            voltages: vec![0.0; n_nodes],
            result: TransientResult {
                times: Vec::with_capacity(steps + 1),
                node_v: vec![Vec::with_capacity(steps + 1); n_nodes],
                element_i: vec![Vec::with_capacity(steps + 1); net.element_count()],
            },
            next_step: 0,
        })
    }

    /// Total number of time steps in a run (the run records
    /// `steps() + 1` samples, including `t = 0`).
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Samples recorded so far in the current run.
    #[must_use]
    pub fn samples_done(&self) -> usize {
        self.result.times.len()
    }

    /// The fixed time step (seconds).
    #[must_use]
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Whether the current run has recorded its final sample.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.next_step > self.steps
    }

    /// Number of LU factorizations currently cached.
    #[must_use]
    pub fn cached_factorizations(&self) -> usize {
        self.factors.len()
    }

    /// The (possibly partial) waveforms of the current run.
    #[must_use]
    pub fn result(&self) -> &TransientResult {
        &self.result
    }

    /// Resets state and waveforms for a fresh run, keeping the compiled
    /// ops, buffers, and — crucially — the LU cache.
    pub fn start(&mut self) {
        vpd_obs::incr("transient.runs");
        self.state.copy_from_slice(&self.init_state);
        self.result.times.clear();
        for v in &mut self.result.node_v {
            v.clear();
        }
        for i in &mut self.result.element_i {
            i.clear();
        }
        self.next_step = 0;
    }

    /// Factors the `t = 0` switch configuration if it is not cached
    /// yet, so clones handed to parallel workers re-factor zero times.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Numeric`] when the conductance matrix is
    /// singular.
    pub fn prefactor(&mut self) -> Result<(), CircuitError> {
        self.compute_switch_states(0.0);
        self.ensure_factor()?;
        Ok(())
    }

    /// Runs the simulation start-to-finish and returns the waveforms.
    ///
    /// Always begins a fresh run ([`TransientPlan::start`]); use
    /// [`TransientPlan::advance`] directly for incremental consumption.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Numeric`] when a step's factorization or
    /// solve fails.
    pub fn run(&mut self) -> Result<&TransientResult, CircuitError> {
        self.start();
        while self.advance(usize::MAX)? > 0 {}
        Ok(&self.result)
    }

    /// Executes up to `max_steps` time steps of the current run and
    /// returns how many were executed (`0` once the run is finished).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Numeric`] when a step's factorization or
    /// solve fails.
    pub fn advance(&mut self, max_steps: usize) -> Result<usize, CircuitError> {
        let mut done = 0;
        while done < max_steps && self.next_step <= self.steps {
            self.step()?;
            done += 1;
        }
        if done > 0 {
            vpd_obs::add("transient.steps", done as u64);
        }
        Ok(done)
    }

    /// Repoints a step current source's parameters (RHS-only, so the
    /// LU cache survives).
    ///
    /// # Errors
    ///
    /// * [`CircuitError::UnknownElement`] — no such element.
    /// * [`CircuitError::InvalidValue`] — the element is not a step
    ///   current source, a current is non-finite, or the step time is
    ///   negative or non-finite.
    pub fn set_load_step(
        &mut self,
        element: ElementId,
        before: Amps,
        after: Amps,
        at: Seconds,
    ) -> Result<(), CircuitError> {
        check_source_value("set_load_step current", before.value())?;
        check_source_value("set_load_step current", after.value())?;
        check_source_time("set_load_step time", at.value())?;
        let op = self.op_mut(element)?;
        match &mut op.kind {
            TranOpKind::StepCurrent {
                before: b,
                after: a,
                at: t0,
            } => {
                *b = before.value();
                *a = after.value();
                *t0 = at.value();
                Ok(())
            }
            _ => Err(CircuitError::InvalidValue {
                element: "set_load_step on a non-step element",
                value: element.index() as f64,
            }),
        }
    }

    /// Repoints a ramp current source's parameters (RHS-only, so the
    /// LU cache survives).
    ///
    /// # Errors
    ///
    /// As for [`TransientPlan::set_load_step`], with the target being a
    /// ramp current source and `rise` also required finite and
    /// non-negative.
    pub fn set_load_ramp(
        &mut self,
        element: ElementId,
        before: Amps,
        after: Amps,
        at: Seconds,
        rise: Seconds,
    ) -> Result<(), CircuitError> {
        check_source_value("set_load_ramp current", before.value())?;
        check_source_value("set_load_ramp current", after.value())?;
        check_source_time("set_load_ramp time", at.value())?;
        check_source_time("set_load_ramp rise", rise.value())?;
        let op = self.op_mut(element)?;
        match &mut op.kind {
            TranOpKind::RampCurrent {
                before: b,
                after: a,
                at: t0,
                rise: r,
            } => {
                *b = before.value();
                *a = after.value();
                *t0 = at.value();
                *r = rise.value();
                Ok(())
            }
            _ => Err(CircuitError::InvalidValue {
                element: "set_load_ramp on a non-ramp element",
                value: element.index() as f64,
            }),
        }
    }

    /// Repoints a constant source's value: volts for a voltage source,
    /// amps for a current source. Both rewrites are RHS-only — a
    /// voltage source's matrix stamps are the topological `±1` entries —
    /// so the LU cache survives.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::UnknownElement`] — no such element.
    /// * [`CircuitError::InvalidValue`] — non-finite value, or the
    ///   element is neither a voltage source nor a constant current
    ///   source.
    pub fn set_source(&mut self, element: ElementId, value: f64) -> Result<(), CircuitError> {
        check_source_value("set_source value", value)?;
        let op = self.op_mut(element)?;
        match &mut op.kind {
            TranOpKind::VoltageSource { v, .. } => {
                *v = value;
                Ok(())
            }
            TranOpKind::CurrentSource { i } => {
                *i = value;
                Ok(())
            }
            _ => Err(CircuitError::InvalidValue {
                element: "set_source on a non-source element",
                value: element.index() as f64,
            }),
        }
    }

    /// Replaces a switch's gate drive (schedule plus no-schedule
    /// fallback state) in place.
    ///
    /// Unlike the source restamps this can change which conductance
    /// configurations a run visits, but the per-configuration LU cache
    /// absorbs that: already-cached configurations are reused and new
    /// ones are factored once on first sight, so a restamped plan still
    /// replays exactly what a fresh compile of the edited netlist would.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::UnknownElement`] — no such element.
    /// * [`CircuitError::InvalidValue`] — the element is not a switch.
    pub fn set_switch_drive(
        &mut self,
        element: ElementId,
        schedule: Option<PwmSchedule>,
        initial: SwitchState,
    ) -> Result<(), CircuitError> {
        let op = self.op_mut(element)?;
        match &mut op.kind {
            TranOpKind::Switch {
                schedule: slot,
                initial: state,
                ..
            } => {
                *slot = schedule;
                *state = initial;
                Ok(())
            }
            _ => Err(CircuitError::InvalidValue {
                element: "set_switch_drive on a non-switch element",
                value: element.index() as f64,
            }),
        }
    }

    /// Schedules a one-shot failure on a switch: it conducts until `at`
    /// and stays off from then on — the "VR dies mid-run" event of
    /// dynamic fault studies. Equivalent to
    /// [`TransientPlan::set_switch_drive`] with
    /// [`PwmSchedule::always_on`] carrying a failure at `at`.
    ///
    /// # Errors
    ///
    /// As for [`TransientPlan::set_switch_drive`], plus
    /// [`CircuitError::InvalidValue`] for a negative or non-finite
    /// failure time.
    pub fn fail_switch_at(&mut self, element: ElementId, at: Seconds) -> Result<(), CircuitError> {
        let drive = PwmSchedule::always_on().with_failure_at(at)?;
        self.set_switch_drive(element, Some(drive), SwitchState::On)
    }

    fn op_mut(&mut self, element: ElementId) -> Result<&mut TranOp, CircuitError> {
        let index = element.index();
        self.ops
            .get_mut(index)
            .ok_or(CircuitError::UnknownElement { index })
    }

    /// Fills `sw_buf` with every switch's state at time `t`, in element
    /// order — the same vector the legacy walk collects per step.
    fn compute_switch_states(&mut self, t: f64) {
        self.sw_buf.clear();
        for op in &self.ops {
            if let TranOpKind::Switch {
                schedule, initial, ..
            } = &op.kind
            {
                self.sw_buf
                    .push(schedule.map_or(*initial, |s| s.state_at(t)));
            }
        }
    }

    /// Resolves (building if needed) the factorization for the switch
    /// configuration in `sw_buf`. The common unchanged-configuration
    /// case is a vector compare, not a hash.
    fn ensure_factor(&mut self) -> Result<usize, CircuitError> {
        if let Some(k) = self.current {
            if self.current_key == self.sw_buf {
                return Ok(k);
            }
        }
        if let Some(&k) = self.factor_index.get(&self.sw_buf) {
            self.current_key.clone_from(&self.sw_buf);
            self.current = Some(k);
            return Ok(k);
        }
        vpd_obs::incr("transient.factorizations");
        let _span = vpd_obs::span("transient.factor_ns");
        let mut a = DenseMatrix::zeros(self.dim, self.dim);
        let mut sw_k = 0;
        for op in &self.ops {
            match &op.kind {
                TranOpKind::Conductance { g, .. } => stamp_g(&mut a, op.na, op.nb, *g)?,
                TranOpKind::Switch { g_on, g_off, .. } => {
                    let g = match self.sw_buf[sw_k] {
                        SwitchState::On => *g_on,
                        SwitchState::Off => *g_off,
                    };
                    sw_k += 1;
                    stamp_g(&mut a, op.na, op.nb, g)?;
                }
                TranOpKind::Capacitor { g } => stamp_g(&mut a, op.na, op.nb, *g)?,
                TranOpKind::Inductor { g } => stamp_g(&mut a, op.na, op.nb, *g)?,
                TranOpKind::VoltageSource { row, .. } => {
                    if let Some(i) = op.na {
                        a.add_at(i, *row, 1.0)?;
                        a.add_at(*row, i, 1.0)?;
                    }
                    if let Some(j) = op.nb {
                        a.add_at(j, *row, -1.0)?;
                        a.add_at(*row, j, -1.0)?;
                    }
                }
                TranOpKind::CurrentSource { .. }
                | TranOpKind::StepCurrent { .. }
                | TranOpKind::RampCurrent { .. } => {}
            }
        }
        let lu = LuFactor::new(&a)?;
        let k = self.factors.len();
        self.factors.push(lu);
        self.factor_index.insert(self.sw_buf.clone(), k);
        self.current_key.clone_from(&self.sw_buf);
        self.current = Some(k);
        Ok(k)
    }

    /// One backward-Euler step: the legacy loop body, replayed over the
    /// compiled ops with reusable buffers.
    fn step(&mut self) -> Result<(), CircuitError> {
        let t = self.next_step as f64 * self.dt;
        self.compute_switch_states(t);
        let cur = self.ensure_factor()?;

        // RHS with companion-source history terms.
        for v in &mut self.rhs {
            *v = 0.0;
        }
        for (i, op) in self.ops.iter().enumerate() {
            match &op.kind {
                TranOpKind::CurrentSource { i: i_src } => {
                    if let Some(ia) = op.na {
                        self.rhs[ia] -= *i_src;
                    }
                    if let Some(ib) = op.nb {
                        self.rhs[ib] += *i_src;
                    }
                }
                TranOpKind::StepCurrent { before, after, at } => {
                    let i_src = if t < *at { *before } else { *after };
                    if let Some(ia) = op.na {
                        self.rhs[ia] -= i_src;
                    }
                    if let Some(ib) = op.nb {
                        self.rhs[ib] += i_src;
                    }
                }
                TranOpKind::RampCurrent {
                    before,
                    after,
                    at,
                    rise,
                } => {
                    let i_src = ramp_value(*before, *after, *at, *rise, t);
                    if let Some(ia) = op.na {
                        self.rhs[ia] -= i_src;
                    }
                    if let Some(ib) = op.nb {
                        self.rhs[ib] += i_src;
                    }
                }
                TranOpKind::VoltageSource { v, row } => {
                    self.rhs[*row] = *v;
                }
                TranOpKind::Capacitor { g } => {
                    let hist = *g * self.state[i];
                    if let Some(ia) = op.na {
                        self.rhs[ia] += hist;
                    }
                    if let Some(ib) = op.nb {
                        self.rhs[ib] -= hist;
                    }
                }
                TranOpKind::Inductor { .. } => {
                    let hist = self.state[i];
                    if let Some(ia) = op.na {
                        self.rhs[ia] -= hist;
                    }
                    if let Some(ib) = op.nb {
                        self.rhs[ib] += hist;
                    }
                }
                TranOpKind::Conductance { .. } | TranOpKind::Switch { .. } => {}
            }
        }

        self.factors[cur].solve_into(&self.rhs, &mut self.x)?;
        self.voltages[0] = 0.0;
        self.voltages[1..self.n_nodes].copy_from_slice(&self.x[..self.n_nodes - 1]);

        // Record + update state.
        self.result.times.push(t);
        for (n, v) in self.voltages.iter().enumerate() {
            self.result.node_v[n].push(*v);
        }
        let mut sw_k = 0;
        for (i, op) in self.ops.iter().enumerate() {
            let vab = self.voltages[op.ra] - self.voltages[op.rb];
            let i_e = match &op.kind {
                TranOpKind::Conductance { r, .. } => vab / *r,
                TranOpKind::Switch { r_on, r_off, .. } => {
                    let r = match self.sw_buf[sw_k] {
                        SwitchState::On => *r_on,
                        SwitchState::Off => *r_off,
                    };
                    sw_k += 1;
                    vab / r
                }
                TranOpKind::CurrentSource { i } => *i,
                TranOpKind::StepCurrent { before, after, at } => {
                    if t < *at {
                        *before
                    } else {
                        *after
                    }
                }
                TranOpKind::RampCurrent {
                    before,
                    after,
                    at,
                    rise,
                } => ramp_value(*before, *after, *at, *rise, t),
                TranOpKind::VoltageSource { row, .. } => self.x[*row],
                TranOpKind::Capacitor { g } => {
                    let i_c = *g * (vab - self.state[i]);
                    self.state[i] = vab;
                    i_c
                }
                TranOpKind::Inductor { g } => {
                    let i_l = self.state[i] + *g * vab;
                    self.state[i] = i_l;
                    i_l
                }
            };
            self.result.element_i[i].push(i_e);
        }
        self.next_step += 1;
        Ok(())
    }
}

fn check_source_value(element: &'static str, value: f64) -> Result<(), CircuitError> {
    if value.is_finite() {
        Ok(())
    } else {
        Err(CircuitError::InvalidValue { element, value })
    }
}

fn check_source_time(element: &'static str, value: f64) -> Result<(), CircuitError> {
    if value.is_finite() && value >= 0.0 {
        Ok(())
    } else {
        Err(CircuitError::InvalidValue { element, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PwmSchedule;
    use vpd_units::{Amps, Farads, Henries, Hertz, Ohms, Volts};

    #[test]
    fn rc_charge_matches_analytic() {
        let mut net = Netlist::new();
        let vin = net.node("vin");
        let out = net.node("out");
        net.voltage_source(vin, net.ground(), Volts::new(1.0))
            .unwrap();
        net.resistor(vin, out, Ohms::new(1000.0)).unwrap();
        net.capacitor(
            out,
            net.ground(),
            Farads::from_microfarads(1.0),
            Volts::ZERO,
        )
        .unwrap();
        let settings = TransientSettings::new(Seconds::new(2e-3), Seconds::new(1e-7)).unwrap();
        let res = transient(&net, &settings).unwrap();
        // Compare against 1 − e^{−t/RC} at several times.
        let rc = 1e-3;
        for (k, &t) in res.times().iter().enumerate().step_by(2000) {
            let expected = 1.0 - (-t / rc).exp();
            let got = res.voltage(out)[k];
            assert!(
                (got - expected).abs() < 2e-3,
                "t={t}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn rl_rise_matches_analytic() {
        // V → R → L → gnd: i(t) = V/R (1 − e^{−tR/L}).
        let mut net = Netlist::new();
        let vin = net.node("vin");
        let mid = net.node("mid");
        net.voltage_source(vin, net.ground(), Volts::new(1.0))
            .unwrap();
        net.resistor(vin, mid, Ohms::new(1.0)).unwrap();
        let l_id = net
            .inductor(
                mid,
                net.ground(),
                Henries::from_microhenries(1.0),
                Amps::ZERO,
            )
            .unwrap();
        let settings = TransientSettings::new(Seconds::new(5e-6), Seconds::new(1e-9)).unwrap();
        let res = transient(&net, &settings).unwrap();
        let tau = 1e-6;
        for (k, &t) in res.times().iter().enumerate().step_by(1000) {
            let expected = 1.0 - (-t / tau).exp();
            let got = res.current(l_id)[k];
            assert!(
                (got - expected).abs() < 5e-3,
                "t={t}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn switched_rc_reaches_duty_weighted_average() {
        // A PWM switch chopping 1 V into an RC filter settles at ~duty·V.
        let f = Hertz::from_megahertz(1.0);
        let duty = 0.3;
        let mut net = Netlist::new();
        let vin = net.node("vin");
        let sw = net.node("sw");
        let out = net.node("out");
        net.voltage_source(vin, net.ground(), Volts::new(1.0))
            .unwrap();
        net.switch(
            vin,
            sw,
            Ohms::from_milliohms(1.0),
            Ohms::new(1e7),
            Some(PwmSchedule::new(f, duty, 0.0).unwrap()),
            SwitchState::Off,
        )
        .unwrap();
        // Pull-down so `sw` follows the off state too.
        net.switch(
            sw,
            net.ground(),
            Ohms::from_milliohms(1.0),
            Ohms::new(1e7),
            Some(PwmSchedule::new(f, duty, 0.0).unwrap().complementary()),
            SwitchState::On,
        )
        .unwrap();
        net.resistor(sw, out, Ohms::new(10.0)).unwrap();
        net.capacitor(
            out,
            net.ground(),
            Farads::from_microfarads(10.0),
            Volts::ZERO,
        )
        .unwrap();
        let settings = TransientSettings::new(Seconds::new(2e-3), Seconds::new(5e-9)).unwrap();
        let res = transient(&net, &settings).unwrap();
        let settled = TransientResult::settled_mean(res.voltage(out), 0.2);
        assert!(
            (settled - duty).abs() < 0.02,
            "settled at {settled}, expected ~{duty}"
        );
    }

    #[test]
    fn step_current_source_steps() {
        // A step source into an RC supply node produces the classic
        // first-order droop toward the new operating point.
        let mut net = Netlist::new();
        let n = net.node("n");
        net.voltage_source(n, net.ground(), Volts::new(1.0))
            .unwrap();
        let mid = net.node("mid");
        net.resistor(n, mid, Ohms::from_milliohms(1.0)).unwrap();
        net.capacitor(
            mid,
            net.ground(),
            Farads::from_microfarads(100.0),
            Volts::new(1.0),
        )
        .unwrap();
        let step_id = net
            .step_current_source(
                mid,
                net.ground(),
                Amps::new(10.0),
                Amps::new(100.0),
                Seconds::from_microseconds(1.0),
            )
            .unwrap();
        let settings = TransientSettings::new(
            Seconds::from_microseconds(5.0),
            Seconds::from_nanoseconds(2.0),
        )
        .unwrap();
        let res = transient(&net, &settings).unwrap();
        let i = res.current(step_id);
        let times = res.times();
        // Before the step: 10 A; after: 100 A.
        let before_idx = times.iter().position(|&t| t > 0.5e-6).unwrap();
        let after_idx = times.iter().position(|&t| t > 2e-6).unwrap();
        assert_eq!(i[before_idx], 10.0);
        assert_eq!(i[after_idx], 100.0);
        // Voltage settles lower after the step (bigger IR drop).
        let v = res.voltage(mid);
        assert!(v[after_idx.max(times.len() - 2)] < v[before_idx]);
    }

    /// Bitwise equality of two results, series by series.
    fn assert_results_bitwise(a: &TransientResult, b: &TransientResult) {
        assert_eq!(a.times.len(), b.times.len());
        for (x, y) in a.times.iter().zip(&b.times) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.node_v.len(), b.node_v.len());
        for (sa, sb) in a.node_v.iter().zip(&b.node_v) {
            assert_eq!(sa.len(), sb.len());
            for (x, y) in sa.iter().zip(sb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(a.element_i.len(), b.element_i.len());
        for (sa, sb) in a.element_i.iter().zip(&b.element_i) {
            assert_eq!(sa.len(), sb.len());
            for (x, y) in sa.iter().zip(sb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// A netlist exercising every op kind: PWM switches, R, L, C, a
    /// voltage source, and all three current-source flavors.
    fn full_coverage_netlist() -> (Netlist, NodeId) {
        let f = Hertz::from_megahertz(2.0);
        let mut net = Netlist::new();
        let vin = net.node("vin");
        let sw = net.node("sw");
        let out = net.node("out");
        net.voltage_source(vin, net.ground(), Volts::new(1.0))
            .unwrap();
        net.switch(
            vin,
            sw,
            Ohms::from_milliohms(5.0),
            Ohms::new(1e6),
            Some(PwmSchedule::new(f, 0.4, 0.0).unwrap()),
            SwitchState::Off,
        )
        .unwrap();
        net.switch(
            sw,
            net.ground(),
            Ohms::from_milliohms(5.0),
            Ohms::new(1e6),
            Some(PwmSchedule::new(f, 0.4, 0.0).unwrap().complementary()),
            SwitchState::On,
        )
        .unwrap();
        net.inductor(sw, out, Henries::from_microhenries(0.5), Amps::ZERO)
            .unwrap();
        net.capacitor(
            out,
            net.ground(),
            Farads::from_microfarads(4.0),
            Volts::ZERO,
        )
        .unwrap();
        net.resistor(out, net.ground(), Ohms::new(2.0)).unwrap();
        net.current_source(out, net.ground(), Amps::new(0.05))
            .unwrap();
        net.step_current_source(
            out,
            net.ground(),
            Amps::new(0.01),
            Amps::new(0.2),
            Seconds::from_microseconds(3.0),
        )
        .unwrap();
        net.ramp_current_source(
            out,
            net.ground(),
            Amps::new(0.0),
            Amps::new(0.1),
            Seconds::from_microseconds(5.0),
            Seconds::from_microseconds(1.0),
        )
        .unwrap();
        (net, out)
    }

    #[test]
    fn ramp_current_source_interpolates_and_holds() {
        let mut net = Netlist::new();
        let n = net.node("n");
        net.resistor(n, net.ground(), Ohms::new(1.0)).unwrap();
        let ramp = net
            .ramp_current_source(
                n,
                net.ground(),
                Amps::new(1.0),
                Amps::new(5.0),
                Seconds::from_microseconds(2.0),
                Seconds::from_microseconds(4.0),
            )
            .unwrap();
        let settings = TransientSettings::new(
            Seconds::from_microseconds(10.0),
            Seconds::from_microseconds(1.0),
        )
        .unwrap();
        let res = transient(&net, &settings).unwrap();
        let i = res.current(ramp);
        // t = 0,1 µs: before; t = 2..6 µs: linear; t >= 6 µs: after.
        assert_eq!(i[0], 1.0);
        assert_eq!(i[1], 1.0);
        assert_eq!(i[2], 1.0); // ramp starts at `at`, still at `before`
        assert!((i[3] - 2.0).abs() < 1e-12);
        assert!((i[4] - 3.0).abs() < 1e-12);
        assert!((i[5] - 4.0).abs() < 1e-12);
        assert_eq!(i[6], 5.0);
        assert_eq!(i[10], 5.0);
    }

    #[test]
    fn zero_rise_ramp_is_bitwise_a_step() {
        let build = |ramp: bool| {
            let mut net = Netlist::new();
            let n = net.node("n");
            net.resistor(n, net.ground(), Ohms::new(0.5)).unwrap();
            net.capacitor(n, net.ground(), Farads::from_microfarads(1.0), Volts::ZERO)
                .unwrap();
            let (before, after) = (Amps::new(1.0), Amps::new(4.0));
            let at = Seconds::from_microseconds(2.0);
            if ramp {
                net.ramp_current_source(n, net.ground(), before, after, at, Seconds::ZERO)
                    .unwrap();
            } else {
                net.step_current_source(n, net.ground(), before, after, at)
                    .unwrap();
            }
            let settings = TransientSettings::new(
                Seconds::from_microseconds(8.0),
                Seconds::from_nanoseconds(20.0),
            )
            .unwrap();
            transient(&net, &settings).unwrap()
        };
        assert_results_bitwise(&build(true), &build(false));
    }

    #[test]
    fn ramp_source_validation() {
        let mut net = Netlist::new();
        let n = net.node("n");
        let g = net.ground();
        let ok = (Amps::new(1.0), Amps::new(2.0));
        assert!(net
            .ramp_current_source(n, g, ok.0, ok.1, Seconds::new(-1.0), Seconds::ZERO)
            .is_err());
        assert!(net
            .ramp_current_source(n, g, ok.0, ok.1, Seconds::ZERO, Seconds::new(-1e-9))
            .is_err());
        assert!(net
            .ramp_current_source(
                n,
                g,
                Amps::new(f64::NAN),
                ok.1,
                Seconds::ZERO,
                Seconds::ZERO
            )
            .is_err());
        assert!(net
            .ramp_current_source(n, g, ok.0, ok.1, Seconds::ZERO, Seconds::ZERO)
            .is_ok());
    }

    #[test]
    fn plan_matches_legacy_bitwise_with_all_element_kinds() {
        let (net, _) = full_coverage_netlist();
        let settings = TransientSettings::new(
            Seconds::from_microseconds(8.0),
            Seconds::from_nanoseconds(25.0),
        )
        .unwrap();
        let legacy = transient(&net, &settings).unwrap();
        let mut plan = TransientPlan::compile(&net, &settings).unwrap();
        let fast = plan.run().unwrap();
        assert_results_bitwise(fast, &legacy);
        // Two switch phases → exactly two cached configurations.
        assert_eq!(plan.cached_factorizations(), 2);
        // A second run re-factors zero times and reproduces the bits.
        let again = plan.run().unwrap().clone();
        assert_eq!(plan.cached_factorizations(), 2);
        assert_results_bitwise(&again, &legacy);
    }

    #[test]
    fn plan_advance_streams_the_same_bits() {
        let (net, out) = full_coverage_netlist();
        let settings = TransientSettings::new(
            Seconds::from_microseconds(4.0),
            Seconds::from_nanoseconds(50.0),
        )
        .unwrap();
        let legacy = transient(&net, &settings).unwrap();
        let mut plan = TransientPlan::compile(&net, &settings).unwrap();
        plan.start();
        let mut chunks = 0;
        loop {
            let n = plan.advance(17).unwrap();
            if n == 0 {
                break;
            }
            chunks += 1;
            assert!(plan.samples_done() <= plan.steps() + 1);
        }
        assert!(plan.finished());
        assert!(chunks > 1, "expected multiple chunks");
        assert_eq!(plan.samples_done(), plan.steps() + 1);
        assert_results_bitwise(plan.result(), &legacy);
        assert_eq!(plan.result().voltage(out).len(), legacy.voltage(out).len());
    }

    #[test]
    fn plan_restamp_matches_rebuild_from_scratch() {
        // Build with placeholder step params, restamp, and compare to a
        // netlist built directly with the final params.
        let make = |before: f64, after: f64, at_us: f64| {
            let mut net = Netlist::new();
            let vin = net.node("vin");
            let mid = net.node("mid");
            net.voltage_source(vin, net.ground(), Volts::new(1.0))
                .unwrap();
            net.resistor(vin, mid, Ohms::from_milliohms(2.0)).unwrap();
            net.capacitor(
                mid,
                net.ground(),
                Farads::from_microfarads(50.0),
                Volts::new(1.0),
            )
            .unwrap();
            let id = net
                .step_current_source(
                    mid,
                    net.ground(),
                    Amps::new(before),
                    Amps::new(after),
                    Seconds::from_microseconds(at_us),
                )
                .unwrap();
            (net, id)
        };
        let settings = TransientSettings::new(
            Seconds::from_microseconds(10.0),
            Seconds::from_nanoseconds(10.0),
        )
        .unwrap();
        let (net_a, step_a) = make(1.0, 10.0, 1.0);
        let (net_b, _) = make(2.5, 40.0, 3.0);
        let mut plan = TransientPlan::compile(&net_a, &settings).unwrap();
        plan.run().unwrap();
        plan.set_load_step(
            step_a,
            Amps::new(2.5),
            Amps::new(40.0),
            Seconds::from_microseconds(3.0),
        )
        .unwrap();
        let restamped = plan.run().unwrap();
        let scratch = transient(&net_b, &settings).unwrap();
        assert_results_bitwise(restamped, &scratch);
        // The restamp must not have invalidated the factorization.
        assert_eq!(plan.cached_factorizations(), 1);
    }

    #[test]
    fn plan_set_source_rewrites_rhs_only() {
        let mut net = Netlist::new();
        let vin = net.node("vin");
        let out = net.node("out");
        let vs = net
            .voltage_source(vin, net.ground(), Volts::new(1.0))
            .unwrap();
        let r = net.resistor(vin, out, Ohms::new(100.0)).unwrap();
        net.capacitor(
            out,
            net.ground(),
            Farads::from_microfarads(1.0),
            Volts::ZERO,
        )
        .unwrap();
        let settings = TransientSettings::new(Seconds::new(1e-4), Seconds::new(1e-7)).unwrap();
        let mut plan = TransientPlan::compile(&net, &settings).unwrap();
        plan.run().unwrap();
        plan.set_source(vs, 2.5).unwrap();
        let swept = plan.run().unwrap();
        let mut net2 = net.clone();
        net2.set_voltage(vs, Volts::new(2.5)).unwrap();
        let scratch = transient(&net2, &settings).unwrap();
        assert_results_bitwise(swept, &scratch);
        assert_eq!(plan.cached_factorizations(), 1);
        // Wrong-kind and out-of-range restamps are typed errors.
        assert!(plan.set_source(r, 1.0).is_err());
        assert!(plan
            .set_load_step(r, Amps::ZERO, Amps::ZERO, Seconds::ZERO)
            .is_err());
        assert!(plan
            .set_load_ramp(vs, Amps::ZERO, Amps::ZERO, Seconds::ZERO, Seconds::ZERO)
            .is_err());
        assert!(plan.set_source(ElementId(99), 1.0).is_err());
        assert!(plan.set_source(vs, f64::INFINITY).is_err());
    }

    #[test]
    fn fail_switch_at_matches_failure_baked_into_the_netlist() {
        // Restamping a mid-run switch failure onto a compiled plan must
        // replay the exact bits of compiling the dying netlist fresh.
        let build = |drive: Option<PwmSchedule>| {
            let mut net = Netlist::new();
            let vin = net.node("vin");
            let mid = net.node("mid");
            let out = net.node("out");
            net.voltage_source(vin, net.ground(), Volts::new(1.0))
                .unwrap();
            let sw = net
                .switch(
                    vin,
                    mid,
                    Ohms::from_milliohms(1.0),
                    Ohms::new(1e9),
                    drive,
                    SwitchState::On,
                )
                .unwrap();
            net.resistor(mid, out, Ohms::from_milliohms(5.0)).unwrap();
            net.capacitor(
                out,
                net.ground(),
                Farads::from_microfarads(1.0),
                Volts::new(1.0),
            )
            .unwrap();
            net.resistor(out, net.ground(), Ohms::new(1.0)).unwrap();
            (net, sw, out)
        };
        let settings = TransientSettings::new(
            Seconds::from_microseconds(8.0),
            Seconds::from_nanoseconds(20.0),
        )
        .unwrap();
        let at = Seconds::from_microseconds(3.0);
        let (healthy, sw, out) = build(None);
        let mut plan = TransientPlan::compile(&healthy, &settings).unwrap();
        plan.run().unwrap();
        assert_eq!(plan.cached_factorizations(), 1);
        plan.fail_switch_at(sw, at).unwrap();
        let restamped = plan.run().unwrap().clone();
        // The flip visits one new configuration; the healthy one stays
        // cached.
        assert_eq!(plan.cached_factorizations(), 2);
        let dying = PwmSchedule::always_on().with_failure_at(at).unwrap();
        let (baked, ..) = build(Some(dying));
        let scratch = transient(&baked, &settings).unwrap();
        assert_results_bitwise(&restamped, &scratch);
        // The die rail must actually sag once the switch opens.
        let v = restamped.voltage(out);
        assert!(v[0] > 0.9, "healthy rail holds up: {}", v[0]);
        assert!(
            *v.last().unwrap() < 0.1,
            "dead rail must collapse: {}",
            v.last().unwrap()
        );
        // Reverting the drive restores the healthy bits without a
        // third factorization.
        plan.set_switch_drive(sw, None, SwitchState::On).unwrap();
        let healthy_again = plan.run().unwrap().clone();
        assert_eq!(plan.cached_factorizations(), 2);
        let healthy_oracle = transient(&healthy, &settings).unwrap();
        assert_results_bitwise(&healthy_again, &healthy_oracle);
        // Wrong-kind, foreign-id, and bad-time restamps are typed
        // errors.
        let r_id = ElementId(2);
        assert!(plan.fail_switch_at(r_id, at).is_err());
        assert!(plan.set_switch_drive(r_id, None, SwitchState::On).is_err());
        assert!(plan.fail_switch_at(ElementId(99), at).is_err());
        assert!(plan.fail_switch_at(sw, Seconds::new(-1.0)).is_err());
        assert!(plan.fail_switch_at(sw, Seconds::new(f64::NAN)).is_err());
    }

    #[test]
    fn plan_rejects_empty_netlist() {
        let settings = TransientSettings::new(Seconds::new(1e-3), Seconds::new(1e-6)).unwrap();
        assert!(matches!(
            TransientPlan::compile(&Netlist::new(), &settings),
            Err(CircuitError::EmptyNetlist)
        ));
    }

    #[test]
    fn settings_validation() {
        assert!(TransientSettings::new(Seconds::new(0.0), Seconds::new(1e-9)).is_err());
        assert!(TransientSettings::new(Seconds::new(1e-3), Seconds::new(-1.0)).is_err());
        assert!(TransientSettings::new(Seconds::new(1e-9), Seconds::new(1e-3)).is_err());
    }

    #[test]
    fn empty_netlist_rejected() {
        let settings = TransientSettings::new(Seconds::new(1e-3), Seconds::new(1e-6)).unwrap();
        assert!(matches!(
            transient(&Netlist::new(), &settings),
            Err(CircuitError::EmptyNetlist)
        ));
    }

    #[test]
    fn waveform_stats() {
        let series = [0.0, 1.0, 0.0, 1.0];
        assert!((TransientResult::settled_mean(&series, 1.0) - 0.5).abs() < 1e-12);
        assert!((TransientResult::settled_ripple(&series, 1.0) - 1.0).abs() < 1e-12);
        assert!((TransientResult::settled_rms(&series, 1.0) - (0.5_f64).sqrt()).abs() < 1e-12);
        assert_eq!(TransientResult::settled_mean(&[], 0.5), 0.0);
    }

    #[test]
    fn waveform_stats_edge_fractions() {
        let series = [2.0, 4.0, 6.0, 8.0];
        // fraction = 0 is an empty window — it must NOT silently average
        // the final sample (the old clamp made this return 8.0).
        assert_eq!(TransientResult::settled_mean(&series, 0.0), 0.0);
        assert_eq!(TransientResult::settled_rms(&series, 0.0), 0.0);
        assert_eq!(TransientResult::settled_ripple(&series, 0.0), 0.0);
        // fraction = 1 covers the whole series.
        assert!((TransientResult::settled_mean(&series, 1.0) - 5.0).abs() < 1e-12);
        assert!((TransientResult::settled_ripple(&series, 1.0) - 6.0).abs() < 1e-12);
        // fraction > 1 clamps to the whole series; negative clamps to
        // the empty window.
        assert_eq!(
            TransientResult::settled_mean(&series, 7.5),
            TransientResult::settled_mean(&series, 1.0)
        );
        assert_eq!(TransientResult::settled_rms(&series, -0.5), 0.0);
        // Half window: the last two samples exactly.
        assert!((TransientResult::settled_mean(&series, 0.5) - 7.0).abs() < 1e-12);
        // Empty series stays 0 for every statistic and fraction.
        for f in [0.0, 0.5, 1.0, 2.0] {
            assert_eq!(TransientResult::settled_mean(&[], f), 0.0);
            assert_eq!(TransientResult::settled_rms(&[], f), 0.0);
            assert_eq!(TransientResult::settled_ripple(&[], f), 0.0);
        }
    }
}
