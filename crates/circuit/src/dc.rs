//! DC operating-point analysis via modified nodal analysis (MNA).
//!
//! Two solve paths are provided behind one API:
//!
//! * **Dense LU** — general MNA with voltage-source current unknowns;
//!   right for converter-sized circuits and anything with floating
//!   sources.
//! * **Sparse CG** — when every voltage source (and inductor, which is a
//!   0 V source in DC) has a grounded terminal, the fixed nodes are
//!   eliminated and the remaining conductance Laplacian is symmetric
//!   positive definite; large power-grid meshes solve in milliseconds.
//!
//! [`DcStrategy::Auto`] picks between them by problem size and
//! reducibility.

use crate::netlist::{ElementKind, SwitchState};
use crate::{CircuitError, ElementId, Netlist, NodeId};
use vpd_numeric::{
    conjugate_gradient, resilient_solve_direct_into, resilient_solve_into, CgSettings, CgWorkspace,
    CooMatrix, CsrMatrix, DenseMatrix, LuFactor, PatternCache, ResilientSettings, SolveReport,
    SparseCholesky, SymbolicCholesky,
};
use vpd_units::{Amps, Ohms, Volts, Watts};

/// Above this many unknowns, `Auto` prefers the sparse path when the
/// netlist is reducible.
const AUTO_SPARSE_THRESHOLD: usize = 400;

/// Solve-path selection for [`DcSolver`].
#[derive(Clone, Copy, PartialEq, Debug, Default)]
#[non_exhaustive]
pub enum DcStrategy {
    /// Choose automatically by size and structure.
    #[default]
    Auto,
    /// Force the dense LU MNA path.
    DenseLu,
    /// Force the sparse eliminated-Laplacian CG path (errors if the
    /// netlist has floating voltage sources or inductors).
    SparseCg(CgSettings),
}

/// DC operating-point solver.
///
/// ```
/// use vpd_circuit::{DcSolver, Netlist};
/// use vpd_units::{Amps, Ohms};
///
/// # fn main() -> Result<(), vpd_circuit::CircuitError> {
/// // 1 A pushed into a 2 Ω grounded resistor → 2 V.
/// let mut net = Netlist::new();
/// let n = net.node("n");
/// net.current_source(net.ground(), n, Amps::new(1.0))?;
/// net.resistor(n, net.ground(), Ohms::new(2.0))?;
/// let sol = DcSolver::new().solve(&net)?;
/// assert!((sol.voltage(n).value() - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct DcSolver {
    strategy: DcStrategy,
}

impl DcSolver {
    /// A solver with the [`DcStrategy::Auto`] path selection.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A solver with an explicit strategy.
    #[must_use]
    pub fn with_strategy(strategy: DcStrategy) -> Self {
        Self { strategy }
    }

    /// Solves the DC operating point.
    ///
    /// Capacitors are open circuits, inductors are 0 V sources (exact
    /// shorts), and switches take their `t = 0` state.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::EmptyNetlist`] — nothing to solve.
    /// * [`CircuitError::FloatingNode`] — some node has no resistive or
    ///   source path to ground.
    /// * [`CircuitError::Numeric`] — the factorization or iteration
    ///   failed (e.g. a loop of ideal voltage sources).
    pub fn solve(&self, net: &Netlist) -> Result<DcSolution, CircuitError> {
        if net.element_count() == 0 {
            return Err(CircuitError::EmptyNetlist);
        }
        check_connectivity(net)?;
        let branches = lower(net);
        let reducible = branches.iter().all(|b| match b.kind {
            BranchKind::Source { .. } => b.a == net.ground() || b.b == net.ground(),
            _ => true,
        }) && fixed_nodes_unique(net, &branches);

        let unknowns = net.node_count() - 1
            + branches
                .iter()
                .filter(|b| matches!(b.kind, BranchKind::Source { .. }))
                .count();

        let use_sparse = match self.strategy {
            DcStrategy::Auto => reducible && unknowns > AUTO_SPARSE_THRESHOLD,
            DcStrategy::DenseLu => false,
            DcStrategy::SparseCg(_) => {
                if !reducible {
                    return Err(CircuitError::FloatingNode {
                        label: "sparse path requires grounded voltage sources".to_owned(),
                    });
                }
                true
            }
        };

        let node_voltages = if use_sparse {
            let settings = match self.strategy {
                DcStrategy::SparseCg(s) => s,
                _ => CgSettings::default(),
            };
            solve_sparse(net, &branches, &settings)?
        } else {
            solve_dense(net, &branches)?
        };

        let adjacency = build_adjacency(net);
        let element_currents = recover_currents(net, &node_voltages, &adjacency);
        Ok(DcSolution {
            node_voltages,
            element_currents,
        })
    }
}

/// A compiled sparse DC solve plan: symbolic analysis done once, numeric
/// restamping and warm-started CG per solve.
///
/// [`DcSolver::solve`] re-derives everything from the netlist on every
/// call — connectivity, node elimination, COO assembly, sort-and-merge,
/// current-recovery scans. When the same topology is solved hundreds of
/// times with different element values (Monte-Carlo sampling, design
/// sweeps, placement annealing), that symbolic work dominates. A plan
/// hoists it:
///
/// * node elimination and the CSR sparsity [`PatternCache`] are computed
///   at compile time;
/// * each solve re-reads element values and scatter-stamps them in place
///   (O(nnz), allocation-free);
/// * the CG solution vector persists across solves, so each solve
///   warm-starts from the last (or from an explicit
///   [`SparseDcPlan::set_guess`]);
/// * per-node element adjacency is cached for O(degree) source-current
///   recovery.
///
/// Value-only mutations ([`Netlist::set_resistance`] and friends) keep a
/// plan valid; terminal changes ([`Netlist::rewire`]) or adding elements
/// require [`SparseDcPlan::compile`] again (a stale plan is detected and
/// reported as [`CircuitError::StalePlan`]).
///
/// ```
/// use vpd_circuit::{Netlist, SparseDcPlan};
/// use vpd_units::{Amps, Ohms, Volts};
///
/// # fn main() -> Result<(), vpd_circuit::CircuitError> {
/// let mut net = Netlist::new();
/// let n = net.node("n");
/// net.current_source(net.ground(), n, Amps::new(1.0))?;
/// let r = net.resistor(n, net.ground(), Ohms::new(2.0))?;
/// let mut plan = SparseDcPlan::compile(&net)?;
/// assert!((plan.solve(&net)?.voltage(n).value() - 2.0).abs() < 1e-9);
/// net.set_resistance(r, Ohms::new(4.0))?; // restamp, no recompile
/// assert!((plan.solve(&net)?.voltage(n).value() - 4.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SparseDcPlan {
    node_count: usize,
    /// Topology fingerprint: (a, b, kind tag) per element.
    fingerprint: Vec<(usize, usize, u8)>,
    unknown_index: Vec<Option<usize>>,
    fixed_from: Vec<FixedBy>,
    ops: Vec<StampOp>,
    csr: CsrMatrix,
    pattern: PatternCache,
    raw_values: Vec<f64>,
    rhs: Vec<f64>,
    fixed_vals: Vec<f64>,
    x: Vec<f64>,
    ws: CgWorkspace,
    settings: ResilientSettings,
    adjacency: Vec<Vec<(usize, f64)>>,
    last_report: Option<SolveReport>,
    mode: DcPlanMode,
    /// Symbolic factorization cached at compile time (direct mode only):
    /// ordering, elimination tree, and the pattern of `L` — reused by
    /// every numeric refactorization, including retries after a failed
    /// one.
    sym: Option<SymbolicCholesky>,
    /// The numeric factor, built lazily on the first direct-mode solve
    /// (compile time has no element values yet) and refactored in place
    /// on every restamp.
    chol: Option<SparseCholesky>,
}

/// Which solver backs [`SparseDcPlan::solve`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[non_exhaustive]
pub enum DcPlanMode {
    /// Warm-started preconditioned CG behind the resilience ladder
    /// (restart, then dense LU) — the iterative default.
    #[default]
    WarmCg,
    /// Sparse Cholesky direct solves: the symbolic factorization is
    /// cached in the plan, each restamp refactors numerically (skipped
    /// when the matrix values are bitwise-unchanged), and failures
    /// degrade through the same CG ladder. Exact solves, no
    /// iteration-count variance, and [`SparseDcPlan::solve_block`] can
    /// batch right-hand sides against one factor.
    DirectCholesky,
}

/// How a node's potential is determined.
#[derive(Clone, Copy, Debug)]
enum FixedBy {
    /// Solved for (an unknown).
    Free,
    /// The reference node (0 V).
    Ground,
    /// Pinned by a grounded source element: `sign * V(element)`.
    Source { element: usize, sign: f64 },
}

/// Compiled per-element stamping instruction. The raw-value push order
/// (4 for `CondUU`, 1 for `CondUF`, 0 otherwise, in element order) is
/// the contract between compile-time pattern construction and per-solve
/// restamping.
#[derive(Clone, Copy, Debug)]
enum StampOp {
    /// Conductance between two unknowns.
    CondUU { i: usize, j: usize },
    /// Conductance between unknown `i` and fixed node `fixed_node`.
    CondUF { i: usize, fixed_node: usize },
    /// Conductance between two fixed nodes: no reduced-system stamp.
    CondFF,
    /// Current injection; right-hand side only.
    Current {
        ia: Option<usize>,
        ib: Option<usize>,
    },
    /// Open circuit or voltage constraint: nothing to stamp.
    Skip,
}

fn kind_tag(kind: &ElementKind) -> u8 {
    match kind {
        ElementKind::Resistor { .. } => 0,
        ElementKind::CurrentSource { .. } => 1,
        ElementKind::StepCurrentSource { .. } => 2,
        ElementKind::VoltageSource { .. } => 3,
        ElementKind::Capacitor { .. } => 4,
        ElementKind::Inductor { .. } => 5,
        ElementKind::Switch { .. } => 6,
        ElementKind::RampCurrentSource { .. } => 7,
    }
}

/// DC conductance of an element, if it lowers to one.
fn dc_conductance(kind: &ElementKind) -> Option<f64> {
    match kind {
        ElementKind::Resistor { r } => Some(1.0 / r.value()),
        ElementKind::Switch {
            r_on,
            r_off,
            schedule,
            initial,
        } => Some(1.0 / dc_switch_resistance(*r_on, *r_off, *schedule, *initial)),
        _ => None,
    }
}

/// DC injection current of an element, if it lowers to one.
fn dc_current(kind: &ElementKind) -> Option<f64> {
    match kind {
        ElementKind::CurrentSource { i } => Some(i.value()),
        ElementKind::StepCurrentSource { before, .. } => Some(before.value()),
        ElementKind::RampCurrentSource { before, .. } => Some(before.value()),
        _ => None,
    }
}

/// DC constraint voltage of an element, if it lowers to a source.
fn dc_source_voltage(kind: &ElementKind) -> Option<f64> {
    match kind {
        ElementKind::VoltageSource { v } => Some(v.value()),
        ElementKind::Inductor { .. } => Some(0.0),
        _ => None,
    }
}

impl SparseDcPlan {
    /// Compiles a plan with default CG settings.
    ///
    /// # Errors
    ///
    /// As [`SparseDcPlan::compile_with`].
    pub fn compile(net: &Netlist) -> Result<Self, CircuitError> {
        Self::compile_with(net, CgSettings::default())
    }

    /// Compiles a plan with explicit CG settings and the default
    /// resilience ladder (restart + dense-LU fallback) around them.
    ///
    /// # Errors
    ///
    /// As [`SparseDcPlan::compile_resilient`].
    pub fn compile_with(net: &Netlist, settings: CgSettings) -> Result<Self, CircuitError> {
        Self::compile_resilient(net, settings.into())
    }

    /// Compiles the symbolic side of the sparse solve for this netlist
    /// topology, with full control of the resilience ladder (set
    /// `allow_dense_fallback: false` to get hard CG errors back).
    ///
    /// # Errors
    ///
    /// * [`CircuitError::EmptyNetlist`] — nothing to solve.
    /// * [`CircuitError::FloatingNode`] — disconnected nodes, or a
    ///   floating (ungrounded) voltage source/inductor, which the sparse
    ///   elimination cannot express.
    pub fn compile_resilient(
        net: &Netlist,
        settings: ResilientSettings,
    ) -> Result<Self, CircuitError> {
        if net.element_count() == 0 {
            return Err(CircuitError::EmptyNetlist);
        }
        check_connectivity(net)?;
        let branches = lower(net);
        let reducible = branches.iter().all(|b| match b.kind {
            BranchKind::Source { .. } => b.a == net.ground() || b.b == net.ground(),
            _ => true,
        }) && fixed_nodes_unique(net, &branches);
        if !reducible {
            return Err(CircuitError::FloatingNode {
                label: "sparse plan requires grounded voltage sources".to_owned(),
            });
        }

        let n = net.node_count();
        let mut fixed_from = vec![FixedBy::Free; n];
        fixed_from[0] = FixedBy::Ground;
        for b in &branches {
            if let BranchKind::Source { .. } = b.kind {
                let (node, sign) = if b.b == net.ground() {
                    (b.a.index(), 1.0)
                } else {
                    (b.b.index(), -1.0)
                };
                fixed_from[node] = FixedBy::Source {
                    element: b.element,
                    sign,
                };
            }
        }
        let mut unknown_index: Vec<Option<usize>> = vec![None; n];
        let mut m = 0;
        for node in 0..n {
            if matches!(fixed_from[node], FixedBy::Free) {
                unknown_index[node] = Some(m);
                m += 1;
            }
        }

        let mut ops = Vec::with_capacity(branches.len());
        for b in &branches {
            let op = match b.kind {
                BranchKind::Conductance(_) => {
                    let (na, nb) = (b.a.index(), b.b.index());
                    match (unknown_index[na], unknown_index[nb]) {
                        (Some(i), Some(j)) => StampOp::CondUU { i, j },
                        (Some(i), None) => StampOp::CondUF { i, fixed_node: nb },
                        (None, Some(j)) => StampOp::CondUF {
                            i: j,
                            fixed_node: na,
                        },
                        (None, None) => StampOp::CondFF,
                    }
                }
                BranchKind::Current(_) => StampOp::Current {
                    ia: unknown_index[b.a.index()],
                    ib: unknown_index[b.b.index()],
                },
                BranchKind::Source { .. } | BranchKind::Open => StampOp::Skip,
            };
            ops.push(op);
        }

        let mut coo = CooMatrix::new(m, m);
        for op in &ops {
            match *op {
                StampOp::CondUU { i, j } => {
                    coo.push_structural(i, i);
                    coo.push_structural(j, j);
                    coo.push_structural(i, j);
                    coo.push_structural(j, i);
                }
                StampOp::CondUF { i, .. } => coo.push_structural(i, i),
                _ => {}
            }
        }
        let (csr, pattern) = coo.to_csr_with_pattern();

        let fingerprint = net
            .elements()
            .iter()
            .map(|e| (e.a.index(), e.b.index(), kind_tag(&e.kind)))
            .collect();

        vpd_obs::incr("plan.compiles");
        Ok(Self {
            node_count: n,
            fingerprint,
            unknown_index,
            fixed_from,
            ops,
            raw_values: Vec::with_capacity(pattern.raw_len()),
            rhs: vec![0.0; m],
            fixed_vals: vec![0.0; n],
            x: vec![0.0; m],
            ws: CgWorkspace::new(),
            settings,
            adjacency: build_adjacency(net),
            last_report: None,
            csr,
            pattern,
            mode: DcPlanMode::WarmCg,
            sym: None,
            chol: None,
        })
    }

    /// Compiles a plan in [`DcPlanMode::DirectCholesky`] with default
    /// settings: the fill-reducing ordering, elimination tree, and factor
    /// pattern are analyzed here, once, and every later solve only
    /// refactors numerically.
    ///
    /// # Errors
    ///
    /// As [`SparseDcPlan::compile_resilient`].
    pub fn compile_direct(net: &Netlist) -> Result<Self, CircuitError> {
        Self::compile_direct_resilient(net, ResilientSettings::default())
    }

    /// Compiles a direct-mode plan with explicit ladder settings (the CG
    /// tolerance doubles as the direct rung's residual acceptance bar).
    ///
    /// # Errors
    ///
    /// As [`SparseDcPlan::compile_resilient`].
    pub fn compile_direct_resilient(
        net: &Netlist,
        settings: ResilientSettings,
    ) -> Result<Self, CircuitError> {
        let mut plan = Self::compile_resilient(net, settings)?;
        plan.set_mode(DcPlanMode::DirectCholesky)?;
        Ok(plan)
    }

    /// The solver mode backing [`SparseDcPlan::solve`].
    #[must_use]
    pub const fn mode(&self) -> DcPlanMode {
        self.mode
    }

    /// Switches the solver mode. Entering direct mode runs the symbolic
    /// analysis (if not already cached); leaving it keeps the analysis
    /// around so switching back is free.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Numeric`] if the symbolic analysis fails
    /// (cannot happen for plans this compiler produced — the reduced
    /// system is square by construction).
    pub fn set_mode(&mut self, mode: DcPlanMode) -> Result<(), CircuitError> {
        if mode == DcPlanMode::DirectCholesky && self.sym.is_none() {
            self.sym = Some(SymbolicCholesky::analyze(&self.csr)?);
        }
        self.mode = mode;
        Ok(())
    }

    /// Ensures a numeric factor object exists for the current symbolic
    /// analysis, building it from the current matrix values on first use.
    fn ensure_factor(&mut self) -> Result<&mut SparseCholesky, CircuitError> {
        if self.chol.is_none() {
            let sym = match &self.sym {
                Some(sym) => sym.clone(),
                None => SymbolicCholesky::analyze(&self.csr)?,
            };
            self.chol = Some(SparseCholesky::factor_with(&self.csr, sym)?);
        }
        Ok(self.chol.as_mut().expect("factor was just ensured"))
    }

    /// Number of eliminated-system unknowns.
    #[must_use]
    pub fn unknown_count(&self) -> usize {
        self.x.len()
    }

    /// The convergence report of the most recent successful solve:
    /// which ladder rung produced it, CG iterations spent, final
    /// relative residual, and whether CG stagnated along the way.
    #[must_use]
    pub fn last_report(&self) -> Option<SolveReport> {
        self.last_report
    }

    /// Seeds the next solve's warm start from a previous solution of the
    /// same topology (e.g. the nominal operating point of a Monte-Carlo
    /// study). Without this, each solve warm-starts from the previous
    /// solve's result.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::StalePlan`] when the solution's node count
    /// does not match the plan's.
    pub fn set_guess(&mut self, sol: &DcSolution) -> Result<(), CircuitError> {
        if sol.node_voltages.len() != self.node_count {
            return Err(CircuitError::StalePlan {
                reason: format!(
                    "guess has {} nodes, plan has {}",
                    sol.node_voltages.len(),
                    self.node_count
                ),
            });
        }
        for node in 0..self.node_count {
            if let Some(i) = self.unknown_index[node] {
                self.x[i] = sol.node_voltages[node];
            }
        }
        Ok(())
    }

    /// Clears the warm start: the next solve starts from zero, exactly
    /// reproducing a cold [`DcSolver`] sparse solve.
    pub fn reset_guess(&mut self) {
        self.x.fill(0.0);
    }

    /// Restamps current element values and solves, warm-starting from
    /// the current guess. When CG stagnates or runs out of iterations,
    /// the solve climbs the resilience ladder (cold-restart CG, then
    /// dense LU unless disabled) instead of failing; the rung that
    /// produced the answer is recorded in [`SparseDcPlan::last_report`].
    ///
    /// # Errors
    ///
    /// * [`CircuitError::StalePlan`] — the netlist's topology changed
    ///   since compile; recompile and retry.
    /// * [`CircuitError::Numeric`] — every permitted ladder rung failed
    ///   (the guess is reset so the next attempt is a clean cold start).
    pub fn solve(&mut self, net: &Netlist) -> Result<DcSolution, CircuitError> {
        self.check_topology(net)?;
        self.restamp(net)?;
        vpd_obs::incr("plan.solves");
        vpd_obs::incr("plan.restamps");
        let solve_result = self.run_ladder();
        let report = match solve_result {
            Ok(report) => report,
            Err(e) => {
                self.reset_guess();
                return Err(CircuitError::from(e));
            }
        };
        if report.iterations == 0 {
            vpd_obs::incr("plan.warm_hits");
        }
        self.last_report = Some(report);

        let node_voltages: Vec<f64> = (0..self.node_count)
            .map(|node| match self.unknown_index[node] {
                Some(i) => self.x[i],
                None => self.fixed_vals[node],
            })
            .collect();
        let element_currents = recover_currents(net, &node_voltages, &self.adjacency);
        Ok(DcSolution {
            node_voltages,
            element_currents,
        })
    }

    /// Runs the restamped system through the ladder the current mode
    /// selects. In direct mode a failed *first* factorization (the only
    /// one [`SparseDcPlan::ensure_factor`] can't hand to the resilient
    /// direct ladder) degrades to the iterative ladder for this solve
    /// and is retried on the next.
    fn run_ladder(&mut self) -> Result<SolveReport, vpd_numeric::NumericError> {
        if self.mode == DcPlanMode::DirectCholesky {
            if self.chol.is_none() && self.ensure_factor().is_err() {
                vpd_obs::incr("plan.direct_factor_failures");
            } else if let Some(chol) = self.chol.as_mut() {
                return resilient_solve_direct_into(
                    &self.csr,
                    chol,
                    &self.rhs,
                    &mut self.x,
                    &self.settings,
                    &mut self.ws,
                );
            }
        }
        resilient_solve_into(
            &self.csr,
            &self.rhs,
            &mut self.x,
            &self.settings,
            &mut self.ws,
        )
    }

    /// Solves `k` closely-related configurations of one topology as a
    /// single multi-right-hand-side block against one factorization.
    ///
    /// `configure(net, c)` must put the netlist into configuration `c`
    /// **absolutely** (not incrementally — it may be called more than
    /// once per configuration, and in any order). When every
    /// configuration stamps a bitwise-identical matrix — true whenever
    /// only sources move: regulator setpoints, load currents — the plan
    /// factors once and forward/back-substitutes all `k` right-hand
    /// sides in one pass over the factor. The results are
    /// bitwise-identical to `k` sequential [`SparseDcPlan::solve`] calls
    /// in direct mode, because the block kernel's per-column arithmetic
    /// does not depend on `k`.
    ///
    /// When configurations disagree on matrix values, or the plan is not
    /// in [`DcPlanMode::DirectCholesky`], or the factorization fails,
    /// the call transparently degrades to exactly those sequential
    /// solves.
    ///
    /// # Errors
    ///
    /// As [`SparseDcPlan::solve`]; whichever configuration fails first
    /// aborts the batch.
    pub fn solve_block<F>(
        &mut self,
        net: &mut Netlist,
        k: usize,
        mut configure: F,
    ) -> Result<Vec<DcSolution>, CircuitError>
    where
        F: FnMut(&mut Netlist, usize) -> Result<(), CircuitError>,
    {
        if k == 0 {
            return Ok(Vec::new());
        }
        let m = self.x.len();
        let mut coalesce = self.mode == DcPlanMode::DirectCholesky;
        let mut block = vec![0.0; m * k];
        let mut fixed_cols: Vec<Vec<f64>> = Vec::with_capacity(k);
        let mut base_values: Vec<f64> = Vec::new();
        if coalesce {
            for c in 0..k {
                configure(net, c)?;
                self.check_topology(net)?;
                self.restamp(net)?;
                if c == 0 {
                    base_values.extend_from_slice(self.csr.values());
                } else if self
                    .csr
                    .values()
                    .iter()
                    .zip(&base_values)
                    .any(|(a, b)| a.to_bits() != b.to_bits())
                {
                    // The matrix moved between configurations: no shared
                    // factor exists, so solve them one by one instead.
                    coalesce = false;
                    break;
                }
                block[c * m..(c + 1) * m].copy_from_slice(&self.rhs);
                fixed_cols.push(self.fixed_vals.clone());
            }
        }
        if coalesce && self.ensure_factor().is_err() {
            vpd_obs::incr("plan.direct_factor_failures");
            coalesce = false;
        }
        if coalesce {
            // `restamp` left the matrix at the shared values; refactor is
            // a no-op when the factor already matches them bitwise.
            let chol = self.chol.as_mut().expect("factor was just ensured");
            if chol.refactor(&self.csr).is_ok() && chol.solve_block_into(&mut block, k).is_ok() {
                vpd_obs::incr("plan.block_solves");
                vpd_obs::observe("plan.block_rhs", k as u64);
                let mut out = Vec::with_capacity(k);
                for c in 0..k {
                    // Re-apply the configuration so current recovery sees
                    // configuration c's element values.
                    configure(net, c)?;
                    let col = &block[c * m..(c + 1) * m];
                    let node_voltages: Vec<f64> = (0..self.node_count)
                        .map(|node| match self.unknown_index[node] {
                            Some(i) => col[i],
                            None => fixed_cols[c][node],
                        })
                        .collect();
                    let element_currents = recover_currents(net, &node_voltages, &self.adjacency);
                    out.push(DcSolution {
                        node_voltages,
                        element_currents,
                    });
                }
                // Leave the plan's state (guess, report) as a sequential
                // run of the same k solves would have: at the last column.
                self.x.copy_from_slice(&block[(k - 1) * m..]);
                self.last_report = Some(SolveReport {
                    method: vpd_numeric::SolveMethod::SparseCholesky,
                    iterations: 0,
                    relative_residual: self.block_residual(&block[(k - 1) * m..]),
                    stagnated: false,
                });
                return Ok(out);
            }
        }
        // Sequential path: identical semantics, one solve per
        // configuration (direct mode still benefits from the factor
        // cache inside each solve). Counted so a serving layer relying
        // on coalesced batches can see when its batches silently
        // degrade to k sequential solves.
        if k > 1 {
            vpd_obs::incr("plan.block_sequential_fallbacks");
        }
        let mut out = Vec::with_capacity(k);
        for c in 0..k {
            configure(net, c)?;
            out.push(self.solve(net)?);
        }
        Ok(out)
    }

    /// Relative residual `‖b − A·x‖ / ‖b‖` of one block column against
    /// the currently stamped system (the block path's report diagnostic).
    fn block_residual(&self, x: &[f64]) -> f64 {
        let mut b_norm = 0.0;
        for v in &self.rhs {
            b_norm += v * v;
        }
        if b_norm == 0.0 {
            return 0.0;
        }
        let ax = self.csr.matvec(x);
        let mut diff = 0.0;
        for (axi, bi) in ax.iter().zip(&self.rhs) {
            let d = bi - axi;
            diff += d * d;
        }
        (diff / b_norm).sqrt()
    }

    fn check_topology(&self, net: &Netlist) -> Result<(), CircuitError> {
        if net.node_count() != self.node_count {
            return Err(CircuitError::StalePlan {
                reason: format!(
                    "netlist has {} nodes, plan compiled for {}",
                    net.node_count(),
                    self.node_count
                ),
            });
        }
        if net.element_count() != self.fingerprint.len() {
            return Err(CircuitError::StalePlan {
                reason: format!(
                    "netlist has {} elements, plan compiled for {}",
                    net.element_count(),
                    self.fingerprint.len()
                ),
            });
        }
        for (idx, (e, fp)) in net.elements().iter().zip(&self.fingerprint).enumerate() {
            if (e.a.index(), e.b.index(), kind_tag(&e.kind)) != *fp {
                return Err(CircuitError::StalePlan {
                    reason: format!("element {idx} ({}) changed terminals or kind", e.label),
                });
            }
        }
        Ok(())
    }

    /// Numeric restamp: re-reads element values and rebuilds matrix
    /// values and right-hand side in place. O(elements + nnz), no
    /// allocation.
    fn restamp(&mut self, net: &Netlist) -> Result<(), CircuitError> {
        for node in 0..self.node_count {
            self.fixed_vals[node] = match self.fixed_from[node] {
                FixedBy::Free | FixedBy::Ground => 0.0,
                FixedBy::Source { element, sign } => {
                    sign * dc_source_voltage(&net.elements()[element].kind).unwrap_or(0.0)
                }
            };
        }
        self.raw_values.clear();
        self.rhs.fill(0.0);
        for (e, op) in net.elements().iter().zip(&self.ops) {
            match *op {
                StampOp::CondUU { .. } => {
                    let g = dc_conductance(&e.kind).unwrap_or(0.0);
                    self.raw_values.extend_from_slice(&[g, g, -g, -g]);
                }
                StampOp::CondUF { i, fixed_node } => {
                    let g = dc_conductance(&e.kind).unwrap_or(0.0);
                    self.raw_values.push(g);
                    self.rhs[i] += g * self.fixed_vals[fixed_node];
                }
                StampOp::Current { ia, ib } => {
                    let i_src = dc_current(&e.kind).unwrap_or(0.0);
                    if let Some(i) = ia {
                        self.rhs[i] -= i_src;
                    }
                    if let Some(j) = ib {
                        self.rhs[j] += i_src;
                    }
                }
                StampOp::CondFF | StampOp::Skip => {}
            }
        }
        self.csr
            .update_values(&self.pattern, &self.raw_values)
            .map_err(CircuitError::from)
    }
}

/// Result of a DC solve: node voltages and per-element branch currents.
///
/// Branch current convention: positive current flows from terminal `a`
/// to terminal `b` *through the element*.
#[derive(Clone, PartialEq, Debug)]
pub struct DcSolution {
    node_voltages: Vec<f64>,
    element_currents: Vec<f64>,
}

impl DcSolution {
    /// Voltage at a node (ground is exactly 0 V).
    ///
    /// # Panics
    ///
    /// Panics if `node` belongs to a different netlist (index out of
    /// range).
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> Volts {
        Volts::new(self.node_voltages[node.index()])
    }

    /// Branch current through an element, flowing `a → b`.
    ///
    /// # Panics
    ///
    /// Panics if `element` belongs to a different netlist.
    #[must_use]
    pub fn current(&self, element: ElementId) -> Amps {
        Amps::new(self.element_currents[element.index()])
    }

    /// Power dissipated in an element: `(V(a) − V(b)) · I_{a→b}`.
    ///
    /// Positive for passive elements; negative for sources delivering
    /// power.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownElement`] for a foreign id.
    pub fn dissipated_power(
        &self,
        net: &Netlist,
        element: ElementId,
    ) -> Result<Watts, CircuitError> {
        let e = net.element(element)?;
        let v = self.node_voltages[e.a.index()] - self.node_voltages[e.b.index()];
        Ok(Watts::new(v * self.element_currents[element.index()]))
    }

    /// Total power dissipated in resistive elements (resistors and
    /// switches).
    #[must_use]
    pub fn resistive_loss(&self, net: &Netlist) -> Watts {
        net.elements()
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                matches!(
                    e.kind,
                    ElementKind::Resistor { .. } | ElementKind::Switch { .. }
                )
            })
            .map(|(i, e)| {
                let v = self.node_voltages[e.a.index()] - self.node_voltages[e.b.index()];
                Watts::new(v * self.element_currents[i])
            })
            .sum()
    }

    /// KCL residual at a node: net current leaving the node through all
    /// elements. Should be ~0 everywhere in a correct solution.
    #[must_use]
    pub fn kcl_residual(&self, net: &Netlist, node: NodeId) -> Amps {
        let mut sum = 0.0;
        for (i, e) in net.elements().iter().enumerate() {
            if e.a == node {
                sum += self.element_currents[i];
            }
            if e.b == node {
                sum -= self.element_currents[i];
            }
        }
        Amps::new(sum)
    }

    /// The worst KCL residual over all nodes — the solver's self-check.
    #[must_use]
    pub fn max_kcl_residual(&self, net: &Netlist) -> Amps {
        (0..self.node_voltages.len())
            .map(|n| self.kcl_residual(net, NodeId(n)).abs())
            .fold(Amps::ZERO, Amps::max)
    }

    /// All node voltages, indexed by [`NodeId::index`].
    #[must_use]
    pub fn node_voltages(&self) -> &[f64] {
        &self.node_voltages
    }
}

/// A lowered branch: every element reduced to its DC equivalent.
struct Branch {
    a: NodeId,
    b: NodeId,
    kind: BranchKind,
    element: usize,
}

enum BranchKind {
    /// Conductance (resistor, switch).
    Conductance(f64),
    /// Current injection `a → b` through the element.
    Current(f64),
    /// Voltage constraint `V(a) − V(b) = v` (voltage source, inductor).
    Source { v: f64, source_index: usize },
    /// Open circuit (capacitor): carries no DC current.
    Open,
}

fn dc_switch_resistance(
    r_on: Ohms,
    r_off: Ohms,
    schedule: Option<crate::PwmSchedule>,
    initial: SwitchState,
) -> f64 {
    let state = schedule.map_or(initial, |s| s.state_at(0.0));
    match state {
        SwitchState::On => r_on.value(),
        SwitchState::Off => r_off.value(),
    }
}

fn lower(net: &Netlist) -> Vec<Branch> {
    let mut source_index = 0;
    net.elements()
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let kind = match &e.kind {
                ElementKind::Resistor { r } => BranchKind::Conductance(1.0 / r.value()),
                ElementKind::Switch {
                    r_on,
                    r_off,
                    schedule,
                    initial,
                } => BranchKind::Conductance(
                    1.0 / dc_switch_resistance(*r_on, *r_off, *schedule, *initial),
                ),
                ElementKind::CurrentSource { i } => BranchKind::Current(i.value()),
                // DC operating point precedes the step.
                ElementKind::StepCurrentSource { before, .. } => {
                    BranchKind::Current(before.value())
                }
                // DC operating point precedes the ramp.
                ElementKind::RampCurrentSource { before, .. } => {
                    BranchKind::Current(before.value())
                }
                ElementKind::VoltageSource { v } => {
                    let k = BranchKind::Source {
                        v: v.value(),
                        source_index,
                    };
                    source_index += 1;
                    k
                }
                ElementKind::Inductor { .. } => {
                    let k = BranchKind::Source {
                        v: 0.0,
                        source_index,
                    };
                    source_index += 1;
                    k
                }
                ElementKind::Capacitor { .. } => BranchKind::Open,
            };
            Branch {
                a: e.a,
                b: e.b,
                kind,
                element: i,
            }
        })
        .collect()
}

/// Union-find connectivity check: every node must reach ground through
/// conductive or source branches.
fn check_connectivity(net: &Netlist) -> Result<(), CircuitError> {
    let n = net.node_count();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for e in net.elements() {
        let conductive = matches!(
            e.kind,
            ElementKind::Resistor { .. }
                | ElementKind::Switch { .. }
                | ElementKind::VoltageSource { .. }
                | ElementKind::Inductor { .. }
        );
        if conductive {
            let ra = find(&mut parent, e.a.index());
            let rb = find(&mut parent, e.b.index());
            parent[ra] = rb;
        }
    }
    let ground_root = find(&mut parent, 0);
    for idx in 1..n {
        if find(&mut parent, idx) != ground_root {
            return Err(CircuitError::FloatingNode {
                label: net
                    .node_label(NodeId(idx))
                    .unwrap_or("<unknown>")
                    .to_owned(),
            });
        }
    }
    Ok(())
}

/// `true` when no node is constrained by two different grounded sources
/// (that would make the fast elimination ambiguous; dense MNA reports it
/// as singular instead).
fn fixed_nodes_unique(net: &Netlist, branches: &[Branch]) -> bool {
    let mut fixed = vec![false; net.node_count()];
    for b in branches {
        if let BranchKind::Source { .. } = b.kind {
            let node = if b.a == net.ground() { b.b } else { b.a };
            if node == net.ground() || fixed[node.index()] {
                return false;
            }
            fixed[node.index()] = true;
        }
    }
    true
}

fn solve_dense(net: &Netlist, branches: &[Branch]) -> Result<Vec<f64>, CircuitError> {
    let nv = net.node_count() - 1; // ground eliminated
    let ns = branches
        .iter()
        .filter(|b| matches!(b.kind, BranchKind::Source { .. }))
        .count();
    let dim = nv + ns;
    let mut a = DenseMatrix::zeros(dim, dim);
    let mut rhs = vec![0.0; dim];

    // Node n (>0) maps to row/col n-1.
    let idx = |n: NodeId| -> Option<usize> {
        let i = n.index();
        (i > 0).then(|| i - 1)
    };

    for b in branches {
        match b.kind {
            BranchKind::Conductance(g) => {
                if let Some(i) = idx(b.a) {
                    a.add_at(i, i, g)?;
                }
                if let Some(j) = idx(b.b) {
                    a.add_at(j, j, g)?;
                }
                if let (Some(i), Some(j)) = (idx(b.a), idx(b.b)) {
                    a.add_at(i, j, -g)?;
                    a.add_at(j, i, -g)?;
                }
            }
            BranchKind::Current(i_src) => {
                if let Some(i) = idx(b.a) {
                    rhs[i] -= i_src;
                }
                if let Some(j) = idx(b.b) {
                    rhs[j] += i_src;
                }
            }
            BranchKind::Source { v, source_index } => {
                let row = nv + source_index;
                if let Some(i) = idx(b.a) {
                    a.add_at(i, row, 1.0)?;
                    a.add_at(row, i, 1.0)?;
                }
                if let Some(j) = idx(b.b) {
                    a.add_at(j, row, -1.0)?;
                    a.add_at(row, j, -1.0)?;
                }
                rhs[row] = v;
            }
            BranchKind::Open => {}
        }
    }

    let lu = LuFactor::new(&a).map_err(CircuitError::from)?;
    let x = lu.solve(&rhs).map_err(CircuitError::from)?;

    let mut voltages = vec![0.0; net.node_count()];
    voltages[1..].copy_from_slice(&x[..net.node_count() - 1]);
    Ok(voltages)
}

fn solve_sparse(
    net: &Netlist,
    branches: &[Branch],
    settings: &CgSettings,
) -> Result<Vec<f64>, CircuitError> {
    let n = net.node_count();
    // Fixed potentials: ground plus grounded-source nodes.
    let mut fixed: Vec<Option<f64>> = vec![None; n];
    fixed[0] = Some(0.0);
    for b in branches {
        if let BranchKind::Source { v, .. } = b.kind {
            if b.b == net.ground() {
                fixed[b.a.index()] = Some(v);
            } else {
                fixed[b.b.index()] = Some(-v);
            }
        }
    }
    // Map unknown nodes to compact indices.
    let mut unknown_index: Vec<Option<usize>> = vec![None; n];
    let mut unknown_nodes = Vec::new();
    for node in 0..n {
        if fixed[node].is_none() {
            unknown_index[node] = Some(unknown_nodes.len());
            unknown_nodes.push(node);
        }
    }
    let m = unknown_nodes.len();
    let mut coo = CooMatrix::new(m, m);
    let mut rhs = vec![0.0; m];

    for b in branches {
        match b.kind {
            BranchKind::Conductance(g) => {
                let (na, nb) = (b.a.index(), b.b.index());
                match (unknown_index[na], unknown_index[nb]) {
                    (Some(i), Some(j)) => {
                        coo.push(i, i, g);
                        coo.push(j, j, g);
                        coo.push(i, j, -g);
                        coo.push(j, i, -g);
                    }
                    (Some(i), None) => {
                        coo.push(i, i, g);
                        rhs[i] += g * fixed[nb].unwrap_or(0.0);
                    }
                    (None, Some(j)) => {
                        coo.push(j, j, g);
                        rhs[j] += g * fixed[na].unwrap_or(0.0);
                    }
                    (None, None) => {}
                }
            }
            BranchKind::Current(i_src) => {
                if let Some(i) = unknown_index[b.a.index()] {
                    rhs[i] -= i_src;
                }
                if let Some(j) = unknown_index[b.b.index()] {
                    rhs[j] += i_src;
                }
            }
            BranchKind::Source { .. } | BranchKind::Open => {}
        }
    }

    let csr = coo.to_csr();
    let (x, _report) = conjugate_gradient(&csr, &rhs, settings).map_err(CircuitError::from)?;

    let mut voltages = vec![0.0; n];
    for node in 0..n {
        voltages[node] = match fixed[node] {
            Some(v) => v,
            None => x[unknown_index[node].expect("unknown node missing index")],
        };
    }
    Ok(voltages)
}

/// Per-node incident-element lists: for each node, `(element index,
/// sign)` where sign is `+1.0` when the node is terminal `a` of the
/// element and `-1.0` when it is terminal `b`. With the `a → b` current
/// convention, `sign * current` is the current *leaving* the node
/// through that element.
fn build_adjacency(net: &Netlist) -> Vec<Vec<(usize, f64)>> {
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); net.node_count()];
    for (i, e) in net.elements().iter().enumerate() {
        adj[e.a.index()].push((i, 1.0));
        adj[e.b.index()].push((i, -1.0));
    }
    adj
}

/// Recovers per-element branch currents (`a → b` through the element)
/// from solved node voltages, using the incident-element adjacency for
/// O(degree) KCL balances instead of full element scans.
fn recover_currents(net: &Netlist, voltages: &[f64], adjacency: &[Vec<(usize, f64)>]) -> Vec<f64> {
    let mut currents = vec![0.0; net.element_count()];
    let mut unresolved = Vec::new();
    // First pass: everything except voltage-constraint elements.
    for (i, e) in net.elements().iter().enumerate() {
        currents[i] = if let Some(g) = dc_conductance(&e.kind) {
            (voltages[e.a.index()] - voltages[e.b.index()]) * g
        } else if let Some(i_src) = dc_current(&e.kind) {
            i_src
        } else if dc_source_voltage(&e.kind).is_some() {
            unresolved.push(i);
            f64::NAN // filled below
        } else {
            0.0 // capacitor: DC open circuit
        };
    }
    // Second pass: source currents by KCL. A source incident to a node
    // whose every *other* incident element is known gets its current from
    // that node's balance; source chains resolve from the ends inward.
    while !unresolved.is_empty() {
        let mut progressed = false;
        unresolved.retain(|&elem| {
            let e = &net.elements()[elem];
            for (node, sign) in [(e.a, 1.0), (e.b, -1.0)] {
                // Sum of known currents leaving `node` through other elements.
                let mut sum = 0.0;
                let mut ok = true;
                for &(other, other_sign) in &adjacency[node.index()] {
                    if other == elem {
                        continue;
                    }
                    if currents[other].is_nan() {
                        ok = false;
                        break;
                    }
                    sum += other_sign * currents[other];
                }
                if ok {
                    // KCL: current leaving `node` through this source
                    // balances the rest: sign * I_e = -sum.
                    currents[elem] = -sum * sign;
                    progressed = true;
                    return false;
                }
            }
            true
        });
        if !progressed {
            // Degenerate source cluster (e.g. a loop of sources); leave
            // the remaining currents as 0 rather than NaN.
            for &elem in &unresolved {
                currents[elem] = 0.0;
            }
            break;
        }
    }
    currents
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn divider() -> (Netlist, NodeId, NodeId) {
        let mut net = Netlist::new();
        let vin = net.node("vin");
        let out = net.node("out");
        net.voltage_source(vin, net.ground(), Volts::new(12.0))
            .unwrap();
        net.resistor(vin, out, Ohms::new(2.0)).unwrap();
        net.resistor(out, net.ground(), Ohms::new(1.0)).unwrap();
        (net, vin, out)
    }

    #[test]
    fn voltage_divider_dense() {
        let (net, vin, out) = divider();
        let sol = DcSolver::with_strategy(DcStrategy::DenseLu)
            .solve(&net)
            .unwrap();
        assert!((sol.voltage(vin).value() - 12.0).abs() < 1e-12);
        assert!((sol.voltage(out).value() - 4.0).abs() < 1e-12);
        assert!(sol.max_kcl_residual(&net).value() < 1e-9);
    }

    #[test]
    fn voltage_divider_sparse_matches_dense() {
        let (net, vin, out) = divider();
        let sol = DcSolver::with_strategy(DcStrategy::SparseCg(CgSettings::default()))
            .solve(&net)
            .unwrap();
        assert!((sol.voltage(vin).value() - 12.0).abs() < 1e-9);
        assert!((sol.voltage(out).value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn source_current_is_recovered() {
        let (net, _, _) = divider();
        // Total series resistance 3 Ω across 12 V → 4 A. Source current
        // a→b (vin→gnd through the source) should be −4 A: current flows
        // out of + terminal into the circuit.
        let sol = DcSolver::new().solve(&net).unwrap();
        let source_id = ElementId(0);
        assert!((sol.current(source_id).value() + 4.0).abs() < 1e-9);
        // Delivered power = −dissipated = 48 W.
        let p = sol.dissipated_power(&net, source_id).unwrap();
        assert!((p.value() + 48.0).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut net = Netlist::new();
        let n = net.node("n");
        net.current_source(net.ground(), n, Amps::new(3.0)).unwrap();
        net.resistor(n, net.ground(), Ohms::new(4.0)).unwrap();
        let sol = DcSolver::new().solve(&net).unwrap();
        assert!((sol.voltage(n).value() - 12.0).abs() < 1e-12);
        assert!((sol.resistive_loss(&net).value() - 36.0).abs() < 1e-9);
    }

    #[test]
    fn inductor_is_dc_short() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.voltage_source(a, net.ground(), Volts::new(5.0))
            .unwrap();
        net.inductor(a, b, vpd_units::Henries::from_microhenries(1.0), Amps::ZERO)
            .unwrap();
        net.resistor(b, net.ground(), Ohms::new(5.0)).unwrap();
        let sol = DcSolver::new().solve(&net).unwrap();
        assert!((sol.voltage(b).value() - 5.0).abs() < 1e-9);
        // 1 A flows through the inductor.
        assert!((sol.current(ElementId(1)).value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn capacitor_is_dc_open() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.voltage_source(a, net.ground(), Volts::new(5.0))
            .unwrap();
        net.resistor(a, b, Ohms::new(1.0)).unwrap();
        net.capacitor(
            b,
            net.ground(),
            vpd_units::Farads::from_microfarads(1.0),
            Volts::ZERO,
        )
        .unwrap();
        // b floats at 5 V through the resistor: no current flows.
        let sol = DcSolver::new().solve(&net).unwrap();
        assert!((sol.voltage(b).value() - 5.0).abs() < 1e-9);
        assert_eq!(sol.current(ElementId(2)).value(), 0.0);
    }

    #[test]
    fn switch_states_in_dc() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.voltage_source(a, net.ground(), Volts::new(1.0))
            .unwrap();
        net.switch(
            a,
            b,
            Ohms::from_milliohms(1.0),
            Ohms::new(1e6),
            None,
            SwitchState::On,
        )
        .unwrap();
        net.resistor(b, net.ground(), Ohms::new(1.0)).unwrap();
        let sol = DcSolver::new().solve(&net).unwrap();
        assert!(sol.voltage(b).value() > 0.99);
    }

    #[test]
    fn floating_node_is_reported_with_label() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let lonely = net.node("lonely");
        let other = net.node("other");
        net.resistor(a, net.ground(), Ohms::new(1.0)).unwrap();
        net.resistor(lonely, other, Ohms::new(1.0)).unwrap();
        match DcSolver::new().solve(&net) {
            Err(CircuitError::FloatingNode { label }) => {
                assert!(label == "lonely" || label == "other");
            }
            other => panic!("expected FloatingNode, got {other:?}"),
        }
    }

    #[test]
    fn node_fed_only_by_current_source_is_floating() {
        let mut net = Netlist::new();
        let n = net.node("n");
        net.current_source(net.ground(), n, Amps::new(1.0)).unwrap();
        assert!(matches!(
            DcSolver::new().solve(&net),
            Err(CircuitError::FloatingNode { .. })
        ));
    }

    #[test]
    fn empty_netlist_rejected() {
        assert!(matches!(
            DcSolver::new().solve(&Netlist::new()),
            Err(CircuitError::EmptyNetlist)
        ));
    }

    #[test]
    fn floating_voltage_source_works_dense() {
        // vin --R-- mid --(floating V)-- out --R-- gnd
        let mut net = Netlist::new();
        let vin = net.node("vin");
        let mid = net.node("mid");
        let out = net.node("out");
        net.voltage_source(vin, net.ground(), Volts::new(10.0))
            .unwrap();
        net.resistor(vin, mid, Ohms::new(1.0)).unwrap();
        net.voltage_source(mid, out, Volts::new(2.0)).unwrap();
        net.resistor(out, net.ground(), Ohms::new(1.0)).unwrap();
        let sol = DcSolver::new().solve(&net).unwrap();
        // KVL: 10 = i·1 + 2 + i·1 → i = 4; out = 4 V, mid = 6 V.
        assert!((sol.voltage(mid).value() - 6.0).abs() < 1e-9);
        assert!((sol.voltage(out).value() - 4.0).abs() < 1e-9);
        assert!(sol.max_kcl_residual(&net).value() < 1e-9);
    }

    #[test]
    fn sparse_rejects_floating_source() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.resistor(a, net.ground(), Ohms::new(1.0)).unwrap();
        net.voltage_source(a, b, Volts::new(1.0)).unwrap();
        net.resistor(b, net.ground(), Ohms::new(1.0)).unwrap();
        assert!(
            DcSolver::with_strategy(DcStrategy::SparseCg(CgSettings::default()))
                .solve(&net)
                .is_err()
        );
    }

    #[test]
    fn auto_uses_sparse_for_large_reducible_grids() {
        // A 25x25 resistor mesh (625 nodes) with a grounded source: the
        // Auto strategy must still produce a correct solution.
        let mut net = Netlist::new();
        let side = 25;
        let mut ids = Vec::new();
        for y in 0..side {
            for x in 0..side {
                ids.push(net.node(&format!("n{x}_{y}")));
            }
        }
        for y in 0..side {
            for x in 0..side {
                let here = ids[y * side + x];
                if x + 1 < side {
                    net.resistor(here, ids[y * side + x + 1], Ohms::new(1.0))
                        .unwrap();
                }
                if y + 1 < side {
                    net.resistor(here, ids[(y + 1) * side + x], Ohms::new(1.0))
                        .unwrap();
                }
            }
        }
        net.voltage_source(ids[0], net.ground(), Volts::new(1.0))
            .unwrap();
        net.current_source(ids[side * side - 1], net.ground(), Amps::new(0.5))
            .unwrap();
        let sol = DcSolver::new().solve(&net).unwrap();
        assert!((sol.voltage(ids[0]).value() - 1.0).abs() < 1e-9);
        // Pulling 0.5 A out of the far corner drops its voltage below 1 V.
        assert!(sol.voltage(ids[side * side - 1]).value() < 1.0);
        assert!(sol.max_kcl_residual(&net).value() < 1e-6);
    }

    /// `side`×`side` unit-resistance mesh with a 1 V source at one
    /// corner and a load current pulled from the opposite corner.
    /// Returns the netlist, node ids, and the load source's element id.
    fn mesh(side: usize, i_load: f64) -> (Netlist, Vec<NodeId>, ElementId) {
        let mut net = Netlist::new();
        let mut ids = Vec::new();
        for y in 0..side {
            for x in 0..side {
                ids.push(net.node(&format!("n{x}_{y}")));
            }
        }
        for y in 0..side {
            for x in 0..side {
                let here = ids[y * side + x];
                if x + 1 < side {
                    net.resistor(here, ids[y * side + x + 1], Ohms::new(1.0))
                        .unwrap();
                }
                if y + 1 < side {
                    net.resistor(here, ids[(y + 1) * side + x], Ohms::new(1.0))
                        .unwrap();
                }
            }
        }
        net.voltage_source(ids[0], net.ground(), Volts::new(1.0))
            .unwrap();
        let load = net
            .current_source(ids[side * side - 1], net.ground(), Amps::new(i_load))
            .unwrap();
        (net, ids, load)
    }

    #[test]
    fn plan_matches_solver_on_divider() {
        let (net, vin, out) = divider();
        let mut plan = SparseDcPlan::compile(&net).unwrap();
        let sol = plan.solve(&net).unwrap();
        let reference = DcSolver::new().solve(&net).unwrap();
        assert!((sol.voltage(vin).value() - 12.0).abs() < 1e-9);
        assert!((sol.voltage(out).value() - 4.0).abs() < 1e-9);
        // Source current recovery matches the one-shot solver.
        assert!(
            (sol.current(ElementId(0)).value() - reference.current(ElementId(0)).value()).abs()
                < 1e-9
        );
        assert!(sol.max_kcl_residual(&net).value() < 1e-9);
    }

    #[test]
    fn plan_restamp_matches_fresh_solve() {
        let (mut net, ids, load) = mesh(12, 0.25);
        let mut plan = SparseDcPlan::compile(&net).unwrap();
        let first = plan.solve(&net).unwrap();
        let fresh = DcSolver::with_strategy(DcStrategy::SparseCg(CgSettings::default()))
            .solve(&net)
            .unwrap();
        for n in 0..net.node_count() {
            assert!((first.node_voltages()[n] - fresh.node_voltages()[n]).abs() < 1e-8);
        }
        // Change element values only: heavier load, one fattened edge.
        net.set_current(load, Amps::new(0.75)).unwrap();
        net.set_resistance(ElementId(0), Ohms::new(0.2)).unwrap();
        let restamped = plan.solve(&net).unwrap();
        let fresh = DcSolver::with_strategy(DcStrategy::SparseCg(CgSettings::default()))
            .solve(&net)
            .unwrap();
        for n in 0..net.node_count() {
            assert!((restamped.node_voltages()[n] - fresh.node_voltages()[n]).abs() < 1e-8);
        }
        assert!(
            restamped.voltage(*ids.last().unwrap()).value()
                < first.voltage(*ids.last().unwrap()).value()
        );
        assert!(restamped.max_kcl_residual(&net).value() < 1e-6);
    }

    #[test]
    fn plan_detects_topology_change() {
        let (mut net, ids, _) = mesh(4, 0.1);
        let mut plan = SparseDcPlan::compile(&net).unwrap();
        plan.solve(&net).unwrap();
        // Rewiring an element invalidates the compiled pattern.
        net.rewire(ElementId(0), ids[0], ids[5]).unwrap();
        assert!(matches!(
            plan.solve(&net),
            Err(CircuitError::StalePlan { .. })
        ));
        let mut plan = SparseDcPlan::compile(&net).unwrap();
        let sol = plan.solve(&net).unwrap();
        assert!(sol.max_kcl_residual(&net).value() < 1e-6);
    }

    #[test]
    fn plan_warm_start_beats_cold_on_perturbed_grid() {
        let (mut net, _, load) = mesh(25, 0.5);
        let mut warm_plan = SparseDcPlan::compile(&net).unwrap();
        warm_plan.solve(&net).unwrap();
        // Small perturbation, as in a Monte-Carlo sample.
        net.set_current(load, Amps::new(0.52)).unwrap();
        let warm_sol = warm_plan.solve(&net).unwrap();
        let warm_iters = warm_plan.last_report().unwrap().iterations;
        let mut cold_plan = SparseDcPlan::compile(&net).unwrap();
        let cold_sol = cold_plan.solve(&net).unwrap();
        let cold_iters = cold_plan.last_report().unwrap().iterations;
        assert!(
            warm_iters < cold_iters,
            "warm {warm_iters} vs cold {cold_iters}"
        );
        for n in 0..net.node_count() {
            assert!((warm_sol.node_voltages()[n] - cold_sol.node_voltages()[n]).abs() < 1e-7);
        }
    }

    #[test]
    fn plan_set_guess_validates_and_reset_matches_cold() {
        let (net, _, _) = mesh(8, 0.3);
        let mut plan = SparseDcPlan::compile(&net).unwrap();
        let sol = plan.solve(&net).unwrap();
        // A guess from a different netlist is rejected.
        let (other_net, _, _) = mesh(4, 0.3);
        let mut other_plan = SparseDcPlan::compile(&other_net).unwrap();
        let other_sol = other_plan.solve(&other_net).unwrap();
        assert!(matches!(
            plan.set_guess(&other_sol),
            Err(CircuitError::StalePlan { .. })
        ));
        plan.set_guess(&sol).unwrap();
        let warm = plan.solve(&net).unwrap();
        assert_eq!(plan.last_report().unwrap().iterations, 0);
        plan.reset_guess();
        let cold = plan.solve(&net).unwrap();
        for n in 0..net.node_count() {
            assert!((warm.node_voltages()[n] - cold.node_voltages()[n]).abs() < 1e-8);
        }
    }

    #[test]
    fn direct_plan_matches_cg_plan_within_tolerance() {
        let (net, _, _) = mesh(12, 0.4);
        let mut cg_plan = SparseDcPlan::compile(&net).unwrap();
        let cg_sol = cg_plan.solve(&net).unwrap();
        let mut direct_plan = SparseDcPlan::compile_direct(&net).unwrap();
        assert_eq!(direct_plan.mode(), DcPlanMode::DirectCholesky);
        let direct_sol = direct_plan.solve(&net).unwrap();
        let report = direct_plan.last_report().unwrap();
        assert_eq!(report.method, vpd_numeric::SolveMethod::SparseCholesky);
        assert_eq!(report.iterations, 0);
        // Both passed the same residual bar, so they agree to CG
        // tolerance (1e-10 relative residual ⇒ ~1e-7 absolute here).
        for n in 0..net.node_count() {
            assert!(
                (direct_sol.node_voltages()[n] - cg_sol.node_voltages()[n]).abs() < 1e-7,
                "node {n}"
            );
        }
        assert!(direct_sol.max_kcl_residual(&net).value() < 1e-7);
    }

    #[test]
    fn direct_plan_refactors_on_restamp() {
        let (mut net, _, load) = mesh(10, 0.3);
        let mut plan = SparseDcPlan::compile_direct(&net).unwrap();
        plan.solve(&net).unwrap();
        // Matrix-changing restamp: a fattened edge forces a refactor.
        net.set_resistance(ElementId(0), Ohms::new(0.25)).unwrap();
        net.set_current(load, Amps::new(0.6)).unwrap();
        let restamped = plan.solve(&net).unwrap();
        assert_eq!(
            plan.last_report().unwrap().method,
            vpd_numeric::SolveMethod::SparseCholesky
        );
        let fresh = DcSolver::with_strategy(DcStrategy::SparseCg(CgSettings::default()))
            .solve(&net)
            .unwrap();
        for n in 0..net.node_count() {
            assert!((restamped.node_voltages()[n] - fresh.node_voltages()[n]).abs() < 1e-7);
        }
    }

    #[test]
    fn direct_mode_switch_preserves_plan_and_results() {
        let (net, _, _) = mesh(9, 0.2);
        let mut plan = SparseDcPlan::compile(&net).unwrap();
        let mut direct_plan = SparseDcPlan::compile_direct(&net).unwrap();
        let direct_first = direct_plan.solve(&net).unwrap();
        // Switching an existing CG plan into direct mode must produce
        // bitwise the same answers as compiling direct from scratch.
        plan.set_mode(DcPlanMode::DirectCholesky).unwrap();
        let switched = plan.solve(&net).unwrap();
        for n in 0..net.node_count() {
            assert_eq!(
                switched.node_voltages()[n].to_bits(),
                direct_first.node_voltages()[n].to_bits()
            );
        }
        // And back: CG mode still works after the round trip.
        plan.set_mode(DcPlanMode::WarmCg).unwrap();
        let cg = plan.solve(&net).unwrap();
        for n in 0..net.node_count() {
            assert!((cg.node_voltages()[n] - switched.node_voltages()[n]).abs() < 1e-7);
        }
    }

    fn source_element(net: &Netlist) -> ElementId {
        let idx = net
            .elements()
            .iter()
            .position(|e| matches!(e.kind, ElementKind::VoltageSource { .. }))
            .expect("mesh has a voltage source");
        ElementId(idx)
    }

    #[test]
    fn solve_block_coalesces_rhs_only_sweep_bitwise() {
        // Setpoint moves touch only the right-hand side, so the block
        // path factors once — and must match k sequential direct solves
        // bitwise.
        let (mut net, _, _) = mesh(10, 0.35);
        let src = source_element(&net);
        let setpoints = [0.9, 0.95, 1.0, 1.05, 1.1];
        let mut plan = SparseDcPlan::compile_direct(&net).unwrap();
        let block = plan
            .solve_block(&mut net, setpoints.len(), |net, c| {
                net.set_voltage(src, Volts::new(setpoints[c]))
            })
            .unwrap();
        assert_eq!(block.len(), setpoints.len());

        let mut seq_plan = SparseDcPlan::compile_direct(&net).unwrap();
        for (c, &sp) in setpoints.iter().enumerate() {
            net.set_voltage(src, Volts::new(sp)).unwrap();
            let sol = seq_plan.solve(&net).unwrap();
            for n in 0..net.node_count() {
                assert_eq!(
                    block[c].node_voltages()[n].to_bits(),
                    sol.node_voltages()[n].to_bits(),
                    "setpoint {c}, node {n}"
                );
            }
        }
    }

    #[test]
    fn solve_block_degrades_when_matrix_moves() {
        // Per-configuration resistance changes defeat coalescing; the
        // block call must transparently match sequential direct solves.
        let (mut net, _, _) = mesh(8, 0.25);
        let resistances = [1.0, 0.8, 1.2];
        let mut plan = SparseDcPlan::compile_direct(&net).unwrap();
        let block = plan
            .solve_block(&mut net, resistances.len(), |net, c| {
                net.set_resistance(ElementId(0), Ohms::new(resistances[c]))
            })
            .unwrap();

        let mut seq_plan = SparseDcPlan::compile_direct(&net).unwrap();
        for (c, &r) in resistances.iter().enumerate() {
            net.set_resistance(ElementId(0), Ohms::new(r)).unwrap();
            let sol = seq_plan.solve(&net).unwrap();
            for n in 0..net.node_count() {
                assert_eq!(
                    block[c].node_voltages()[n].to_bits(),
                    sol.node_voltages()[n].to_bits(),
                    "config {c}, node {n}"
                );
            }
        }
    }

    #[test]
    fn solve_block_in_cg_mode_is_a_sequential_sweep() {
        let (mut net, _, _) = mesh(8, 0.25);
        let src = source_element(&net);
        let setpoints = [1.0, 1.02, 0.98];
        let mut plan = SparseDcPlan::compile(&net).unwrap();
        let block = plan
            .solve_block(&mut net, setpoints.len(), |net, c| {
                net.set_voltage(src, Volts::new(setpoints[c]))
            })
            .unwrap();
        let mut seq_plan = SparseDcPlan::compile(&net).unwrap();
        for (c, &sp) in setpoints.iter().enumerate() {
            net.set_voltage(src, Volts::new(sp)).unwrap();
            let sol = seq_plan.solve(&net).unwrap();
            for n in 0..net.node_count() {
                assert_eq!(
                    block[c].node_voltages()[n].to_bits(),
                    sol.node_voltages()[n].to_bits(),
                    "setpoint {c}, node {n}"
                );
            }
        }
    }

    #[test]
    fn solve_block_empty_is_empty() {
        let (mut net, _, _) = mesh(4, 0.1);
        let mut plan = SparseDcPlan::compile_direct(&net).unwrap();
        let block = plan.solve_block(&mut net, 0, |_, _| Ok(())).unwrap();
        assert!(block.is_empty());
    }

    #[test]
    fn plan_rejects_floating_source() {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        net.resistor(a, net.ground(), Ohms::new(1.0)).unwrap();
        net.voltage_source(a, b, Volts::new(1.0)).unwrap();
        net.resistor(b, net.ground(), Ohms::new(1.0)).unwrap();
        assert!(matches!(
            SparseDcPlan::compile(&net),
            Err(CircuitError::FloatingNode { .. })
        ));
    }

    proptest! {
        /// KCL holds at every node of a random ladder network.
        #[test]
        fn prop_kcl_on_random_ladders(
            rs in proptest::collection::vec(0.1_f64..10.0, 2..12),
            v in 0.5_f64..48.0,
        ) {
            let mut net = Netlist::new();
            let top = net.node("top");
            net.voltage_source(top, net.ground(), Volts::new(v)).unwrap();
            let mut prev = top;
            for (k, r) in rs.iter().enumerate() {
                let nxt = net.node(&format!("l{k}"));
                net.resistor(prev, nxt, Ohms::new(*r)).unwrap();
                net.resistor(nxt, net.ground(), Ohms::new(*r * 2.0)).unwrap();
                prev = nxt;
            }
            let sol = DcSolver::new().solve(&net).unwrap();
            prop_assert!(sol.max_kcl_residual(&net).value() < 1e-8);
            // Voltages decrease monotonically along the ladder.
            let mut last = v + 1e-9;
            for k in 0..rs.len() {
                let node = net.clone().node(&format!("l{k}"));
                let vn = sol.voltage(node).value();
                prop_assert!(vn <= last + 1e-9);
                last = vn;
            }
        }

        /// Dense and sparse paths agree on grounded-source networks.
        #[test]
        fn prop_dense_sparse_agree(
            rs in proptest::collection::vec(0.5_f64..5.0, 4..10),
            i_load in 0.1_f64..10.0,
        ) {
            let mut net = Netlist::new();
            let top = net.node("top");
            net.voltage_source(top, net.ground(), Volts::new(1.0)).unwrap();
            let mut prev = top;
            for (k, r) in rs.iter().enumerate() {
                let nxt = net.node(&format!("c{k}"));
                net.resistor(prev, nxt, Ohms::new(*r)).unwrap();
                prev = nxt;
            }
            net.current_source(prev, net.ground(), Amps::new(i_load)).unwrap();
            net.resistor(prev, net.ground(), Ohms::new(10.0)).unwrap();
            let dense = DcSolver::with_strategy(DcStrategy::DenseLu).solve(&net).unwrap();
            let sparse = DcSolver::with_strategy(DcStrategy::SparseCg(CgSettings::default()))
                .solve(&net).unwrap();
            for n in 0..net.node_count() {
                prop_assert!((dense.node_voltages()[n] - sparse.node_voltages()[n]).abs() < 1e-7);
            }
        }
    }
}
