//! Circuit construction and simulation for power-delivery modeling.
//!
//! This crate is the in-repo substitute for the authors' (unpublished)
//! PPDN modeling tools: a netlist builder, a modified-nodal-analysis DC
//! solver with automatic dense/sparse path selection, 2-D power-grid
//! mesh builders, and a backward-Euler transient simulator with PWM
//! switches for converter waveform studies.
//!
//! ```
//! use vpd_circuit::{DcSolver, Netlist};
//! use vpd_units::{Amps, Ohms, Volts};
//!
//! # fn main() -> Result<(), vpd_circuit::CircuitError> {
//! // The paper's headline loss mechanism in one netlist: 1 kA of POL
//! // current through 0.3 mΩ of lateral PPDN resistance burns ~300 W.
//! let mut net = Netlist::new();
//! let pcb = net.node("pcb");
//! let die = net.node("die");
//! net.voltage_source(pcb, net.ground(), Volts::new(1.3))?;
//! let ppdn = net.resistor(pcb, die, Ohms::from_milliohms(0.3))?;
//! net.current_source(die, net.ground(), Amps::from_kiloamps(1.0))?;
//! let sol = DcSolver::new().solve(&net)?;
//! let loss = sol.dissipated_power(&net, ppdn)?;
//! assert!((loss.value() - 300.0).abs() < 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ac;
mod dc;
mod error;
mod grid;
mod netlist;
mod transient;

pub use ac::{log_sweep, log_sweep_checked, AcAnalysis, AcPlan, AcPoint};
pub use dc::{DcPlanMode, DcSolution, DcSolver, DcStrategy, SparseDcPlan};
pub use error::CircuitError;
pub use grid::{PowerGrid, Regulator};
pub use netlist::{Element, ElementId, ElementKind, Netlist, NodeId, PwmSchedule, SwitchState};
pub use transient::{transient, TransientPlan, TransientResult, TransientSettings};
