//! Power-grid mesh builders.
//!
//! The die (or interposer) power distribution network is modeled as a 2-D
//! resistive mesh: `nx × ny` nodes, horizontal/vertical edge resistances
//! derived from a sheet resistance, a per-node load current, and voltage
//! regulators attached as grounded sources behind a droop resistance.

use crate::{CircuitError, DcPlanMode, DcSolver, ElementId, Netlist, NodeId, SparseDcPlan};
use vpd_numeric::SolveReport;
use vpd_units::{Amps, Meters, Ohms, Volts};

/// A rectangular resistive mesh plus bookkeeping for loads and regulators.
///
/// ```
/// use vpd_circuit::PowerGrid;
/// use vpd_units::{Amps, Meters, Ohms, Volts};
///
/// # fn main() -> Result<(), vpd_circuit::CircuitError> {
/// let mut grid = PowerGrid::new(8, 8, Ohms::from_milliohms(2.0))?;
/// grid.attach_uniform_load(Amps::new(64.0))?; // 1 A per node
/// grid.attach_regulator(0, 0, Volts::new(1.0), Ohms::from_milliohms(1.0))?;
/// grid.attach_regulator(7, 7, Volts::new(1.0), Ohms::from_milliohms(1.0))?;
/// let sol = grid.solve()?;
/// let currents = grid.regulator_currents(&sol);
/// let total: f64 = currents.iter().map(|c| c.value()).sum();
/// assert!((total - 64.0).abs() < 1e-6); // KCL: VRs supply the whole load
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct PowerGrid {
    net: Netlist,
    nx: usize,
    ny: usize,
    nodes: Vec<NodeId>,
    mesh_edges: Vec<ElementId>,
    regulators: Vec<Regulator>,
    loads: Vec<ElementId>,
    /// Compiled sparse solve plan; `None` until first cached solve or
    /// after any topology change (attach/move).
    plan: Option<SparseDcPlan>,
    /// Solver mode applied to the plan (and to recompiles after topology
    /// changes).
    mode: DcPlanMode,
}

/// One attached voltage regulator: a grounded ideal source behind a droop
/// resistance, feeding grid node `(x, y)`.
#[derive(Clone, Copy, Debug)]
pub struct Regulator {
    /// Grid x position.
    pub x: usize,
    /// Grid y position.
    pub y: usize,
    /// The droop-resistor element (its current is the VR output current).
    pub droop_element: ElementId,
    /// The ideal-source element holding `source_node` at the setpoint.
    pub source_element: ElementId,
    /// The internal source node held at the setpoint.
    pub source_node: NodeId,
}

impl PowerGrid {
    /// Builds an `nx × ny` mesh with edge resistance `r_edge` between
    /// 4-connected neighbors.
    ///
    /// `r_edge` is the sheet resistance per square when nodes are laid on
    /// a uniform pitch (lateral squares between adjacent nodes ≈ 1).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] for a non-positive edge
    /// resistance or a dimension of zero.
    pub fn new(nx: usize, ny: usize, r_edge: Ohms) -> Result<Self, CircuitError> {
        if nx == 0 || ny == 0 {
            return Err(CircuitError::InvalidValue {
                element: "grid dimension",
                value: 0.0,
            });
        }
        let mut net = Netlist::new();
        let mut nodes = Vec::with_capacity(nx * ny);
        for y in 0..ny {
            for x in 0..nx {
                nodes.push(net.node(&format!("g{x}_{y}")));
            }
        }
        let mut mesh_edges = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                let here = nodes[y * nx + x];
                if x + 1 < nx {
                    mesh_edges.push(net.resistor(here, nodes[y * nx + x + 1], r_edge)?);
                }
                if y + 1 < ny {
                    mesh_edges.push(net.resistor(here, nodes[(y + 1) * nx + x], r_edge)?);
                }
            }
        }
        Ok(Self {
            net,
            nx,
            ny,
            nodes,
            mesh_edges,
            regulators: Vec::new(),
            loads: Vec::new(),
            plan: None,
            mode: DcPlanMode::default(),
        })
    }

    /// Grid width in nodes.
    #[must_use]
    pub const fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in nodes.
    #[must_use]
    pub const fn ny(&self) -> usize {
        self.ny
    }

    /// The node at `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] when the coordinate is
    /// outside the mesh.
    pub fn node_at(&self, x: usize, y: usize) -> Result<NodeId, CircuitError> {
        if x >= self.nx || y >= self.ny {
            return Err(CircuitError::UnknownNode {
                index: y * self.nx + x,
            });
        }
        Ok(self.nodes[y * self.nx + x])
    }

    /// Attaches equal load current sinks at every node, totaling
    /// `total`.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation errors.
    pub fn attach_uniform_load(&mut self, total: Amps) -> Result<(), CircuitError> {
        let per_node = total / (self.nx * self.ny) as f64;
        self.attach_dense_load_profile(|_, _| per_node)
    }

    /// Attaches a per-node load given by `profile(x, y)` (amperes drawn
    /// at that node).
    ///
    /// # Errors
    ///
    /// Propagates netlist validation errors.
    pub fn attach_load_profile(
        &mut self,
        mut profile: impl FnMut(usize, usize) -> Amps,
    ) -> Result<(), CircuitError> {
        let ground = self.net.ground();
        for y in 0..self.ny {
            for x in 0..self.nx {
                let node = self.nodes[y * self.nx + x];
                let i = profile(x, y);
                if !i.is_zero() {
                    let id = self.net.current_source(node, ground, i)?;
                    self.loads.push(id);
                }
            }
        }
        self.plan = None;
        Ok(())
    }

    /// Attaches a load current sink at *every* node, including nodes
    /// where the profile is zero. Unlike [`PowerGrid::attach_load_profile`]
    /// (which skips zero entries), the resulting netlist topology is
    /// independent of the profile values, so a later
    /// [`PowerGrid::set_load_profile`] can swap in a new profile without
    /// recompiling the solve plan.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation errors.
    pub fn attach_dense_load_profile(
        &mut self,
        mut profile: impl FnMut(usize, usize) -> Amps,
    ) -> Result<(), CircuitError> {
        let ground = self.net.ground();
        for y in 0..self.ny {
            for x in 0..self.nx {
                let node = self.nodes[y * self.nx + x];
                let id = self.net.current_source(node, ground, profile(x, y))?;
                self.loads.push(id);
            }
        }
        self.plan = None;
        Ok(())
    }

    /// Rewrites every load current in place from `profile(x, y)`. A
    /// value-only mutation: the compiled solve plan stays valid.
    ///
    /// Requires loads attached by [`PowerGrid::attach_uniform_load`] or
    /// [`PowerGrid::attach_dense_load_profile`] (one source per node, in
    /// row-major order).
    ///
    /// # Errors
    ///
    /// * [`CircuitError::StalePlan`] when the loads are not one-per-node.
    /// * [`CircuitError::InvalidValue`] for a non-finite current.
    pub fn set_load_profile(
        &mut self,
        mut profile: impl FnMut(usize, usize) -> Amps,
    ) -> Result<(), CircuitError> {
        if self.loads.len() != self.nx * self.ny {
            return Err(CircuitError::StalePlan {
                reason: format!(
                    "set_load_profile needs one load per node ({} != {}); \
                     attach with attach_dense_load_profile",
                    self.loads.len(),
                    self.nx * self.ny
                ),
            });
        }
        for y in 0..self.ny {
            for x in 0..self.nx {
                let id = self.loads[y * self.nx + x];
                self.net.set_current(id, profile(x, y))?;
            }
        }
        Ok(())
    }

    /// Rewrites every load to an equal share of `total` in place (see
    /// [`PowerGrid::set_load_profile`]).
    ///
    /// # Errors
    ///
    /// As [`PowerGrid::set_load_profile`].
    pub fn set_uniform_load(&mut self, total: Amps) -> Result<(), CircuitError> {
        let per_node = total / (self.nx * self.ny) as f64;
        self.set_load_profile(|_, _| per_node)
    }

    /// Rewrites every mesh-edge resistance in place (e.g. to sample a
    /// sheet-resistance corner). A value-only mutation: the compiled
    /// solve plan stays valid.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] for a non-positive or
    /// non-finite resistance.
    pub fn set_sheet_resistance(&mut self, r_edge: Ohms) -> Result<(), CircuitError> {
        for &id in &self.mesh_edges {
            self.net.set_resistance(id, r_edge)?;
        }
        Ok(())
    }

    /// Scales every mesh-edge resistance whose both endpoints lie inside
    /// the inclusive node rectangle `(x0, y0)..=(x1, y1)` by `factor` —
    /// the model of a locally degraded interconnect patch (corroded or
    /// delaminated C4/TSV/µ-bump field raising the local sheet
    /// resistance). A value-only mutation: the compiled solve plan stays
    /// valid.
    ///
    /// Factors multiply the *current* resistance, so successive calls
    /// compound; restore nominal values with
    /// [`PowerGrid::set_sheet_resistance`].
    ///
    /// # Errors
    ///
    /// * [`CircuitError::UnknownNode`] for a rectangle that leaves the
    ///   mesh or is inverted.
    /// * [`CircuitError::InvalidValue`] for a non-positive or non-finite
    ///   factor.
    pub fn scale_region_resistance(
        &mut self,
        x0: usize,
        y0: usize,
        x1: usize,
        y1: usize,
        factor: f64,
    ) -> Result<(), CircuitError> {
        if x1 >= self.nx || y1 >= self.ny || x0 > x1 || y0 > y1 {
            return Err(CircuitError::UnknownNode {
                index: y1 * self.nx + x1,
            });
        }
        if !factor.is_finite() || factor <= 0.0 {
            return Err(CircuitError::InvalidValue {
                element: "region resistance factor",
                value: factor,
            });
        }
        // Walk mesh_edges in the same scan order they were built in
        // (per node: horizontal edge, then vertical edge) to recover
        // each edge's coordinates without storing them.
        let mut edge = 0;
        for y in 0..self.ny {
            for x in 0..self.nx {
                if x + 1 < self.nx {
                    let id = self.mesh_edges[edge];
                    edge += 1;
                    if y >= y0 && y <= y1 && x >= x0 && x < x1 {
                        self.scale_edge(id, factor)?;
                    }
                }
                if y + 1 < self.ny {
                    let id = self.mesh_edges[edge];
                    edge += 1;
                    if x >= x0 && x <= x1 && y >= y0 && y < y1 {
                        self.scale_edge(id, factor)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn scale_edge(&mut self, id: ElementId, factor: f64) -> Result<(), CircuitError> {
        let crate::ElementKind::Resistor { r } = self.net.element(id)?.kind else {
            return Err(CircuitError::UnknownElement { index: id.index() });
        };
        self.net.set_resistance(id, Ohms::new(r.value() * factor))
    }

    /// Attaches a regulator at `(x, y)`: an ideal `setpoint` source to
    /// ground, behind `droop` resistance into the grid node.
    ///
    /// # Errors
    ///
    /// Propagates coordinate and netlist validation errors.
    pub fn attach_regulator(
        &mut self,
        x: usize,
        y: usize,
        setpoint: Volts,
        droop: Ohms,
    ) -> Result<(), CircuitError> {
        let grid_node = self.node_at(x, y)?;
        let k = self.regulators.len();
        let source_node = self.net.node(&format!("vr{k}"));
        let source_element = self
            .net
            .voltage_source(source_node, self.net.ground(), setpoint)?;
        let droop_element = self.net.resistor(source_node, grid_node, droop)?;
        self.regulators.push(Regulator {
            x,
            y,
            droop_element,
            source_element,
            source_node,
        });
        self.plan = None;
        Ok(())
    }

    /// Changes regulator `k`'s droop resistance in place. A value-only
    /// mutation: the compiled solve plan stays valid.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::UnknownElement`] for a regulator index out of
    ///   range.
    /// * [`CircuitError::InvalidValue`] for a non-positive resistance.
    pub fn set_regulator_droop(&mut self, k: usize, droop: Ohms) -> Result<(), CircuitError> {
        let r = *self
            .regulators
            .get(k)
            .ok_or(CircuitError::UnknownElement { index: k })?;
        self.net.set_resistance(r.droop_element, droop)
    }

    /// Changes regulator `k`'s setpoint voltage in place. A value-only
    /// mutation: the compiled solve plan stays valid.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::UnknownElement`] for a regulator index out of
    ///   range.
    /// * [`CircuitError::InvalidValue`] for a non-finite voltage.
    pub fn set_regulator_setpoint(
        &mut self,
        k: usize,
        setpoint: Volts,
    ) -> Result<(), CircuitError> {
        let r = *self
            .regulators
            .get(k)
            .ok_or(CircuitError::UnknownElement { index: k })?;
        self.net.set_voltage(r.source_element, setpoint)
    }

    /// Moves regulator `k` to grid position `(x, y)` by rewiring its
    /// droop resistor — the annealer's placement move. The node set is
    /// unchanged, but terminals move, so the compiled solve plan is
    /// invalidated (the next [`PowerGrid::solve_cached`] recompiles).
    ///
    /// # Errors
    ///
    /// * [`CircuitError::UnknownElement`] for a regulator index out of
    ///   range.
    /// * [`CircuitError::UnknownNode`] for a position outside the mesh.
    pub fn move_regulator(&mut self, k: usize, x: usize, y: usize) -> Result<(), CircuitError> {
        let grid_node = self.node_at(x, y)?;
        let r = *self
            .regulators
            .get(k)
            .ok_or(CircuitError::UnknownElement { index: k })?;
        self.net.rewire(r.droop_element, r.source_node, grid_node)?;
        self.regulators[k].x = x;
        self.regulators[k].y = y;
        self.plan = None;
        Ok(())
    }

    /// The regulators attached so far.
    #[must_use]
    pub fn regulators(&self) -> &[Regulator] {
        &self.regulators
    }

    /// Solves the DC operating point of the loaded grid.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::FloatingNode`] when no regulator has been
    ///   attached (the mesh then has no path to ground).
    /// * Any solver error from [`DcSolver::solve`].
    pub fn solve(&self) -> Result<crate::DcSolution, CircuitError> {
        DcSolver::new().solve(&self.net)
    }

    /// Solves through a cached [`SparseDcPlan`], compiling it on first
    /// use (or after a topology change) and otherwise restamping element
    /// values in place and warm-starting CG from the previous solution.
    ///
    /// This is the hot path for repeated solves of one grid — Monte-Carlo
    /// sampling, design sweeps, and placement annealing. Results agree
    /// with [`PowerGrid::solve`] to CG tolerance.
    ///
    /// # Errors
    ///
    /// As [`PowerGrid::solve`].
    pub fn solve_cached(&mut self) -> Result<crate::DcSolution, CircuitError> {
        vpd_obs::incr("grid.solves");
        self.ensure_plan()?;
        let plan = self.plan.as_mut().expect("plan was just ensured");
        match plan.solve(&self.net) {
            Err(CircuitError::StalePlan { .. }) => {
                vpd_obs::incr("grid.plan_recompiles");
                // Defensive: topology mutations clear the plan, so this
                // only triggers if the netlist was changed through a path
                // that bypassed the setters. Recompile and retry once.
                let mut fresh = SparseDcPlan::compile(&self.net)?;
                fresh.set_mode(self.mode)?;
                let sol = fresh.solve(&self.net);
                self.plan = Some(fresh);
                sol
            }
            other => other,
        }
    }

    /// Compiles the plan (in the grid's solver mode) if none is cached.
    fn ensure_plan(&mut self) -> Result<(), CircuitError> {
        if self.plan.is_none() {
            let mut plan = SparseDcPlan::compile(&self.net)?;
            plan.set_mode(self.mode)?;
            self.plan = Some(plan);
            vpd_obs::incr("grid.plan_compiles");
        }
        Ok(())
    }

    /// The solver mode behind [`PowerGrid::solve_cached`].
    #[must_use]
    pub const fn solve_mode(&self) -> DcPlanMode {
        self.mode
    }

    /// Switches the cached plan's solver mode ([`DcPlanMode::WarmCg`] by
    /// default). The compiled plan survives the switch — only the
    /// numeric backend changes — and recompiles after topology changes
    /// keep the chosen mode.
    ///
    /// # Errors
    ///
    /// As [`SparseDcPlan::set_mode`].
    pub fn set_solve_mode(&mut self, mode: DcPlanMode) -> Result<(), CircuitError> {
        if let Some(plan) = self.plan.as_mut() {
            plan.set_mode(mode)?;
        }
        self.mode = mode;
        Ok(())
    }

    /// Solves one operating point per setpoint, holding **every**
    /// regulator at that setpoint, as a single multi-right-hand-side
    /// block ([`SparseDcPlan::solve_block`]): setpoint moves enter the
    /// reduced system only through the right-hand side, so in direct
    /// mode all points share one factorization and one pass over the
    /// factor. In CG mode this degrades to sequential cached solves.
    ///
    /// The grid is left at the **last** setpoint, exactly as if the
    /// sweep had been run through repeated
    /// [`PowerGrid::set_regulator_setpoint`] + [`PowerGrid::solve_cached`]
    /// calls.
    ///
    /// # Errors
    ///
    /// As [`PowerGrid::solve_cached`], plus
    /// [`CircuitError::UnknownElement`] when no regulator is attached.
    pub fn solve_setpoint_block(
        &mut self,
        setpoints: &[Volts],
    ) -> Result<Vec<crate::DcSolution>, CircuitError> {
        if self.regulators.is_empty() {
            return Err(CircuitError::UnknownElement { index: 0 });
        }
        self.ensure_plan()?;
        let sources: Vec<ElementId> = self.regulators.iter().map(|r| r.source_element).collect();
        let plan = self.plan.as_mut().expect("plan was just ensured");
        plan.solve_block(&mut self.net, setpoints.len(), |net, c| {
            for &e in &sources {
                net.set_voltage(e, setpoints[c])?;
            }
            Ok(())
        })
    }

    /// Seeds the next [`PowerGrid::solve_cached`]'s warm start from a
    /// previous solution of this grid (e.g. the nominal operating point
    /// of a Monte-Carlo study), compiling the plan if needed.
    ///
    /// Anchoring every sample to one nominal solution keeps results
    /// independent of sample order, which is what makes parallel and
    /// serial sweeps bitwise-identical.
    ///
    /// # Errors
    ///
    /// Compile errors as [`PowerGrid::solve`], or
    /// [`CircuitError::StalePlan`] for a solution of mismatched size.
    pub fn seed_solution(&mut self, sol: &crate::DcSolution) -> Result<(), CircuitError> {
        self.ensure_plan()?;
        self.plan
            .as_mut()
            .expect("plan was just ensured")
            .set_guess(sol)
    }

    /// CG iteration count of the most recent [`PowerGrid::solve_cached`],
    /// if any — the observable effect of warm starting.
    #[must_use]
    pub fn last_cg_iterations(&self) -> Option<usize> {
        self.plan
            .as_ref()
            .and_then(SparseDcPlan::last_report)
            .map(|r| r.iterations)
    }

    /// Full convergence diagnostic of the most recent
    /// [`PowerGrid::solve_cached`]: which resilience-ladder rung solved
    /// the system (plain CG, cold-restart CG, or dense LU), iterations,
    /// residual, and whether CG stagnated.
    #[must_use]
    pub fn last_solve_report(&self) -> Option<SolveReport> {
        self.plan.as_ref().and_then(SparseDcPlan::last_report)
    }

    /// Output current of each regulator (in attachment order), positive
    /// when sourcing current into the grid.
    #[must_use]
    pub fn regulator_currents(&self, sol: &crate::DcSolution) -> Vec<Amps> {
        self.regulators
            .iter()
            .map(|r| sol.current(r.droop_element))
            .collect()
    }

    /// Worst-case IR drop: setpoint minus the minimum node voltage.
    #[must_use]
    pub fn worst_ir_drop(&self, sol: &crate::DcSolution, setpoint: Volts) -> Volts {
        let vmin = self
            .nodes
            .iter()
            .map(|n| sol.voltage(*n).value())
            .fold(f64::INFINITY, f64::min);
        setpoint - Volts::new(vmin)
    }

    /// Total power dissipated in the mesh resistors *excluding* the
    /// regulator droop resistors (grid loss only).
    #[must_use]
    pub fn grid_loss(&self, sol: &crate::DcSolution) -> vpd_units::Watts {
        let droop_ids: Vec<usize> = self
            .regulators
            .iter()
            .map(|r| r.droop_element.index())
            .collect();
        self.net
            .elements()
            .iter()
            .enumerate()
            .filter(|(i, e)| {
                matches!(e.kind, crate::ElementKind::Resistor { .. }) && !droop_ids.contains(i)
            })
            .map(|(i, _)| {
                sol.dissipated_power(&self.net, ElementId(i))
                    .unwrap_or(vpd_units::Watts::ZERO)
            })
            .sum()
    }

    /// Borrow of the underlying netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.net
    }

    /// Physical helper: edge resistance for a mesh discretizing a square
    /// sheet of side `side` with `n` nodes per side and the given sheet
    /// resistance — each edge spans one inter-node pitch, which is one
    /// square of sheet.
    #[must_use]
    pub fn edge_resistance_for_sheet(sheet: Ohms, _side: Meters, _nodes_per_side: usize) -> Ohms {
        // One inter-node segment is (pitch long × pitch wide) = 1 square.
        sheet
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_grid_shares_current_equally() {
        let mut grid = PowerGrid::new(5, 5, Ohms::from_milliohms(1.0)).unwrap();
        grid.attach_uniform_load(Amps::new(25.0)).unwrap();
        // Four corner regulators: symmetry → equal share.
        for (x, y) in [(0, 0), (4, 0), (0, 4), (4, 4)] {
            grid.attach_regulator(x, y, Volts::new(1.0), Ohms::from_milliohms(0.5))
                .unwrap();
        }
        let sol = grid.solve().unwrap();
        let currents = grid.regulator_currents(&sol);
        let avg = 25.0 / 4.0;
        for c in &currents {
            assert!((c.value() - avg).abs() < 1e-6, "corner share {c:?}");
        }
    }

    #[test]
    fn center_regulator_carries_more_than_corner() {
        let mut grid = PowerGrid::new(9, 9, Ohms::from_milliohms(2.0)).unwrap();
        grid.attach_uniform_load(Amps::new(81.0)).unwrap();
        grid.attach_regulator(4, 4, Volts::new(1.0), Ohms::from_milliohms(0.5))
            .unwrap();
        grid.attach_regulator(0, 0, Volts::new(1.0), Ohms::from_milliohms(0.5))
            .unwrap();
        let sol = grid.solve().unwrap();
        let currents = grid.regulator_currents(&sol);
        assert!(currents[0].value() > currents[1].value());
        let total: f64 = currents.iter().map(|c| c.value()).sum();
        assert!((total - 81.0).abs() < 1e-6);
    }

    #[test]
    fn unregulated_grid_is_floating() {
        let mut grid = PowerGrid::new(3, 3, Ohms::new(1.0)).unwrap();
        grid.attach_uniform_load(Amps::new(9.0)).unwrap();
        assert!(matches!(
            grid.solve(),
            Err(CircuitError::FloatingNode { .. })
        ));
    }

    #[test]
    fn hotspot_profile_shifts_current_toward_hotspot() {
        let mut grid = PowerGrid::new(7, 7, Ohms::from_milliohms(20.0)).unwrap();
        grid.attach_load_profile(|x, y| {
            // All the load sits in the left column.
            if x == 0 {
                Amps::new(7.0)
            } else {
                let _ = y;
                Amps::ZERO
            }
        })
        .unwrap();
        grid.attach_regulator(0, 3, Volts::new(1.0), Ohms::from_milliohms(1.0))
            .unwrap();
        grid.attach_regulator(6, 3, Volts::new(1.0), Ohms::from_milliohms(1.0))
            .unwrap();
        let sol = grid.solve().unwrap();
        let currents = grid.regulator_currents(&sol);
        assert!(currents[0].value() > currents[1].value() * 2.0);
    }

    #[test]
    fn ir_drop_grows_with_load() {
        let mk = |load: f64| {
            let mut grid = PowerGrid::new(6, 6, Ohms::from_milliohms(2.0)).unwrap();
            grid.attach_uniform_load(Amps::new(load)).unwrap();
            grid.attach_regulator(0, 0, Volts::new(1.0), Ohms::from_milliohms(1.0))
                .unwrap();
            let sol = grid.solve().unwrap();
            grid.worst_ir_drop(&sol, Volts::new(1.0)).value()
        };
        assert!(mk(36.0) > mk(3.6));
    }

    #[test]
    fn grid_loss_excludes_droop() {
        let mut grid = PowerGrid::new(2, 1, Ohms::new(1.0)).unwrap();
        grid.attach_load_profile(|x, _| if x == 1 { Amps::new(1.0) } else { Amps::ZERO })
            .unwrap();
        grid.attach_regulator(0, 0, Volts::new(1.0), Ohms::new(1.0))
            .unwrap();
        let sol = grid.solve().unwrap();
        // 1 A through one 1 Ω mesh edge → 1 W grid loss; droop loses
        // another 1 W but must not be counted here.
        assert!((grid.grid_loss(&sol).value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_empty_dims() {
        assert!(PowerGrid::new(0, 3, Ohms::new(1.0)).is_err());
        assert!(PowerGrid::new(3, 0, Ohms::new(1.0)).is_err());
    }

    #[test]
    fn node_at_bounds() {
        let grid = PowerGrid::new(2, 2, Ohms::new(1.0)).unwrap();
        assert!(grid.node_at(1, 1).is_ok());
        assert!(grid.node_at(2, 0).is_err());
    }

    fn assert_solutions_close(a: &crate::DcSolution, b: &crate::DcSolution, tol: f64) {
        assert_eq!(a.node_voltages().len(), b.node_voltages().len());
        for (va, vb) in a.node_voltages().iter().zip(b.node_voltages()) {
            assert!((va - vb).abs() < tol, "{va} vs {vb}");
        }
    }

    #[test]
    fn direct_mode_matches_cg_mode() {
        let build = || {
            let mut grid = PowerGrid::new(10, 10, Ohms::from_milliohms(2.0)).unwrap();
            grid.attach_uniform_load(Amps::new(50.0)).unwrap();
            grid.attach_regulator(2, 2, Volts::new(1.0), Ohms::from_milliohms(0.5))
                .unwrap();
            grid.attach_regulator(7, 7, Volts::new(1.0), Ohms::from_milliohms(0.5))
                .unwrap();
            grid
        };
        let mut cg = build();
        let cg_sol = cg.solve_cached().unwrap();
        let mut direct = build();
        direct.set_solve_mode(DcPlanMode::DirectCholesky).unwrap();
        assert_eq!(direct.solve_mode(), DcPlanMode::DirectCholesky);
        let direct_sol = direct.solve_cached().unwrap();
        assert_eq!(
            direct.last_solve_report().unwrap().method,
            vpd_numeric::SolveMethod::SparseCholesky
        );
        assert_solutions_close(&cg_sol, &direct_sol, 1e-7);
    }

    #[test]
    fn setpoint_block_matches_sequential_direct_sweep_bitwise() {
        let build = || {
            let mut grid = PowerGrid::new(9, 9, Ohms::from_milliohms(2.0)).unwrap();
            grid.attach_uniform_load(Amps::new(40.0)).unwrap();
            grid.attach_regulator(0, 0, Volts::new(1.0), Ohms::from_milliohms(0.5))
                .unwrap();
            grid.attach_regulator(8, 8, Volts::new(1.0), Ohms::from_milliohms(0.5))
                .unwrap();
            grid.set_solve_mode(DcPlanMode::DirectCholesky).unwrap();
            grid
        };
        let setpoints = [
            Volts::new(0.9),
            Volts::new(0.95),
            Volts::new(1.0),
            Volts::new(1.05),
        ];
        let mut block_grid = build();
        let block = block_grid.solve_setpoint_block(&setpoints).unwrap();
        assert_eq!(block.len(), setpoints.len());

        let mut seq_grid = build();
        for (c, &sp) in setpoints.iter().enumerate() {
            for k in 0..seq_grid.regulators().len() {
                seq_grid.set_regulator_setpoint(k, sp).unwrap();
            }
            let sol = seq_grid.solve_cached().unwrap();
            for (vb, vs) in block[c].node_voltages().iter().zip(sol.node_voltages()) {
                assert_eq!(vb.to_bits(), vs.to_bits(), "setpoint {c}");
            }
        }
    }

    #[test]
    fn setpoint_block_requires_a_regulator() {
        let mut grid = PowerGrid::new(3, 3, Ohms::new(1.0)).unwrap();
        grid.attach_uniform_load(Amps::new(1.0)).unwrap();
        assert!(grid.solve_setpoint_block(&[Volts::new(1.0)]).is_err());
    }

    #[test]
    fn cached_solve_matches_one_shot() {
        let mut grid = PowerGrid::new(9, 9, Ohms::from_milliohms(2.0)).unwrap();
        grid.attach_uniform_load(Amps::new(81.0)).unwrap();
        grid.attach_regulator(4, 4, Volts::new(1.0), Ohms::from_milliohms(0.5))
            .unwrap();
        let cached = grid.solve_cached().unwrap();
        let one_shot = grid.solve().unwrap();
        assert_solutions_close(&cached, &one_shot, 1e-8);
        assert!(grid.last_cg_iterations().is_some());
    }

    #[test]
    fn restamped_grid_matches_rebuilt_grid() {
        let build = |r_mohm: f64, load: f64, droop_mohm: f64, setpoint: f64| {
            let mut grid = PowerGrid::new(8, 6, Ohms::from_milliohms(r_mohm)).unwrap();
            grid.attach_uniform_load(Amps::new(load)).unwrap();
            grid.attach_regulator(1, 1, Volts::new(setpoint), Ohms::from_milliohms(droop_mohm))
                .unwrap();
            grid.attach_regulator(6, 4, Volts::new(setpoint), Ohms::from_milliohms(droop_mohm))
                .unwrap();
            grid
        };
        let mut grid = build(2.0, 48.0, 0.5, 1.0);
        grid.solve_cached().unwrap();
        // Restamp every knob the sweeps touch, without rebuilding.
        grid.set_sheet_resistance(Ohms::from_milliohms(3.0))
            .unwrap();
        grid.set_uniform_load(Amps::new(60.0)).unwrap();
        grid.set_regulator_droop(0, Ohms::from_milliohms(0.8))
            .unwrap();
        grid.set_regulator_droop(1, Ohms::from_milliohms(0.8))
            .unwrap();
        grid.set_regulator_setpoint(0, Volts::new(1.05)).unwrap();
        grid.set_regulator_setpoint(1, Volts::new(1.05)).unwrap();
        let restamped = grid.solve_cached().unwrap();
        let rebuilt = build(3.0, 60.0, 0.8, 1.05).solve().unwrap();
        assert_solutions_close(&restamped, &rebuilt, 1e-8);
    }

    #[test]
    fn nonuniform_profile_restamps_in_place() {
        let mut grid = PowerGrid::new(6, 6, Ohms::from_milliohms(5.0)).unwrap();
        grid.attach_dense_load_profile(|_, _| Amps::ZERO).unwrap();
        grid.attach_regulator(0, 0, Volts::new(1.0), Ohms::from_milliohms(1.0))
            .unwrap();
        grid.set_load_profile(|x, _| if x == 5 { Amps::new(2.0) } else { Amps::ZERO })
            .unwrap();
        let sol = grid.solve_cached().unwrap();
        // All load on the far column: its voltage sags below the near one.
        let near = sol.voltage(grid.node_at(0, 3).unwrap()).value();
        let far = sol.voltage(grid.node_at(5, 3).unwrap()).value();
        assert!(far < near);
    }

    #[test]
    fn sparse_profile_rejects_set_load_profile() {
        let mut grid = PowerGrid::new(4, 4, Ohms::new(1.0)).unwrap();
        grid.attach_load_profile(|x, y| {
            if x == 0 && y == 0 {
                Amps::new(1.0)
            } else {
                Amps::ZERO
            }
        })
        .unwrap();
        assert!(matches!(
            grid.set_load_profile(|_, _| Amps::new(0.5)),
            Err(CircuitError::StalePlan { .. })
        ));
    }

    #[test]
    fn move_regulator_matches_rebuild_at_new_site() {
        let mut grid = PowerGrid::new(7, 7, Ohms::from_milliohms(4.0)).unwrap();
        grid.attach_uniform_load(Amps::new(49.0)).unwrap();
        grid.attach_regulator(0, 0, Volts::new(1.0), Ohms::from_milliohms(1.0))
            .unwrap();
        grid.solve_cached().unwrap();
        grid.move_regulator(0, 3, 3).unwrap();
        assert_eq!(grid.regulators()[0].x, 3);
        let moved = grid.solve_cached().unwrap();
        let mut rebuilt = PowerGrid::new(7, 7, Ohms::from_milliohms(4.0)).unwrap();
        rebuilt.attach_uniform_load(Amps::new(49.0)).unwrap();
        rebuilt
            .attach_regulator(3, 3, Volts::new(1.0), Ohms::from_milliohms(1.0))
            .unwrap();
        assert_solutions_close(&moved, &rebuilt.solve().unwrap(), 1e-8);
        assert!(grid.move_regulator(0, 9, 0).is_err());
    }

    #[test]
    fn region_scaling_matches_rebuilt_degraded_grid() {
        // Scale a 2x2 patch by 10x via restamp; rebuild the same grid
        // with per-edge resistances set by hand and compare solutions.
        let mut grid = PowerGrid::new(6, 6, Ohms::from_milliohms(2.0)).unwrap();
        grid.attach_uniform_load(Amps::new(36.0)).unwrap();
        grid.attach_regulator(0, 0, Volts::new(1.0), Ohms::from_milliohms(1.0))
            .unwrap();
        grid.solve_cached().unwrap();
        grid.scale_region_resistance(2, 2, 4, 4, 10.0).unwrap();
        let degraded = grid.solve_cached().unwrap();

        let mut rebuilt = PowerGrid::new(6, 6, Ohms::from_milliohms(2.0)).unwrap();
        rebuilt.attach_uniform_load(Amps::new(36.0)).unwrap();
        rebuilt
            .attach_regulator(0, 0, Volts::new(1.0), Ohms::from_milliohms(1.0))
            .unwrap();
        rebuilt.scale_region_resistance(2, 2, 4, 4, 10.0).unwrap();
        assert_solutions_close(&degraded, &rebuilt.solve().unwrap(), 1e-8);

        // Degrading a patch must worsen the IR drop somewhere.
        let nominal = {
            let mut g = PowerGrid::new(6, 6, Ohms::from_milliohms(2.0)).unwrap();
            g.attach_uniform_load(Amps::new(36.0)).unwrap();
            g.attach_regulator(0, 0, Volts::new(1.0), Ohms::from_milliohms(1.0))
                .unwrap();
            let s = g.solve().unwrap();
            g.worst_ir_drop(&s, Volts::new(1.0)).value()
        };
        assert!(grid.worst_ir_drop(&degraded, Volts::new(1.0)).value() > nominal);
    }

    #[test]
    fn region_scaling_validates_inputs() {
        let mut grid = PowerGrid::new(4, 4, Ohms::new(1.0)).unwrap();
        assert!(grid.scale_region_resistance(0, 0, 4, 1, 2.0).is_err());
        assert!(grid.scale_region_resistance(2, 0, 1, 1, 2.0).is_err());
        assert!(grid.scale_region_resistance(0, 0, 1, 1, 0.0).is_err());
        assert!(grid.scale_region_resistance(0, 0, 1, 1, f64::NAN).is_err());
    }

    #[test]
    fn solve_report_is_surfaced_through_cached_solve() {
        let mut grid = PowerGrid::new(6, 6, Ohms::from_milliohms(2.0)).unwrap();
        grid.attach_uniform_load(Amps::new(36.0)).unwrap();
        grid.attach_regulator(3, 3, Volts::new(1.0), Ohms::from_milliohms(0.5))
            .unwrap();
        assert!(grid.last_solve_report().is_none());
        grid.solve_cached().unwrap();
        let report = grid.last_solve_report().unwrap();
        assert_eq!(report.method, vpd_numeric::SolveMethod::ConjugateGradient);
        assert!(!report.used_fallback());
        assert!(report.relative_residual.is_finite());
    }

    #[test]
    fn seeded_resolve_converges_immediately() {
        let mut grid = PowerGrid::new(10, 10, Ohms::from_milliohms(2.0)).unwrap();
        grid.attach_uniform_load(Amps::new(100.0)).unwrap();
        grid.attach_regulator(5, 5, Volts::new(1.0), Ohms::from_milliohms(0.5))
            .unwrap();
        let nominal = grid.solve_cached().unwrap();
        grid.seed_solution(&nominal).unwrap();
        grid.solve_cached().unwrap();
        assert_eq!(grid.last_cg_iterations(), Some(0));
    }
}
