//! Offline stand-in for `criterion`.
//!
//! Provides the `Criterion` / `BenchmarkGroup` / `Bencher` surface this
//! workspace's benches use, backed by a plain wall-clock timing loop
//! (warmup, then timed batches; median-of-batches reported). No HTML
//! reports, no statistical regression — just stable numbers on stderr
//! suitable for before/after comparisons. Swapping the real criterion
//! back in requires no source changes.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark (after warmup).
const MEASURE: Duration = Duration::from_millis(300);
/// Warmup time per benchmark.
const WARMUP: Duration = Duration::from_millis(100);
/// Number of timed batches the measurement window is split into.
const BATCHES: usize = 10;

/// Identifies a parameterized benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id rendered from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Runs closures under the timing loop.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, storing the median-of-batches mean iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: run until the warmup window elapses, counting
        // iterations to size the timed batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((MEASURE.as_secs_f64() / BATCHES as f64 / per_iter).ceil() as u64).max(1);

        let mut samples = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2] * 1e9;
    }
}

fn report(label: &str, ns: f64) {
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    eprintln!("bench: {label:<48} {value:>10.3} {unit}/iter");
}

fn run_bench(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { ns_per_iter: 0.0 };
    f(&mut bencher);
    report(label, bencher.ns_per_iter);
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with `input`, labeled by `id` within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_bench(&label, |b| f(b, input));
        self
    }

    /// Benchmarks `f`, labeled by `id` within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_bench(&label, f);
        self
    }

    /// Ends the group (no-op; present for API parity).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks a single closure under `name`.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_bench(&name.into(), f);
        self
    }
}

/// Declares a function that runs each listed benchmark fn in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
