//! Offline stand-in for `serde_derive`.
//!
//! The real `serde_derive` generates full (de)serialization code; this
//! repository only uses the derives as markers (nothing serializes through
//! serde at runtime — see `vpd-report` for the hand-rolled CSV/JSON paths),
//! so the stand-in emits empty impls of the marker traits defined by the
//! sibling `serde` stand-in. Helper attributes like `#[serde(transparent)]`
//! are accepted and ignored.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the struct/enum a derive is attached to.
fn derived_type_name(input: &TokenStream) -> Option<String> {
    let mut saw_kind = false;
    for tt in input.clone() {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kind {
                return Some(s);
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_kind = true;
            }
        }
    }
    None
}

/// Derives the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = derived_type_name(&input).expect("derive target must name a type");
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = derived_type_name(&input).expect("derive target must name a type");
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}
