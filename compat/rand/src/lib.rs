//! Offline stand-in for `rand` 0.8.
//!
//! Implements the slice of the `rand` API this workspace uses — a seedable
//! `StdRng` with `gen`, `gen_range` over float and integer ranges — on a
//! xoshiro256++ core seeded through SplitMix64. Streams are deterministic
//! for a seed, which is all the Monte-Carlo and annealing code requires
//! (they never pin exact draw values, only reproducibility and
//! distribution shape).
//!
//! Not cryptographic, and not stream-compatible with the real `StdRng`
//! (ChaCha12); swapping the real crate back in changes sampled values but
//! no API.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step — used for seeding and index mixing.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seedable RNG constructor trait (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling trait (stand-in for `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of the next word.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A sample of the "standard" distribution for `T` (`[0, 1)` for
    /// floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one standard sample.
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named RNG implementations (stand-in for `rand::rngs`).
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    #[derive(Clone, PartialEq, Eq, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_ranges_stay_inside_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-0.2_f64..=0.2);
            assert!((-0.2..=0.2).contains(&x));
            let y = rng.gen_range(3.0_f64..5.0);
            assert!((3.0..5.0).contains(&y));
            let z: f64 = rng.gen();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn integer_ranges_cover_support() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0_usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
