//! Offline stand-in for `proptest`.
//!
//! The container cannot reach a crates registry, so this crate provides
//! the slice of proptest this workspace uses: the `proptest!` macro with
//! an optional `#![proptest_config(..)]` header, `prop_assert!` /
//! `prop_assert_eq!`, range strategies for floats and integers,
//! `collection::vec`, and `array::uniformN`. Cases are sampled (no
//! shrinking) from a deterministic per-test RNG seeded by the test name,
//! so failures reproduce run to run. Swapping the real crate back in
//! requires no source changes.

#![forbid(unsafe_code)]

/// Runner configuration (stand-in for `proptest::test_runner`).
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of sampled cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` sampled inputs per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// Value-generation strategies (stand-in for `proptest::strategy`).
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::ops::{Range, RangeInclusive};

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// A deterministic RNG derived from the test's name, so each
    /// property sees the same case stream every run.
    #[must_use]
    pub fn new_test_rng(name: &str) -> TestRng {
        // FNV-1a over the test name keeps distinct tests decorrelated.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }

    /// Something that can produce values for a property.
    pub trait Strategy {
        /// The type of value produced.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Collection strategies (stand-in for `proptest::collection`).
pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A half-open length range for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            Self {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (stand-in for `proptest::array`).
pub mod array {
    use super::strategy::{Strategy, TestRng};

    /// Strategy producing `[T; N]` from an element strategy.
    #[derive(Clone, Debug)]
    pub struct UniformArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.element.sample(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident => $n:literal),* $(,)?) => {$(
            /// An `[T; N]` strategy sampling every slot from `element`.
            pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
                UniformArrayStrategy { element }
            }
        )*};
    }
    uniform_fns!(
        uniform1 => 1, uniform2 => 2, uniform3 => 3, uniform4 => 4,
        uniform5 => 5, uniform6 => 6, uniform7 => 7, uniform8 => 8,
        uniform9 => 9, uniform10 => 10, uniform12 => 12, uniform16 => 16,
        uniform24 => 24, uniform32 => 32,
    );
}

/// The common imports (stand-in for `proptest::prelude`).
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Runs each property in the block `config.cases` times with freshly
/// sampled inputs. No shrinking: the failing case's inputs surface in
/// the panic message instead.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::strategy::new_test_rng(stringify!($name));
            for _ in 0..__config.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )+
                $body
            }
        }
    )*};
}

/// `assert!` that names the property framework in its intent.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Sampled floats respect their range.
        #[test]
        fn floats_in_range(x in 1.5_f64..2.5) {
            prop_assert!((1.5..2.5).contains(&x));
        }

        /// Vec lengths and elements respect their strategies.
        #[test]
        fn vecs_in_range(v in crate::collection::vec(0.0_f64..1.0, 2..8)) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        /// Arrays fill every slot from the element strategy.
        #[test]
        fn arrays_fill(a in crate::array::uniform4(-1.0_f64..1.0), n in 0_usize..3) {
            prop_assert!(a.iter().all(|x| (-1.0..1.0).contains(x)));
            prop_assert!(n < 3);
        }
    }
}
