//! Offline stand-in for `serde`.
//!
//! This container has no network access and no vendored registry, so the
//! real `serde` cannot be fetched. The workspace only uses serde as derive
//! markers (no code path serializes through it), so this crate provides
//! empty marker traits plus the derive macros from the sibling
//! `serde_derive` stand-in. Swapping the workspace dependency back to the
//! real crates-io `serde` requires no source changes.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
