#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, lint, and format check.
#
# Dev-dependencies (criterion, proptest) are vendored under compat/ for
# offline use, but if resolving them ever fails — e.g. on a host without
# the [patch] entries — the test step degrades to the workspace minus
# vpd-bench, whose criterion benches are the only hard dev-dep consumer.
set -uo pipefail
cd "$(dirname "$0")/.."

fail=0
step() {
    echo
    echo "==> $*"
}

step "cargo build --release"
cargo build --release || fail=1

step "cargo test -q --release"
if ! cargo test -q --release; then
    step "full test run failed to resolve; retrying without vpd-bench"
    cargo test -q --release --workspace --exclude vpd-bench || fail=1
fi

step "fault-sweep smoke (8 scenarios, finiteness-checked)"
cargo run --release -p vpd-bench --bin faults -- --samples 8 || fail=1

step "cargo clippy --release -- -D warnings"
cargo clippy --release --workspace --all-targets -- -D warnings || fail=1

step "cargo fmt --check"
cargo fmt --all --check || fail=1

echo
if [ "$fail" -ne 0 ]; then
    echo "tier1: FAILED"
    exit 1
fi
echo "tier1: OK"
