#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, lint, and format check.
#
# Dev-dependencies (criterion, proptest) are vendored under compat/ for
# offline use, but if resolving them ever fails — e.g. on a host without
# the [patch] entries — the test step degrades to the workspace minus
# vpd-bench, whose criterion benches are the only hard dev-dep consumer.
set -uo pipefail
cd "$(dirname "$0")/.."

fail=0
step() {
    echo
    echo "==> $*"
}

step "cargo build --release"
cargo build --release || fail=1

step "cargo test -q --release"
if ! cargo test -q --release; then
    step "full test run failed to resolve; retrying without vpd-bench"
    cargo test -q --release --workspace --exclude vpd-bench || fail=1
fi

step "fault-sweep smoke (8 scenarios, finiteness-checked)"
cargo run --release -p vpd-bench --bin faults -- --samples 8 || fail=1

step "observability smoke (metrics on == off, bitwise)"
cargo run --release -p vpd-bench --bin obs -- --samples 8 || fail=1

step "ac-sweep smoke (16 points, four paths bitwise identical)"
cargo run --release -p vpd-bench --bin ac -- --points 16 || fail=1

step "CLI smoke: vpd impedance --format json"
if cargo run --release --bin vpd -- --format json \
    impedance --arch all --points 24 >target/tier1-impedance.json; then
    python3 - target/tier1-impedance.json <<'EOF' || fail=1
import json, math, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
archs = doc["comparison"]["architectures"]
assert [a["label"] for a in archs] == ["A0", "A1", "A2"], archs
for a in archs:
    for key in ("peak_ohm", "peak_frequency_hz", "target_ohm", "margin"):
        assert math.isfinite(a[key]), f"non-finite {key} for {a['label']}"
assert not archs[0]["meets_target"], "A0 must violate the target"
assert archs[2]["meets_target"], "A2 must meet the target"
assert archs[0]["peak_ohm"] > archs[2]["peak_ohm"], "peaks must fall A0 -> A2"
print("impedance smoke OK: comparison JSON parses, finite, correctly ordered")
EOF
else
    fail=1
fi

step "CLI smoke: --format json + --metrics NDJSON round-trip"
metrics_file="target/tier1-metrics.ndjson"
rm -f "$metrics_file"
if cargo run --release --bin vpd -- --format json --metrics "$metrics_file" \
    mc --arch a1 --samples 4 >target/tier1-mc.json; then
    python3 - "$metrics_file" target/tier1-mc.json <<'EOF' || fail=1
import json, math, sys

with open(sys.argv[2]) as f:
    doc = json.load(f)
summary = doc["summary"]
for key in ("mean_percent", "std_dev_percent", "min_percent", "max_percent"):
    assert math.isfinite(summary[key]), f"non-finite {key} in CLI JSON"

with open(sys.argv[1]) as f:
    lines = [json.loads(line) for line in f if line.strip()]
assert len(lines) == 1, f"expected 1 NDJSON record, got {len(lines)}"
rec = lines[0]
assert rec["label"] == "mc", rec["label"]
assert rec["counters"]["mc.samples"] == 4, rec["counters"]
assert rec["counters"]["cg.solves"] > 0, rec["counters"]
for value in rec["gauges"].values():
    assert value is None or math.isfinite(value), "non-finite gauge"
print("CLI smoke OK: JSON output and NDJSON metrics both parse and are finite")
EOF
else
    fail=1
fi

step "cargo clippy --release -- -D warnings"
cargo clippy --release --workspace --all-targets -- -D warnings || fail=1

step "cargo fmt --check"
cargo fmt --all --check || fail=1

echo
if [ "$fail" -ne 0 ]; then
    echo "tier1: FAILED"
    exit 1
fi
echo "tier1: OK"
