#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, lint, and format check.
#
# Dev-dependencies (criterion, proptest) are vendored under compat/ for
# offline use, but if resolving them ever fails — e.g. on a host without
# the [patch] entries — the test step degrades to the workspace minus
# vpd-bench, whose criterion benches are the only hard dev-dep consumer.
set -uo pipefail
cd "$(dirname "$0")/.."

fail=0
step() {
    echo
    echo "==> $*"
}

step "cargo build --release"
cargo build --release || fail=1

step "cargo test -q --release"
if ! cargo test -q --release; then
    step "full test run failed to resolve; retrying without vpd-bench"
    cargo test -q --release --workspace --exclude vpd-bench || fail=1
fi

step "fault-sweep smoke (8 scenarios, finiteness-checked)"
cargo run --release -p vpd-bench --bin faults -- --samples 8 || fail=1

step "dynamic-fault smoke (3 scenarios per engine, serial == parallel bitwise)"
cargo run --release -p vpd-bench --bin faultdyn -- --samples 3 || fail=1

step "BENCH_faultdyn.json audit (speedups >= 1.0, plan reuse >= 3x)"
python3 - BENCH_faultdyn.json <<'EOF' || fail=1
import json, math, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
for section in ("impedance", "transient", "dc", "cascade"):
    entry = doc[section]
    for key in ("reuse_scenarios_per_sec", "rebuild_scenarios_per_sec", "speedup"):
        assert math.isfinite(entry[key]) and entry[key] > 0, f"{section}.{key}: {entry}"
    assert entry["speedup"] >= 1.0, f"{section} plan reuse regressed below 1.0: {entry}"
    assert entry["parallel_matches_serial_bitwise"] is True, entry
assert math.isfinite(doc["plan_reuse_speedup"]), doc
assert doc["plan_reuse_speedup"] >= 3.0, (
    f"headline plan reuse fell below 3x: {doc['plan_reuse_speedup']}"
)
assert doc["cascade"]["converged"] > 0, doc["cascade"]
print(
    f"faultdyn bench audit OK: plan reuse {doc['plan_reuse_speedup']:.2f}x, "
    "every engine >= 1.0 and serial == parallel bitwise"
)
EOF

step "CLI smoke: vpd faults --dynamic --format json"
if cargo run --release --bin vpd -- --format json \
    faults --arch a2 --dynamic >target/tier1-faultdyn.json; then
    python3 - target/tier1-faultdyn.json <<'EOF' || fail=1
import json, math, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["command"] == "faults" and doc["mode"] == "dynamic", doc
z = doc["impedance"]
assert z["outcomes"], "impedance report has no scenarios"
for o in z["outcomes"]:
    assert math.isfinite(o["peak_ohm"]) and o["peak_ohm"] > 0, o
t = doc["transient"]
assert any(o["fail_at_s"] is None for o in t["outcomes"]), "missing healthy baseline"
assert all(math.isfinite(o["droop_v"]) for o in t["outcomes"]), t
s = doc["survival"]
assert isinstance(s["survives"], bool), s
assert s["converged"] + s["capped"] + s["diverged"] == len(s["outcomes"]), s
for o in s["outcomes"]:
    assert math.isfinite(o["residual_k"]), o
print(
    f"faults --dynamic smoke OK: {len(z['outcomes'])} impedance, "
    f"{len(t['outcomes'])} transient, {len(s['outcomes'])} cascade scenarios; "
    f"survives={s['survives']}"
)
EOF
else
    fail=1
fi

step "sparse-cholesky smoke (block bitwise, BENCH_cholesky.json speedups >= 1.0)"
cargo run --release -p vpd-bench --bin cholesky -- --smoke || fail=1

step "observability smoke (metrics on == off, bitwise)"
cargo run --release -p vpd-bench --bin obs -- --samples 8 || fail=1

step "ac-sweep smoke (16 points, four paths bitwise identical)"
cargo run --release -p vpd-bench --bin ac -- --points 16 || fail=1

step "transient bench smoke (4 runs, four engine paths bitwise identical)"
cargo run --release -p vpd-bench --bin transient -- --runs 4 || fail=1

step "BENCH_transient.json audit (checked-in speedups >= 1.0)"
python3 - BENCH_transient.json <<'EOF' || fail=1
import json, math, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
plan = doc["transient_plan"]
for key in ("plan_reuse_vs_rebuild_speedup", "engine_vs_rebuild_speedup"):
    assert math.isfinite(plan[key]), f"non-finite {key}"
    assert plan[key] >= 1.0, f"{key} regressed below 1.0: {plan[key]}"
assert plan["refactorizations_during_reuse"] == 0, plan
assert plan["parallel_matches_serial_bitwise"] is True, plan
print("transient bench audit OK: checked-in speedups >= 1.0, zero re-factorizations")
EOF

step "CLI smoke: vpd impedance --format json"
if cargo run --release --bin vpd -- --format json \
    impedance --arch all --points 24 >target/tier1-impedance.json; then
    python3 - target/tier1-impedance.json <<'EOF' || fail=1
import json, math, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
archs = doc["comparison"]["architectures"]
assert [a["label"] for a in archs] == ["A0", "A1", "A2"], archs
for a in archs:
    for key in ("peak_ohm", "peak_frequency_hz", "target_ohm", "margin"):
        assert math.isfinite(a[key]), f"non-finite {key} for {a['label']}"
assert not archs[0]["meets_target"], "A0 must violate the target"
assert archs[2]["meets_target"], "A2 must meet the target"
assert archs[0]["peak_ohm"] > archs[2]["peak_ohm"], "peaks must fall A0 -> A2"
print("impedance smoke OK: comparison JSON parses, finite, correctly ordered")
EOF
else
    fail=1
fi

step "CLI smoke: --format json + --metrics NDJSON round-trip"
metrics_file="target/tier1-metrics.ndjson"
rm -f "$metrics_file"
if cargo run --release --bin vpd -- --format json --metrics "$metrics_file" \
    mc --arch a1 --samples 4 >target/tier1-mc.json; then
    python3 - "$metrics_file" target/tier1-mc.json <<'EOF' || fail=1
import json, math, sys

with open(sys.argv[2]) as f:
    doc = json.load(f)
summary = doc["summary"]
for key in ("mean_percent", "std_dev_percent", "min_percent", "max_percent"):
    assert math.isfinite(summary[key]), f"non-finite {key} in CLI JSON"

with open(sys.argv[1]) as f:
    lines = [json.loads(line) for line in f if line.strip()]
assert len(lines) == 1, f"expected 1 NDJSON record, got {len(lines)}"
rec = lines[0]
assert rec["label"] == "mc", rec["label"]
assert rec["counters"]["mc.samples"] == 4, rec["counters"]
assert rec["counters"]["cg.solves"] > 0, rec["counters"]
for value in rec["gauges"].values():
    assert value is None or math.isfinite(value), "non-finite gauge"
print("CLI smoke OK: JSON output and NDJSON metrics both parse and are finite")
EOF
else
    fail=1
fi

step "serve bench smoke (cold/warm, saturation, batching, shed validation)"
cargo run --release -p vpd-bench --bin serve -- --smoke || fail=1

step "BENCH_serve.json audit (saturation curve, >=5x baseline, p99 bound)"
python3 - BENCH_serve.json <<'EOF' || fail=1
import json, math, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
serve = doc["serve"]
curve = serve["saturation"]
assert len(curve) >= 3, f"saturation curve needs >=3 client counts, got {len(curve)}"
for entry in curve:
    for key in ("throughput_req_per_sec", "latency_p50_ms", "latency_p99_ms"):
        assert math.isfinite(entry[key]) and entry[key] > 0, entry
baseline = serve["baseline_throughput_req_per_sec"]
peak = serve["throughput_req_per_sec"]
speedup = peak / baseline
assert speedup >= 5.0, f"peak {peak:.0f} req/s is only {speedup:.2f}x baseline {baseline}"
assert serve["latency_p99_ms"] <= serve["baseline_p99_ms"], (
    f"p99 {serve['latency_p99_ms']} regressed past baseline {serve['baseline_p99_ms']}"
)
assert serve["batch"]["speedup_vs_unbatched"] >= 1.0, serve["batch"]
assert serve["batched_matches_sequential_bitwise"] is True, serve
assert serve["cached_matches_cold_bitwise"] is True, serve
assert serve["shed_responses_well_formed"] is True, serve
print(
    f"serve bench audit OK: peak {peak:.0f} req/s = {speedup:.1f}x baseline, "
    f"p99 {serve['latency_p99_ms']:.2f} ms <= {serve['baseline_p99_ms']} ms, "
    f"batched bitwise-identical to sequential"
)
EOF

step "CLI smoke: vpd serve / vpd call round-trip over loopback"
serve_log="target/tier1-serve.log"
serve_metrics="target/tier1-serve-metrics.ndjson"
serve_calls="target/tier1-serve-calls.ndjson"
rm -f "$serve_metrics" "$serve_calls"
./target/release/vpd --metrics "$serve_metrics" serve --addr 127.0.0.1:0 \
    2>"$serve_log" &
serve_pid=$!
serve_addr=""
for _ in $(seq 1 100); do
    serve_addr=$(sed -n 's/^vpd serve: listening on //p' "$serve_log")
    [ -n "$serve_addr" ] && break
    sleep 0.1
done
if [ -z "$serve_addr" ]; then
    echo "vpd serve did not start:"
    cat "$serve_log"
    kill "$serve_pid" 2>/dev/null
    fail=1
else
    ./target/release/vpd call --addr "$serve_addr" \
        --request '{"id":1,"kind":"ping"}' \
        --request '{"id":2,"kind":"analyze","params":{"arch":"a1"}}' \
        --request '{"id":3,"kind":"sharing","params":{"modules":12}}' \
        --request '{"id":4,"kind":"mc","params":{"arch":"a0","samples":4}}' \
        --request '{"id":5,"kind":"impedance","params":{"arch":"a1","points":16}}' \
        --request '{"id":6,"kind":"droop","params":{"arch":"a0"}}' \
        --request '{"id":7,"kind":"faults","params":{"arch":"a2","random_k":2,"count":4,"seed":7}}' \
        --request '{"id":8,"kind":"stats"}' \
        >"$serve_calls" || fail=1
    ./target/release/vpd call --addr "$serve_addr" --shutdown >/dev/null || fail=1
    wait "$serve_pid" || fail=1
    python3 - "$serve_calls" "$serve_metrics" <<'EOF' || fail=1
import json, sys

with open(sys.argv[1]) as f:
    responses = [json.loads(line) for line in f if line.strip()]
assert len(responses) == 8, f"expected 8 responses, got {len(responses)}"
by_id = {r["id"]: r for r in responses}
assert sorted(by_id) == list(range(1, 9)), sorted(by_id)
for r in responses:
    assert r["ok"], f"request {r['id']} failed: {r}"
    assert r["version"] == 2, f"request {r['id']} missing protocol version: {r}"
stats = by_id[8]["result"]
cache = stats["cache"]
assert cache["misses"] > 0, cache
assert cache["entries"] > 0, cache

with open(sys.argv[2]) as f:
    lines = [json.loads(line) for line in f if line.strip()]
assert len(lines) == 1, f"expected 1 metrics record, got {len(lines)}"
rec = lines[0]
assert rec["label"] == "serve", rec["label"]
assert rec["counters"]["serve.requests"] == 8, rec["counters"]
assert rec["counters"]["serve.ok"] == 8, rec["counters"]
assert rec["counters"]["serve.cache.misses"] > 0, rec["counters"]
print("serve smoke OK: one response per request, all ok, metrics snapshot valid")
EOF
fi

step "CLI smoke: vpd call transient_stream over loopback"
stream_log="target/tier1-stream.log"
stream_out="target/tier1-stream.ndjson"
rm -f "$stream_out"
./target/release/vpd serve --addr 127.0.0.1:0 2>"$stream_log" &
stream_pid=$!
stream_addr=""
for _ in $(seq 1 100); do
    stream_addr=$(sed -n 's/^vpd serve: listening on //p' "$stream_log")
    [ -n "$stream_addr" ] && break
    sleep 0.1
done
if [ -z "$stream_addr" ]; then
    echo "vpd serve did not start:"
    cat "$stream_log"
    kill "$stream_pid" 2>/dev/null
    fail=1
else
    ./target/release/vpd call --addr "$stream_addr" \
        --request '{"id":1,"kind":"transient_stream","params":{"arch":"a2","chunk":2000}}' \
        >"$stream_out" || fail=1
    ./target/release/vpd call --addr "$stream_addr" --shutdown >/dev/null || fail=1
    wait "$stream_pid" || fail=1
    python3 - "$stream_out" <<'EOF' || fail=1
import json, sys

with open(sys.argv[1]) as f:
    records = [json.loads(line) for line in f if line.strip()]
chunks = [r for r in records if r.get("done") is False]
finals = [r for r in records if r.get("done") is True]
assert len(finals) == 1, f"expected 1 summary record, got {len(finals)}"
assert [r["seq"] for r in records] == list(range(len(records))), records
assert sum(r["result"]["samples"] for r in chunks) == 6001, chunks
summary = finals[0]["result"]
assert summary["samples"] == 6001, summary
assert summary["chunks"] == len(chunks), summary
assert "report" in summary, summary
print(f"transient_stream smoke OK: {len(chunks)} ordered chunks + summary, 6001 samples")
EOF
fi

step "CLI smoke: serve saturation + load shedding over loopback"
shed_log="target/tier1-shed.log"
shed_out="target/tier1-shed.ndjson"
rm -f "$shed_out"
./target/release/vpd serve --addr 127.0.0.1:0 --workers 1 --queue-depth 2 \
    2>"$shed_log" &
shed_pid=$!
shed_addr=""
for _ in $(seq 1 100); do
    shed_addr=$(sed -n 's/^vpd serve: listening on //p' "$shed_log")
    [ -n "$shed_addr" ] && break
    sleep 0.1
done
if [ -z "$shed_addr" ]; then
    echo "vpd serve did not start:"
    cat "$shed_log"
    kill "$shed_pid" 2>/dev/null
    fail=1
else
    # Warm the admission estimate, then flood a depth-2 queue with
    # doomed one-millisecond deadlines from many concurrent clients.
    ./target/release/vpd call --addr "$shed_addr" \
        --request '{"id":0,"kind":"sharing","params":{"modules":48}}' >/dev/null || fail=1
    shed_args=()
    for i in $(seq 1 16); do
        shed_args+=(--request "{\"id\":$i,\"kind\":\"sharing\",\"params\":{\"modules\":48},\"deadline_ms\":1}")
    done
    ./target/release/vpd call --addr "$shed_addr" "${shed_args[@]}" \
        >"$shed_out" || fail=1
    ./target/release/vpd call --addr "$shed_addr" --shutdown >/dev/null || fail=1
    wait "$shed_pid" || fail=1
    python3 - "$shed_out" <<'EOF' || fail=1
import json, sys

with open(sys.argv[1]) as f:
    responses = [json.loads(line) for line in f if line.strip()]
assert len(responses) == 16, f"overload dropped responses: got {len(responses)}"
typed = {"queue_full", "shed", "deadline_exceeded"}
rejects = 0
for r in responses:
    assert r["version"] == 2, r
    if not r["ok"]:
        code = r["error"]["code"]
        assert code in typed, f"untyped overload reject: {r}"
        rejects += 1
assert rejects > 0, "a depth-2 queue flooded with 1 ms deadlines must reject some"
print(f"shed smoke OK: 16/16 answered, {rejects} typed rejects, all well-formed NDJSON")
EOF
fi

step "CLI smoke: vpd scenario check over the checked-in corpus"
for doc in scenarios/*.vpd; do
    ./target/release/vpd scenario check --file "$doc" >/dev/null || {
        echo "vpd scenario check rejected builtin $doc"
        fail=1
    }
done
for doc in scenarios/bad/*.vpd; do
    code=$(basename "$doc" .vpd)
    err=$(./target/release/vpd scenario check --file "$doc" 2>&1 >/dev/null) && {
        echo "vpd scenario check accepted malformed $doc"
        fail=1
    }
    case "$err" in
        *"error[$code] at "*) ;;
        *)
            echo "$doc: expected stable code error[$code], got: $err"
            fail=1
            ;;
    esac
done
echo "scenario corpus OK: $(ls scenarios/*.vpd | wc -l) accepted, $(ls scenarios/bad/*.vpd | wc -l) rejected with named codes"

step "CLI smoke: vpd scenario run matches vpd analyze (document vs hardcoded)"
./target/release/vpd scenario run --name a2 --format json >target/tier1-scenario.json || fail=1
python3 - target/tier1-scenario.json <<'EOF' || fail=1
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["command"] == "scenario", doc
assert doc["name"] == "a2" and doc["architecture"] == "A2", doc
assert len(doc["hash"]) == 16, doc
eff = doc["breakdown"]["efficiency"]
assert 0.8 < eff < 1.0, f"implausible A2 efficiency {eff}"
print(f"scenario run OK: a2 hash {doc['hash']}, efficiency {eff:.4f}")
EOF

step "scenario bench smoke (parse/compile throughput, served cold vs cached bitwise)"
cargo run --release -p vpd-bench --bin scenario -- --smoke || fail=1

step "BENCH_scenario.json audit (cached >= 3x cold, bitwise + hash-sharing flags)"
python3 - BENCH_scenario.json <<'EOF' || fail=1
import json, sys

with open(sys.argv[1]) as f:
    s = json.load(f)["scenario"]
for key in ("parse_docs_per_sec", "compile_docs_per_sec", "render_docs_per_sec"):
    assert s[key] > 0, f"{key} not positive: {s[key]}"
speedup = s["cold_vs_cached_speedup"]
assert speedup >= 3.0, f"served scenario cache speedup {speedup} < 3x"
assert s["cached_matches_cold_bitwise"] is True, s
assert s["respelled_doc_shares_cache"] is True, s
print(
    f"BENCH_scenario OK: {s['parse_docs_per_sec']:.0f} docs/s parse, "
    f"cached {speedup:.2f}x cold, bitwise, respelling shares cache"
)
EOF

step "cargo clippy --release -- -D warnings"
cargo clippy --release --workspace --all-targets -- -D warnings || fail=1

step "cargo fmt --check"
cargo fmt --all --check || fail=1

echo
if [ "$fail" -ne 0 ]; then
    echo "tier1: FAILED"
    exit 1
fi
echo "tier1: OK"
