//! `vpd` — command-line front end for the vertical-power-delivery
//! models.
//!
//! ```sh
//! vpd analyze --arch a1 --topology dsch --power 1000
//! vpd matrix
//! vpd recommend
//! vpd sharing --placement below --modules 48
//! vpd impedance --arch a2
//! vpd droop --arch a0
//! vpd thermal --arch a2 --tech si
//! vpd faults --arch a2 --n-minus-1
//! ```

use std::process::ExitCode;
use vertical_power_delivery::core::{
    electro_thermal, explore_matrix, recommend, simulate_droop, solve_sharing, target_impedance,
    ElectroThermalSettings, FaultScenario, FaultSweep, LoadStep, PdnModel,
};
use vertical_power_delivery::prelude::*;
use vertical_power_delivery::thermal::DeviceTechnology;
use vpd_units::Seconds;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Command::parse(&args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: vpd <command> [options]

commands:
  analyze     --arch <a0|a1|a2|a3-12|a3-6> [--topology <dpmih|dsch|3lhd>]
              [--power <watts>] [--density <A/mm2>]
  matrix      full architecture x topology loss table
  recommend   designer ranking (no overload extrapolation)
  sharing     --placement <periphery|below> [--modules <n>]
  impedance   --arch <a0|a1|a2>
  droop       --arch <a0|a1|a2>
  thermal     --arch <a1|a2> [--tech <si|gan>]
  faults      --arch <a0|a1|a2|a3-12|a3-6> [--topology <dpmih|dsch|3lhd>]
              [--n-minus-1 | --random-k <k>] [--count <n>] [--seed <s>]
  help        print this message";

/// A parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
enum Command {
    Analyze {
        arch: Architecture,
        topology: VrTopologyKind,
        power_w: f64,
        density: f64,
    },
    Matrix,
    Recommend,
    Sharing {
        placement: VrPlacement,
        modules: usize,
    },
    Impedance {
        arch: Architecture,
    },
    Droop {
        arch: Architecture,
    },
    Thermal {
        arch: Architecture,
        tech: DeviceTechnology,
    },
    Faults {
        arch: Architecture,
        topology: VrTopologyKind,
        /// None = N-1 contingency; Some(k) = random scenarios of k
        /// simultaneous faults.
        random_k: Option<usize>,
        count: usize,
        seed: u64,
    },
    Help,
}

impl Command {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut it = args.iter();
        let cmd = it.next().ok_or("missing command")?;
        let rest: Vec<&String> = it.collect();
        let flag = |name: &str| -> Option<&str> {
            rest.iter()
                .position(|a| a.as_str() == name)
                .and_then(|i| rest.get(i + 1))
                .map(|s| s.as_str())
        };
        let parse_arch = |required: bool| -> Result<Architecture, String> {
            match flag("--arch") {
                Some("a0") => Ok(Architecture::Reference),
                Some("a1") => Ok(Architecture::InterposerPeriphery),
                Some("a2") => Ok(Architecture::InterposerEmbedded),
                Some("a3-12") => Ok(Architecture::TwoStage {
                    bus: Volts::new(12.0),
                }),
                Some("a3-6") => Ok(Architecture::TwoStage {
                    bus: Volts::new(6.0),
                }),
                Some(other) => Err(format!("unknown architecture '{other}'")),
                None if required => Err("--arch is required".into()),
                None => Ok(Architecture::InterposerPeriphery),
            }
        };
        let parse_topology = || -> Result<VrTopologyKind, String> {
            match flag("--topology") {
                Some("dpmih") => Ok(VrTopologyKind::Dpmih),
                Some("dsch") | None => Ok(VrTopologyKind::Dsch),
                Some("3lhd") => Ok(VrTopologyKind::ThreeLevelHybridDickson),
                Some(other) => Err(format!("unknown topology '{other}'")),
            }
        };
        let parse_f64 = |name: &str, default: f64| -> Result<f64, String> {
            match flag(name) {
                Some(v) => v
                    .parse::<f64>()
                    .map_err(|_| format!("{name} expects a number, got '{v}'")),
                None => Ok(default),
            }
        };
        match cmd.as_str() {
            "analyze" => Ok(Self::Analyze {
                arch: parse_arch(true)?,
                topology: parse_topology()?,
                power_w: parse_f64("--power", 1000.0)?,
                density: parse_f64("--density", 2.0)?,
            }),
            "matrix" => Ok(Self::Matrix),
            "recommend" => Ok(Self::Recommend),
            "sharing" => {
                let placement = match flag("--placement") {
                    Some("periphery") | None => VrPlacement::Periphery,
                    Some("below") => VrPlacement::BelowDie,
                    Some(other) => return Err(format!("unknown placement '{other}'")),
                };
                let modules = parse_f64("--modules", 48.0)? as usize;
                Ok(Self::Sharing { placement, modules })
            }
            "impedance" => Ok(Self::Impedance {
                arch: parse_arch(true)?,
            }),
            "droop" => Ok(Self::Droop {
                arch: parse_arch(true)?,
            }),
            "thermal" => {
                let tech = match flag("--tech") {
                    Some("si") => DeviceTechnology::Si,
                    Some("gan") | None => DeviceTechnology::GaN,
                    Some(other) => return Err(format!("unknown technology '{other}'")),
                };
                Ok(Self::Thermal {
                    arch: parse_arch(true)?,
                    tech,
                })
            }
            "faults" => {
                let n_minus_1 = rest.iter().any(|a| a.as_str() == "--n-minus-1");
                let random_k = match flag("--random-k") {
                    Some(v) => Some(
                        v.parse::<usize>()
                            .map_err(|_| format!("--random-k expects a count, got '{v}'"))?,
                    ),
                    None => None,
                };
                if n_minus_1 && random_k.is_some() {
                    return Err("--n-minus-1 and --random-k are mutually exclusive".into());
                }
                if random_k == Some(0) {
                    return Err("--random-k must be at least 1".into());
                }
                Ok(Self::Faults {
                    arch: parse_arch(true)?,
                    topology: parse_topology()?,
                    random_k,
                    count: parse_f64("--count", 32.0)? as usize,
                    seed: parse_f64("--seed", 64023.0)? as u64,
                })
            }
            "help" | "--help" | "-h" => Ok(Self::Help),
            other => Err(format!("unknown command '{other}'")),
        }
    }
}

fn run(cmd: Command) -> Result<(), Box<dyn std::error::Error>> {
    let calib = Calibration::paper_default();
    match cmd {
        Command::Help => println!("{USAGE}"),
        Command::Analyze {
            arch,
            topology,
            power_w,
            density,
        } => {
            let spec = SystemSpec::new(
                Volts::new(48.0),
                Volts::new(1.0),
                Watts::new(power_w),
                CurrentDensity::from_amps_per_square_millimeter(density),
            )?;
            let report = analyze(arch, topology, &spec, &calib, &AnalysisOptions::default())?;
            println!(
                "{} / {} at {:.0} W, {:.1} A/mm² (die {:.0} mm²)",
                arch.name(),
                topology,
                power_w,
                density,
                spec.die_area().as_square_millimeters()
            );
            for s in report.breakdown.segments() {
                println!(
                    "  {:<28} {:>9.2} W ({:>5.2}%)",
                    s.name,
                    s.power.value(),
                    report.breakdown.percent_of_pol_power(s.power)
                );
            }
            println!(
                "  total {:.1}% of POL power — efficiency {}",
                report.loss_percent(),
                report.breakdown.end_to_end_efficiency()
            );
        }
        Command::Matrix => {
            let spec = SystemSpec::paper_default();
            for e in explore_matrix(
                &VrTopologyKind::ALL,
                &spec,
                &calib,
                &AnalysisOptions::default(),
            ) {
                match e.outcome {
                    Ok(r) => println!(
                        "{:<8} {:<6} {:>5.1}%{}",
                        e.architecture.name(),
                        e.topology.name(),
                        r.loss_percent(),
                        if r.overloaded { "  [extrapolated]" } else { "" }
                    ),
                    Err(err) => println!(
                        "{:<8} {:<6} excluded: {err}",
                        e.architecture.name(),
                        e.topology.name()
                    ),
                }
            }
        }
        Command::Recommend => {
            let rec = recommend(&SystemSpec::paper_default(), &calib);
            for (i, c) in rec.ranked.iter().enumerate() {
                println!("#{}: {}", i + 1, c.rationale);
            }
            for (a, t, e) in &rec.rejected {
                println!("rejected {}/{t}: {e}", a.name());
            }
        }
        Command::Sharing { placement, modules } => {
            let rep = solve_sharing(&SystemSpec::paper_default(), &calib, placement, modules)?;
            println!(
                "{modules} modules {placement}: {:.1} – {:.1} A (mean {:.1} A), grid loss {}, worst drop {}",
                rep.min().value(),
                rep.max().value(),
                rep.mean().value(),
                rep.grid_loss(),
                rep.worst_drop()
            );
        }
        Command::Impedance { arch } => {
            let model = PdnModel::for_architecture(arch);
            let zt = target_impedance(&SystemSpec::paper_default(), 0.05, 0.25);
            let peak = model.peak_impedance()?;
            println!(
                "{}: peak |Z| = {} vs target {} → {}",
                arch.name(),
                peak,
                zt,
                if peak.value() <= zt.value() {
                    "meets target"
                } else {
                    "violates target"
                }
            );
        }
        Command::Droop { arch } => {
            let spec = SystemSpec::paper_default();
            let report = simulate_droop(
                &PdnModel::for_architecture(arch),
                &LoadStep::paper_default(&spec),
                Seconds::from_microseconds(60.0),
                Seconds::from_nanoseconds(10.0),
            )?;
            println!(
                "{}: 250 A → 1 kA step drops the rail by {} (bound ΔI·|Z|max = {})",
                arch.name(),
                report.droop,
                report.impedance_bound
            );
        }
        Command::Thermal { arch, tech } => {
            let settings = ElectroThermalSettings {
                technology: tech,
                ..ElectroThermalSettings::default()
            };
            let r = electro_thermal(
                arch,
                VrTopologyKind::Dsch,
                &SystemSpec::paper_default(),
                &calib,
                &AnalysisOptions::default(),
                &settings,
            )?;
            println!(
                "{} ({tech:?}): worst module {:.0} °C, VR loss {:.0} W → {:.0} W (+{:.1} W), within rating: {}",
                arch.name(),
                r.worst_module_temperature.value(),
                r.nominal_conversion_loss.value(),
                r.derated_conversion_loss.value(),
                r.thermal_penalty().value(),
                r.modules_within_rating
            );
        }
        Command::Faults {
            arch,
            topology,
            random_k,
            count,
            seed,
        } => {
            let sweep = FaultSweep::new(arch, topology, &SystemSpec::paper_default(), &calib)?;
            let scenarios = match random_k {
                None => FaultScenario::n_minus_1(sweep.vr_count()),
                Some(k) => {
                    FaultScenario::random_k(k, count, seed, sweep.vr_count(), sweep.grid_side())
                }
            };
            let label = match random_k {
                None => format!("N-1 over {} modules", sweep.vr_count()),
                Some(k) => format!("{count} random {k}-fault scenarios (seed {seed})"),
            };
            let report = sweep.run(&scenarios, 0)?;
            println!(
                "{} / {topology}: {label}\n  nominal:  worst drop {}, spread {:.2}x",
                arch.name(),
                sweep.nominal().worst_drop(),
                sweep.nominal().max().value() / sweep.nominal().mean().value(),
            );
            println!(
                "  faulted:  worst drop {} ({}), max spread {:.2}x, worst surviving module {:.1} A",
                report.worst_drop,
                report.worst_scenario,
                report.max_spread,
                report.worst_surviving_current.value(),
            );
            match (report.rating, report.margin()) {
                (Some(rating), Some(margin)) => println!(
                    "  rating:   {:.0} A per module → margin {:+.1}% ({} / {} scenarios overloaded)",
                    rating.value(),
                    100.0 * margin,
                    report.overloaded_scenarios,
                    report.outcomes.len(),
                ),
                _ => println!("  rating:   n/a (passive entry clusters)"),
            }
            println!(
                "  solver:   {} / {} scenarios needed a fallback, {} stagnated",
                report.fallback_count,
                report.outcomes.len(),
                report.stagnation_count,
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, String> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        Command::parse(&owned)
    }

    #[test]
    fn parses_analyze_with_defaults() {
        let cmd = parse(&["analyze", "--arch", "a1"]).unwrap();
        match cmd {
            Command::Analyze {
                arch,
                topology,
                power_w,
                density,
            } => {
                assert_eq!(arch.name(), "A1");
                assert_eq!(topology, VrTopologyKind::Dsch);
                assert_eq!(power_w, 1000.0);
                assert_eq!(density, 2.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_two_stage_buses() {
        assert!(matches!(
            parse(&["analyze", "--arch", "a3-12"]).unwrap(),
            Command::Analyze {
                arch: Architecture::TwoStage { .. },
                ..
            }
        ));
        assert!(matches!(
            parse(&["droop", "--arch", "a0"]).unwrap(),
            Command::Droop {
                arch: Architecture::Reference
            }
        ));
    }

    #[test]
    fn rejects_unknown_inputs() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["analyze", "--arch", "a9"]).is_err());
        assert!(parse(&["analyze", "--arch", "a1", "--topology", "zeta"]).is_err());
        assert!(parse(&["analyze", "--arch", "a1", "--power", "lots"]).is_err());
        assert!(parse(&["analyze"]).is_err(), "--arch required");
        assert!(parse(&["sharing", "--placement", "sideways"]).is_err());
        assert!(parse(&["thermal", "--arch", "a2", "--tech", "sic"]).is_err());
    }

    #[test]
    fn parses_sharing_and_thermal() {
        assert_eq!(
            parse(&["sharing", "--placement", "below", "--modules", "24"]).unwrap(),
            Command::Sharing {
                placement: VrPlacement::BelowDie,
                modules: 24
            }
        );
        assert!(matches!(
            parse(&["thermal", "--arch", "a2", "--tech", "si"]).unwrap(),
            Command::Thermal {
                tech: DeviceTechnology::Si,
                ..
            }
        ));
    }

    #[test]
    fn parses_faults_modes() {
        assert!(matches!(
            parse(&["faults", "--arch", "a2", "--n-minus-1"]).unwrap(),
            Command::Faults {
                arch: Architecture::InterposerEmbedded,
                random_k: None,
                ..
            }
        ));
        // N-1 is also the default mode.
        assert!(matches!(
            parse(&["faults", "--arch", "a1"]).unwrap(),
            Command::Faults { random_k: None, .. }
        ));
        match parse(&[
            "faults",
            "--arch",
            "a1",
            "--random-k",
            "3",
            "--count",
            "64",
            "--seed",
            "7",
        ])
        .unwrap()
        {
            Command::Faults {
                random_k,
                count,
                seed,
                ..
            } => {
                assert_eq!(random_k, Some(3));
                assert_eq!(count, 64);
                assert_eq!(seed, 7);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["faults"]).is_err(), "--arch required");
        assert!(parse(&["faults", "--arch", "a1", "--random-k", "three"]).is_err());
        assert!(parse(&["faults", "--arch", "a1", "--random-k", "0"]).is_err());
        assert!(parse(&["faults", "--arch", "a1", "--n-minus-1", "--random-k", "2"]).is_err());
    }

    #[test]
    fn help_variants() {
        for h in ["help", "--help", "-h"] {
            assert_eq!(parse(&[h]).unwrap(), Command::Help);
        }
    }
}
