//! `vpd` — command-line front end for the vertical-power-delivery
//! models.
//!
//! ```sh
//! vpd analyze --arch a1 --topology dsch --power 1000
//! vpd matrix
//! vpd recommend
//! vpd sharing --placement below --modules 48
//! vpd mc --arch a2 --samples 200
//! vpd impedance --arch a2
//! vpd droop --arch a0
//! vpd thermal --arch a2 --tech si
//! vpd faults --arch a2 --n-minus-1
//! vpd --format json --metrics metrics.ndjson mc --arch a1
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use vertical_power_delivery::core::{
    compare_architectures, compare_droop_architectures, electro_thermal, explore_matrix, recommend,
    run_tolerance, simulate_droop, solve_sharing, survival_envelope, CascadeSettings, DroopSweep,
    DroopSweepSettings, ElectroThermalSettings, FaultImpedanceSweep, FaultScenario, FaultSweep,
    FaultTransientSweep, ImpedanceSweep, ImpedanceSweepSettings, LoadStep, McSettings, PdnModel,
    VrFailureScenario,
};
use vertical_power_delivery::obs;
use vertical_power_delivery::prelude::*;
use vertical_power_delivery::report::Json;
use vertical_power_delivery::scenario::ScenarioDoc;
use vertical_power_delivery::serve::proto::{
    parse_architecture, parse_topology, wire_default_count, wire_default_f64, wire_default_seed,
};
use vertical_power_delivery::serve::{
    self, ServeConfig, FAULT_TRANSIENT_DT_NS, FAULT_TRANSIENT_SIM_US, FAULT_TRANSIENT_WINDOW_US,
};
use vertical_power_delivery::thermal::DeviceTechnology;
use vpd_units::Seconds;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let invocation = match Invocation::parse(&args) {
        Ok(inv) => inv,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if invocation.metrics.is_some() {
        obs::set_enabled(true);
    }
    let label = invocation.command.label();
    let outcome = run(invocation.command, invocation.format);
    if let Some(path) = &invocation.metrics {
        let snapshot = obs::snapshot();
        if let Err(e) = obs::append_ndjson(path, label, &snapshot) {
            eprintln!(
                "warning: could not write metrics to {}: {e}",
                path.display()
            );
        }
    }
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: vpd [--format <text|json>] [--metrics <path>] <command> [options]

global options:
  --format <text|json>  output format (default: text)
  --metrics <path>      record solver metrics and append one NDJSON
                        snapshot line per invocation to <path>

commands:
  analyze     --arch <a0|a1|a2|a3-12|a3-6> [--topology <dpmih|dsch|3lhd>]
              [--power <watts>] [--density <A/mm2>]
  matrix      full architecture x topology loss table
  recommend   designer ranking (no overload extrapolation)
  sharing     [--placement <periphery|below>] [--modules <n>]
  mc          --arch <a0|a1|a2|a3-12|a3-6> [--topology <dpmih|dsch|3lhd>]
              [--samples <n>] [--seed <s>] [--threads <n>]
  impedance   --arch <a0|a1|a2|a3-12|a3-6|all> [--fmin <hz>] [--fmax <hz>]
              [--points <n>] [--profile]
              (defaults: 200 points, 1 kHz – 1 GHz; --arch all compares
              A0/A1/A2 on one grid; --profile prints every swept point)
  droop       --arch <a0|a1|a2|a3-12|a3-6|all> [--sweep] [--amps <n>]
              [--slews <n>] [--threads <n>]
              (--sweep runs a load-step amplitude x slew-rate grid
              through one compiled transient plan; --arch all compares
              A0/A1/A2 sweeps and requires --sweep)
  thermal     --arch <a1|a2> [--tech <si|gan>]
  faults      --arch <a0|a1|a2|a3-12|a3-6> [--topology <dpmih|dsch|3lhd>]
              [--n-minus-1 | --random-k <k>] [--count <n>] [--seed <s>]
              [--dynamic]
              (--dynamic runs the fault power-integrity triad instead
              of the static drop sweep: faulted impedance profiles,
              mid-run VR-failure transients, and the electro-thermal
              cascade survival envelope; requires a vertical
              architecture for the cascade stage)
  serve       [--addr <host:port>] [--workers <n>] [--queue-depth <n>]
              [--cache-size <n>] [--max-batch <n>] [--stdio]
              NDJSON analysis service: multiplexed connections, a
              per-worker sharded compiled-plan cache, batched block
              solves (--max-batch 1 disables), and deadline-aware load
              shedding (default addr 127.0.0.1:7171; --stdio serves one
              session on stdin/stdout instead of TCP)
  call        [--addr <host:port>] --request '<json>' [--request ...]
              [--shutdown]
              send request lines to a running server, print one
              response line each; fails fast on a protocol-version
              mismatch; --shutdown drains the server after
  scenario    <check|render|run> (--file <path> | --name <a0|a1|a2|a3-12|a3-6>)
              declarative .vpd scenario documents: `check` validates
              (stable error[code] at line:col diagnostics), `render`
              prints the canonical text (the content-hash input), `run`
              compiles and analyzes — `--format json` output is
              byte-identical to the served `scenario` request
  help        print this message";

/// A full CLI invocation: global flags plus the subcommand.
#[derive(Clone, Debug, PartialEq)]
struct Invocation {
    command: Command,
    format: RenderFormat,
    metrics: Option<PathBuf>,
}

impl Invocation {
    /// Extracts the global `--format` / `--metrics` flags (accepted
    /// anywhere on the line) and parses the rest as a [`Command`].
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut format = RenderFormat::Text;
        let mut metrics = None;
        let mut rest = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--format" => {
                    let v = it.next().ok_or("--format expects text|json")?;
                    format = v.parse()?;
                }
                "--metrics" => {
                    let v = it.next().ok_or("--metrics expects a file path")?;
                    metrics = Some(PathBuf::from(v));
                }
                _ => rest.push(arg.clone()),
            }
        }
        Ok(Self {
            command: Command::parse(&rest)?,
            format,
            metrics,
        })
    }
}

/// A parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
enum Command {
    Analyze {
        arch: Architecture,
        topology: VrTopologyKind,
        power_w: f64,
        density: f64,
    },
    Matrix,
    Recommend,
    Sharing {
        placement: VrPlacement,
        modules: usize,
    },
    Mc {
        arch: Architecture,
        topology: VrTopologyKind,
        samples: usize,
        seed: u64,
        threads: usize,
    },
    Impedance {
        /// None = compare all single-stage architectures on one grid.
        arch: Option<Architecture>,
        fmin_hz: f64,
        fmax_hz: f64,
        points: usize,
        profile: bool,
    },
    Droop {
        /// None = compare A0/A1/A2 sweeps (only valid with `--sweep`).
        arch: Option<Architecture>,
        sweep: bool,
        amps: usize,
        slews: usize,
        threads: usize,
    },
    Thermal {
        arch: Architecture,
        tech: DeviceTechnology,
    },
    Faults {
        arch: Architecture,
        topology: VrTopologyKind,
        /// None = N-1 contingency; Some(k) = random scenarios of k
        /// simultaneous faults.
        random_k: Option<usize>,
        count: usize,
        seed: u64,
        /// Run the dynamic triad (faulted impedance, VR-failure
        /// transients, cascade survival) instead of the static sweep.
        dynamic: bool,
    },
    Serve {
        addr: String,
        workers: usize,
        queue_depth: usize,
        cache_size: usize,
        max_batch: usize,
        stdio: bool,
    },
    Call {
        addr: String,
        requests: Vec<String>,
        shutdown: bool,
    },
    Scenario {
        action: ScenarioAction,
        /// Path to a `.vpd` document on disk.
        file: Option<PathBuf>,
        /// Builtin scenario name (`a0`…`a3-6`).
        name: Option<String>,
    },
    Help,
}

/// What `vpd scenario` should do with the document.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ScenarioAction {
    /// Parse and validate only; report the stable diagnostic on failure.
    Check,
    /// Print the canonical rendering (the content-hash input).
    Render,
    /// Compile and analyze through the serve dispatcher, so `--format
    /// json` output is byte-identical to the served `scenario` result.
    Run,
}

impl Command {
    /// The subcommand label: the metrics snapshot tag and the
    /// `"command"` field of every JSON document this subcommand emits.
    fn label(&self) -> &'static str {
        match self {
            Self::Analyze { .. } => "analyze",
            Self::Matrix => "matrix",
            Self::Recommend => "recommend",
            Self::Sharing { .. } => "sharing",
            Self::Mc { .. } => "mc",
            Self::Impedance { .. } => "impedance",
            Self::Droop { .. } => "droop",
            Self::Thermal { .. } => "thermal",
            Self::Faults { .. } => "faults",
            Self::Serve { .. } => "serve",
            Self::Call { .. } => "call",
            Self::Scenario { .. } => "scenario",
            Self::Help => "help",
        }
    }

    fn parse(args: &[String]) -> Result<Self, String> {
        let mut it = args.iter();
        let cmd = it.next().ok_or("missing command")?;
        let rest: Vec<&String> = it.collect();
        let flag = |name: &str| -> Option<&str> {
            rest.iter()
                .position(|a| a.as_str() == name)
                .and_then(|i| rest.get(i + 1))
                .map(|s| s.as_str())
        };
        // Architecture/topology spellings are shared with the serve
        // protocol, so the CLI and the wire accept the same tags.
        let parse_arch = |required: bool| -> Result<Architecture, String> {
            match flag("--arch") {
                Some(s) => {
                    parse_architecture(s).ok_or_else(|| format!("unknown architecture '{s}'"))
                }
                None if required => Err("--arch is required".into()),
                None => Ok(Architecture::InterposerPeriphery),
            }
        };
        let parse_topo = || -> Result<VrTopologyKind, String> {
            match flag("--topology") {
                Some(s) => parse_topology(s).ok_or_else(|| format!("unknown topology '{s}'")),
                None => Ok(VrTopologyKind::Dsch),
            }
        };
        let parse_f64 = |name: &str, default: f64| -> Result<f64, String> {
            match flag(name) {
                Some(v) => v
                    .parse::<f64>()
                    .map_err(|_| format!("{name} expects a number, got '{v}'")),
                None => Ok(default),
            }
        };
        match cmd.as_str() {
            "analyze" => Ok(Self::Analyze {
                arch: parse_arch(true)?,
                topology: parse_topo()?,
                power_w: parse_f64("--power", wire_default_f64("analyze", "power_w"))?,
                density: parse_f64("--density", wire_default_f64("analyze", "density"))?,
            }),
            "matrix" => Ok(Self::Matrix),
            "recommend" => Ok(Self::Recommend),
            "sharing" => {
                let placement = match flag("--placement") {
                    Some("periphery") | None => VrPlacement::Periphery,
                    Some("below") => VrPlacement::BelowDie,
                    Some(other) => return Err(format!("unknown placement '{other}'")),
                };
                let modules =
                    parse_f64("--modules", wire_default_count("sharing", "modules") as f64)?
                        as usize;
                Ok(Self::Sharing { placement, modules })
            }
            "mc" => {
                let samples =
                    parse_f64("--samples", wire_default_count("mc", "samples") as f64)? as usize;
                if samples == 0 {
                    return Err("--samples must be at least 1".into());
                }
                Ok(Self::Mc {
                    arch: parse_arch(true)?,
                    topology: parse_topo()?,
                    samples,
                    seed: parse_f64("--seed", wire_default_seed("mc", "seed") as f64)? as u64,
                    threads: parse_f64("--threads", 0.0)? as usize,
                })
            }
            "impedance" => {
                let arch = match flag("--arch") {
                    Some("all") => None,
                    _ => Some(parse_arch(true)?),
                };
                // Bounds and point counts are validated downstream by
                // the checked sweep builder, so every bad value becomes
                // a typed error instead of a panic. Defaults come from
                // the wire field-spec table (which itself reads
                // `ImpedanceSweepSettings::default()`), so the CLI and
                // the protocol cannot drift apart.
                Ok(Self::Impedance {
                    arch,
                    fmin_hz: parse_f64("--fmin", wire_default_f64("impedance", "fmin_hz"))?,
                    fmax_hz: parse_f64("--fmax", wire_default_f64("impedance", "fmax_hz"))?,
                    points: parse_f64("--points", wire_default_count("impedance", "points") as f64)?
                        as usize,
                    profile: rest.iter().any(|a| a.as_str() == "--profile"),
                })
            }
            "droop" => {
                let sweep = rest.iter().any(|a| a.as_str() == "--sweep");
                let arch = match flag("--arch") {
                    Some("all") => {
                        if !sweep {
                            return Err("droop --arch all requires --sweep".into());
                        }
                        None
                    }
                    _ => Some(parse_arch(true)?),
                };
                Ok(Self::Droop {
                    arch,
                    sweep,
                    amps: parse_f64("--amps", 4.0)? as usize,
                    slews: parse_f64("--slews", 3.0)? as usize,
                    threads: parse_f64("--threads", 0.0)? as usize,
                })
            }
            "thermal" => {
                let tech = match flag("--tech") {
                    Some("si") => DeviceTechnology::Si,
                    Some("gan") | None => DeviceTechnology::GaN,
                    Some(other) => return Err(format!("unknown technology '{other}'")),
                };
                Ok(Self::Thermal {
                    arch: parse_arch(true)?,
                    tech,
                })
            }
            "faults" => {
                let n_minus_1 = rest.iter().any(|a| a.as_str() == "--n-minus-1");
                let random_k = match flag("--random-k") {
                    Some(v) => Some(
                        v.parse::<usize>()
                            .map_err(|_| format!("--random-k expects a count, got '{v}'"))?,
                    ),
                    None => None,
                };
                if n_minus_1 && random_k.is_some() {
                    return Err("--n-minus-1 and --random-k are mutually exclusive".into());
                }
                if random_k == Some(0) {
                    return Err("--random-k must be at least 1".into());
                }
                Ok(Self::Faults {
                    arch: parse_arch(true)?,
                    topology: parse_topo()?,
                    random_k,
                    count: parse_f64("--count", wire_default_count("faults", "count") as f64)?
                        as usize,
                    seed: parse_f64("--seed", wire_default_seed("faults", "seed") as f64)? as u64,
                    dynamic: rest.iter().any(|a| a.as_str() == "--dynamic"),
                })
            }
            "serve" => {
                let defaults = ServeConfig::default();
                Ok(Self::Serve {
                    addr: flag("--addr").unwrap_or(DEFAULT_ADDR).to_owned(),
                    workers: parse_f64("--workers", defaults.workers as f64)? as usize,
                    queue_depth: parse_f64("--queue-depth", defaults.queue_depth as f64)? as usize,
                    cache_size: parse_f64("--cache-size", defaults.cache_capacity as f64)? as usize,
                    max_batch: parse_f64("--max-batch", defaults.max_batch as f64)? as usize,
                    stdio: rest.iter().any(|a| a.as_str() == "--stdio"),
                })
            }
            "call" => {
                // `--request` repeats; collect every occurrence in order.
                let mut requests = Vec::new();
                let mut i = 0;
                while i < rest.len() {
                    if rest[i].as_str() == "--request" {
                        let v = rest
                            .get(i + 1)
                            .ok_or("--request expects a JSON request line")?;
                        requests.push((*v).clone());
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let shutdown = rest.iter().any(|a| a.as_str() == "--shutdown");
                if requests.is_empty() && !shutdown {
                    return Err("call needs at least one --request (or --shutdown)".into());
                }
                Ok(Self::Call {
                    addr: flag("--addr").unwrap_or(DEFAULT_ADDR).to_owned(),
                    requests,
                    shutdown,
                })
            }
            "scenario" => {
                let action = match rest.first().map(|s| s.as_str()) {
                    Some("check") => ScenarioAction::Check,
                    Some("render") => ScenarioAction::Render,
                    Some("run") => ScenarioAction::Run,
                    Some(other) => {
                        return Err(format!(
                            "unknown scenario action '{other}' (expected check|render|run)"
                        ))
                    }
                    None => return Err("scenario needs an action (check|render|run)".into()),
                };
                let file = flag("--file").map(PathBuf::from);
                let name = flag("--name").map(str::to_owned);
                match (&file, &name) {
                    (Some(_), Some(_)) => {
                        return Err("--file and --name are mutually exclusive".into())
                    }
                    (None, None) => {
                        return Err("scenario needs --file <path> or --name <builtin>".into())
                    }
                    _ => {}
                }
                Ok(Self::Scenario { action, file, name })
            }
            "help" | "--help" | "-h" => Ok(Self::Help),
            other => Err(format!("unknown command '{other}'")),
        }
    }
}

/// The default service endpoint shared by `serve` and `call`.
const DEFAULT_ADDR: &str = "127.0.0.1:7171";

/// Prints one document: the text rendering, or the context-wrapped JSON.
fn emit(format: RenderFormat, text: impl FnOnce() -> String, json: impl FnOnce() -> Json) {
    match format {
        RenderFormat::Text => print!("{}", text()),
        RenderFormat::Json => println!("{}", json()),
    }
}

/// Builds the context-wrapped JSON document every subcommand emits: the
/// subcommand label under `"command"`, then the given pairs. One
/// assembly point instead of a per-arm `("command", ...)` block keeps
/// the label in lockstep with [`Command::label`] (and with the serve
/// protocol, whose `result` documents reproduce these bytes exactly).
fn command_json(
    label: &'static str,
    pairs: impl IntoIterator<Item = (&'static str, Json)>,
) -> Json {
    Json::Object(
        std::iter::once(("command".to_owned(), Json::from(label)))
            .chain(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)))
            .collect(),
    )
}

fn run(cmd: Command, format: RenderFormat) -> Result<(), Box<dyn std::error::Error>> {
    let calib = Calibration::paper_default();
    let label = cmd.label();
    match cmd {
        Command::Help => println!("{USAGE}"),
        Command::Analyze {
            arch,
            topology,
            power_w,
            density,
        } => {
            let spec = SystemSpec::new(
                Volts::new(48.0),
                Volts::new(1.0),
                Watts::new(power_w),
                CurrentDensity::from_amps_per_square_millimeter(density),
            )?;
            let report = analyze(arch, topology, &spec, &calib, &AnalysisOptions::default())?;
            emit(
                format,
                || {
                    format!(
                        "{} / {} at {:.0} W, {:.1} A/mm² (die {:.0} mm²)\n{}",
                        arch.name(),
                        topology,
                        power_w,
                        density,
                        spec.die_area().as_square_millimeters(),
                        report.breakdown.render_text(),
                    )
                },
                || {
                    command_json(
                        label,
                        [
                            ("architecture", Json::from(arch.name())),
                            ("topology", Json::from(topology.name())),
                            ("power_w", Json::from(power_w)),
                            ("density_a_per_mm2", Json::from(density)),
                            (
                                "die_area_mm2",
                                Json::from(spec.die_area().as_square_millimeters()),
                            ),
                            ("overloaded", Json::from(report.overloaded)),
                            ("breakdown", report.breakdown.render_json()),
                        ],
                    )
                },
            );
        }
        Command::Matrix => {
            let spec = SystemSpec::paper_default();
            let entries = explore_matrix(
                &VrTopologyKind::ALL,
                &spec,
                &calib,
                &AnalysisOptions::default(),
            );
            emit(
                format,
                || {
                    let mut out = String::new();
                    for e in &entries {
                        match &e.outcome {
                            Ok(r) => out.push_str(&format!(
                                "{:<8} {:<6} {:>5.1}%{}\n",
                                e.architecture.name(),
                                e.topology.name(),
                                r.loss_percent(),
                                if r.overloaded { "  [extrapolated]" } else { "" }
                            )),
                            Err(err) => out.push_str(&format!(
                                "{:<8} {:<6} excluded: {err}\n",
                                e.architecture.name(),
                                e.topology.name()
                            )),
                        }
                    }
                    out
                },
                || {
                    command_json(
                        label,
                        [(
                            "entries",
                            Json::array(entries.iter().map(|e| {
                                let mut pairs = vec![
                                    ("architecture".to_owned(), Json::from(e.architecture.name())),
                                    ("topology".to_owned(), Json::from(e.topology.name())),
                                ];
                                match &e.outcome {
                                    Ok(r) => {
                                        pairs.push((
                                            "loss_percent".to_owned(),
                                            Json::from(r.loss_percent()),
                                        ));
                                        pairs.push((
                                            "overloaded".to_owned(),
                                            Json::from(r.overloaded),
                                        ));
                                    }
                                    Err(err) => pairs
                                        .push(("excluded".to_owned(), Json::from(err.to_string()))),
                                }
                                Json::Object(pairs)
                            })),
                        )],
                    )
                },
            );
        }
        Command::Recommend => {
            let rec = recommend(&SystemSpec::paper_default(), &calib);
            emit(
                format,
                || {
                    let mut out = String::new();
                    for (i, c) in rec.ranked.iter().enumerate() {
                        out.push_str(&format!("#{}: {}\n", i + 1, c.rationale));
                    }
                    for (a, t, e) in &rec.rejected {
                        out.push_str(&format!("rejected {}/{t}: {e}\n", a.name()));
                    }
                    out
                },
                || {
                    command_json(
                        label,
                        [
                            (
                                "ranked",
                                Json::array(rec.ranked.iter().map(|c| {
                                    Json::obj([
                                        ("architecture", Json::from(c.architecture.name())),
                                        ("topology", Json::from(c.topology.name())),
                                        ("loss_percent", Json::from(c.report.loss_percent())),
                                        ("rationale", Json::from(c.rationale.as_str())),
                                    ])
                                })),
                            ),
                            (
                                "rejected",
                                Json::array(rec.rejected.iter().map(|(a, t, e)| {
                                    Json::obj([
                                        ("architecture", Json::from(a.name())),
                                        ("topology", Json::from(t.name())),
                                        ("error", Json::from(e.to_string())),
                                    ])
                                })),
                            ),
                        ],
                    )
                },
            );
        }
        Command::Sharing { placement, modules } => {
            let rep = solve_sharing(&SystemSpec::paper_default(), &calib, placement, modules)?;
            emit(
                format,
                || format!("{modules} modules {placement}: {}", rep.render_text()),
                || {
                    command_json(
                        label,
                        [
                            ("placement", Json::from(placement.to_string())),
                            ("report", rep.render_json()),
                        ],
                    )
                },
            );
        }
        Command::Mc {
            arch,
            topology,
            samples,
            seed,
            threads,
        } => {
            let settings = McSettings {
                samples,
                seed,
                threads,
                ..McSettings::default()
            };
            let summary = run_tolerance(
                arch,
                topology,
                &SystemSpec::paper_default(),
                &calib,
                &settings,
            )?;
            emit(
                format,
                || {
                    format!(
                        "{} / {topology}: {samples} samples (seed {seed}): {}",
                        arch.name(),
                        summary.render_text(),
                    )
                },
                || {
                    command_json(
                        label,
                        [
                            ("architecture", Json::from(arch.name())),
                            ("topology", Json::from(topology.name())),
                            ("samples", Json::from(samples)),
                            ("seed", Json::from(i64::try_from(seed).unwrap_or(i64::MAX))),
                            ("summary", summary.render_json()),
                        ],
                    )
                },
            );
        }
        Command::Impedance {
            arch,
            fmin_hz,
            fmax_hz,
            points,
            profile,
        } => {
            let spec = SystemSpec::paper_default();
            let settings = ImpedanceSweepSettings {
                fmin: Hertz::new(fmin_hz),
                fmax: Hertz::new(fmax_hz),
                points,
                threads: 0,
            };
            match arch {
                None => {
                    let cmp = compare_architectures(
                        &[
                            Architecture::Reference,
                            Architecture::InterposerPeriphery,
                            Architecture::InterposerEmbedded,
                        ],
                        &spec,
                        &settings,
                    )?;
                    emit(
                        format,
                        || {
                            format!(
                                "impedance comparison, {points} points {} – {}:\n{}",
                                Hertz::new(fmin_hz),
                                Hertz::new(fmax_hz),
                                cmp.render_text()
                            )
                        },
                        || {
                            command_json(
                                label,
                                [
                                    ("points", Json::from(points)),
                                    ("fmin_hz", Json::from(fmin_hz)),
                                    ("fmax_hz", Json::from(fmax_hz)),
                                    ("comparison", cmp.render_json()),
                                ],
                            )
                        },
                    );
                }
                Some(arch) => {
                    let rep = ImpedanceSweep::for_architecture(arch, &spec)?.run(&settings)?;
                    if profile {
                        emit(
                            format,
                            || rep.render_text(),
                            || command_json(label, [("report", rep.render_json())]),
                        );
                    } else {
                        emit(
                            format,
                            || {
                                format!(
                                    "{}: peak |Z| = {} at {} vs target {} → {}\n",
                                    rep.label,
                                    rep.peak,
                                    rep.peak_frequency,
                                    rep.target,
                                    if rep.meets_target() {
                                        "meets target"
                                    } else {
                                        "violates target"
                                    }
                                )
                            },
                            || {
                                command_json(
                                    label,
                                    [
                                        ("architecture", Json::from(rep.label.as_str())),
                                        ("points", Json::from(points)),
                                        ("peak_impedance_ohm", Json::from(rep.peak.value())),
                                        (
                                            "peak_frequency_hz",
                                            Json::from(rep.peak_frequency.value()),
                                        ),
                                        ("target_ohm", Json::from(rep.target.value())),
                                        ("margin", rep.margin().map_or(Json::Null, Json::from)),
                                        ("meets_target", Json::from(rep.meets_target())),
                                    ],
                                )
                            },
                        );
                    }
                }
            }
        }
        Command::Droop {
            arch,
            sweep,
            amps,
            slews,
            threads,
        } => {
            let spec = SystemSpec::paper_default();
            let sim = Seconds::from_microseconds(60.0);
            let dt = Seconds::from_nanoseconds(10.0);
            if sweep {
                let mut settings = DroopSweepSettings::paper_default(&spec, amps, slews)?;
                settings.threads = threads;
                match arch {
                    None => {
                        let cmp = compare_droop_architectures(
                            &[
                                Architecture::Reference,
                                Architecture::InterposerPeriphery,
                                Architecture::InterposerEmbedded,
                            ],
                            &spec,
                            sim,
                            dt,
                            &settings,
                        )?;
                        emit(
                            format,
                            || cmp.render_text(),
                            || {
                                command_json(
                                    label,
                                    [
                                        ("amps", Json::from(amps)),
                                        ("slews", Json::from(slews)),
                                        ("comparison", cmp.render_json()),
                                    ],
                                )
                            },
                        );
                    }
                    Some(arch) => {
                        let rep =
                            DroopSweep::for_architecture(arch, &spec, sim, dt)?.run(&settings)?;
                        emit(
                            format,
                            || rep.render_text(),
                            || {
                                command_json(
                                    label,
                                    [
                                        ("architecture", Json::from(arch.name())),
                                        ("amps", Json::from(amps)),
                                        ("slews", Json::from(slews)),
                                        ("report", rep.render_json()),
                                    ],
                                )
                            },
                        );
                    }
                }
            } else {
                let arch = arch.expect("parser requires an architecture without --sweep");
                let report = simulate_droop(
                    &PdnModel::for_architecture(arch),
                    &LoadStep::paper_default(&spec),
                    sim,
                    dt,
                )?;
                emit(
                    format,
                    || {
                        format!(
                            "{}: 250 A → 1 kA step: {}",
                            arch.name(),
                            report.render_text()
                        )
                    },
                    || {
                        command_json(
                            label,
                            [
                                ("architecture", Json::from(arch.name())),
                                ("report", report.render_json()),
                            ],
                        )
                    },
                );
            }
        }
        Command::Thermal { arch, tech } => {
            let settings = ElectroThermalSettings {
                technology: tech,
                ..ElectroThermalSettings::default()
            };
            let r = electro_thermal(
                arch,
                VrTopologyKind::Dsch,
                &SystemSpec::paper_default(),
                &calib,
                &AnalysisOptions::default(),
                &settings,
            )?;
            emit(
                format,
                || {
                    format!(
                        "{} ({tech:?}): worst module {:.0} °C, VR loss {:.0} W → {:.0} W (+{:.1} W), within rating: {}\n",
                        arch.name(),
                        r.worst_module_temperature.value(),
                        r.nominal_conversion_loss.value(),
                        r.derated_conversion_loss.value(),
                        r.thermal_penalty().value(),
                        r.modules_within_rating
                    )
                },
                || {
                    command_json(
                        label,
                        [
                            ("architecture", Json::from(arch.name())),
                            ("technology", Json::from(format!("{tech:?}"))),
                            (
                                "worst_module_temperature_c",
                                Json::from(r.worst_module_temperature.value()),
                            ),
                            (
                                "nominal_conversion_loss_w",
                                Json::from(r.nominal_conversion_loss.value()),
                            ),
                            (
                                "derated_conversion_loss_w",
                                Json::from(r.derated_conversion_loss.value()),
                            ),
                            ("thermal_penalty_w", Json::from(r.thermal_penalty().value())),
                            ("within_rating", Json::from(r.modules_within_rating)),
                        ],
                    )
                },
            );
        }
        Command::Faults {
            arch,
            topology,
            random_k,
            count,
            seed,
            dynamic: true,
        } => {
            // The dynamic triad reuses the serve protocol's wire
            // defaults and transient window constants, so the CLI and
            // the service evaluate identical grids.
            let spec = SystemSpec::paper_default();
            let zsweep = FaultImpedanceSweep::new(arch, &spec, &calib)?;
            let scenarios = match random_k {
                None => FaultScenario::n_minus_1(zsweep.vr_count()),
                Some(k) => {
                    FaultScenario::random_k(k, count, seed, zsweep.vr_count(), zsweep.grid_side())
                }
            };
            let mode_label = match random_k {
                None => format!("N-1 over {} modules", zsweep.vr_count()),
                Some(k) => format!("{count} random {k}-fault scenarios (seed {seed})"),
            };
            let freqs = ImpedanceSweepSettings {
                fmin: Hertz::new(wire_default_f64("fault_impedance", "fmin_hz")),
                fmax: Hertz::new(wire_default_f64("fault_impedance", "fmax_hz")),
                points: wire_default_count("fault_impedance", "points"),
                threads: 0,
            }
            .frequencies()?;
            let impedance = zsweep.run(&scenarios, &freqs, 0)?;

            let tsweep = FaultTransientSweep::new(
                arch,
                &PdnModel::for_architecture(arch),
                &LoadStep::paper_default(&spec),
                Seconds::from_microseconds(FAULT_TRANSIENT_SIM_US),
                Seconds::from_nanoseconds(FAULT_TRANSIENT_DT_NS),
            )?;
            let fails = VrFailureScenario::grid(
                wire_default_count("fault_transient", "count"),
                Seconds::from_microseconds(FAULT_TRANSIENT_WINDOW_US),
            );
            let transient = tsweep.run(&fails, 0)?;

            let envelope = survival_envelope(
                arch,
                topology,
                &spec,
                &calib,
                &CascadeSettings::default(),
                0,
            )?;
            emit(
                format,
                || {
                    format!(
                        "{} / {topology}: dynamic fault power-integrity ({mode_label})\n\
                         -- faulted impedance --\n{}\
                         -- VR-failure transients --\n{}\
                         -- electro-thermal cascade --\n{}",
                        arch.name(),
                        impedance.render_text(),
                        transient.render_text(),
                        envelope.render_text(),
                    )
                },
                || {
                    command_json(
                        label,
                        [
                            ("mode", Json::from("dynamic")),
                            ("scenarios", Json::from(mode_label.as_str())),
                            ("topology", Json::from(topology.name())),
                            ("impedance", impedance.render_json()),
                            ("transient", transient.render_json()),
                            ("survival", envelope.render_json()),
                        ],
                    )
                },
            );
        }
        Command::Faults {
            arch,
            topology,
            random_k,
            count,
            seed,
            dynamic: false,
        } => {
            let sweep = FaultSweep::new(arch, topology, &SystemSpec::paper_default(), &calib)?;
            let scenarios = match random_k {
                None => FaultScenario::n_minus_1(sweep.vr_count()),
                Some(k) => {
                    FaultScenario::random_k(k, count, seed, sweep.vr_count(), sweep.grid_side())
                }
            };
            let mode_label = match random_k {
                None => format!("N-1 over {} modules", sweep.vr_count()),
                Some(k) => format!("{count} random {k}-fault scenarios (seed {seed})"),
            };
            let report = sweep.run(&scenarios, 0)?;
            emit(
                format,
                || {
                    format!(
                        "{} / {topology}: {mode_label}\n  nominal:  worst drop {}, spread {:.2}x\n{}",
                        arch.name(),
                        sweep.nominal().worst_drop(),
                        sweep.nominal().max().value() / sweep.nominal().mean().value(),
                        report.render_text(),
                    )
                },
                || {
                    command_json(
                        label,
                        [
                            ("mode", Json::from(mode_label.as_str())),
                            ("topology", Json::from(topology.name())),
                            (
                                "nominal_worst_drop_v",
                                Json::from(sweep.nominal().worst_drop().value()),
                            ),
                            ("report", report.render_json()),
                        ],
                    )
                },
            );
        }
        Command::Serve {
            addr,
            workers,
            queue_depth,
            cache_size,
            max_batch,
            stdio,
        } => {
            let cfg = ServeConfig {
                workers,
                queue_depth,
                cache_capacity: cache_size,
                max_batch,
                ..ServeConfig::default()
            };
            if stdio {
                // One session over stdin/stdout: requests in, responses
                // out, ends on EOF or a shutdown request.
                serve::serve_lines(std::io::stdin().lock(), std::io::stdout(), &cfg)?;
            } else {
                let server = serve::Server::bind(&addr, cfg)?;
                eprintln!("vpd serve: listening on {}", server.local_addr()?);
                server.run()?;
            }
        }
        Command::Call {
            addr,
            requests,
            shutdown,
        } => {
            for line in serve::call(&addr, &requests, shutdown)? {
                println!("{line}");
            }
        }
        Command::Scenario { action, file, name } => {
            // Resolve the document text, then parse through the same
            // validator serve uses at admission — so `check` failures
            // print the exact stable diagnostic the wire carries.
            let (source, text): (String, String) = match (&file, &name) {
                (Some(path), None) => (
                    path.display().to_string(),
                    std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read {}: {e}", path.display()))?,
                ),
                (None, Some(n)) => (
                    format!("builtin {n}"),
                    scenario_builtin(n)
                        .ok_or_else(|| {
                            format!(
                                "unknown builtin scenario '{n}' (builtins: {})",
                                vertical_power_delivery::scenario::BUILTIN_NAMES.join(", ")
                            )
                        })?
                        .to_owned(),
                ),
                _ => unreachable!("parse enforces exactly one of --file/--name"),
            };
            let doc = ScenarioDoc::parse(&text).map_err(|e| format!("{source}: {e}"))?;
            let hash = format!("{:016x}", doc.content_hash());
            match action {
                ScenarioAction::Check => emit(
                    format,
                    || {
                        format!(
                            "ok: \"{}\" ({}, hash {hash})\n",
                            doc.name,
                            doc.architecture.name()
                        )
                    },
                    || {
                        command_json(
                            label,
                            [
                                ("action", Json::from("check")),
                                ("ok", Json::from(true)),
                                ("name", Json::from(doc.name.as_str())),
                                ("architecture", Json::from(doc.architecture.name())),
                                ("hash", Json::from(hash.as_str())),
                            ],
                        )
                    },
                ),
                ScenarioAction::Render => emit(
                    format,
                    || doc.render(),
                    || {
                        command_json(
                            label,
                            [
                                ("action", Json::from("render")),
                                ("name", Json::from(doc.name.as_str())),
                                ("hash", Json::from(hash.as_str())),
                                ("doc", Json::from(doc.render().as_str())),
                            ],
                        )
                    },
                ),
                ScenarioAction::Run => {
                    // Dispatch through the serve engine (cache disabled:
                    // one shot), so the JSON document is byte-identical
                    // to the served `scenario` result by construction.
                    let dispatcher = serve::Dispatcher::new(0);
                    let work = serve::Work::Scenario { doc: Box::new(doc) };
                    let (result, _) = dispatcher
                        .dispatch(&work)
                        .map_err(|(code, message)| format!("{}: {message}", code.as_str()))?;
                    emit(format, || render_scenario_text(&result), || result.clone());
                }
            }
        }
    }
    Ok(())
}

/// Builtin `.vpd` lookup, aliased so the `Command::Scenario` arm reads
/// cleanly.
fn scenario_builtin(name: &str) -> Option<&'static str> {
    vertical_power_delivery::scenario::builtin_doc(name)
}

/// Text rendering of a served `scenario` result document.
fn render_scenario_text(result: &Json) -> String {
    let s = |k: &str| result.get(k).and_then(Json::as_str).unwrap_or("?");
    let mut out = format!(
        "scenario \"{}\" — {} / {}, placement {} (hash {})\noverloaded: {}\n",
        s("name"),
        s("architecture"),
        s("topology"),
        s("placement"),
        s("hash"),
        result
            .get("overloaded")
            .and_then(Json::as_bool)
            .unwrap_or(false),
    );
    let section = |out: &mut String, title: &str, doc: &Json| {
        out.push_str(title);
        out.push('\n');
        if let Json::Object(pairs) = doc {
            for (k, v) in pairs {
                out.push_str(&format!("  {k}: {v}\n"));
            }
        }
    };
    if let Some(b) = result.get("breakdown") {
        section(&mut out, "breakdown:", b);
    }
    if let Some(c) = result.get("converter") {
        section(&mut out, "converter:", c);
    }
    if let Some(Json::Array(techs)) = result.get("techs") {
        out.push_str("techs:\n");
        for t in techs {
            out.push_str(&format!(
                "  {}: {} sites, {} µΩ/via\n",
                t.get("base").and_then(Json::as_str).unwrap_or("?"),
                t.get("sites").and_then(Json::as_i64).unwrap_or(0),
                t.get("via_resistance_uohm")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
            ));
        }
    }
    if let Some(f) = result.get("faults") {
        out.push_str(&format!(
            "faults: {}\n",
            f.get("mode").and_then(Json::as_str).unwrap_or("?")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, String> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        Command::parse(&owned)
    }

    fn parse_invocation(args: &[&str]) -> Result<Invocation, String> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        Invocation::parse(&owned)
    }

    #[test]
    fn parses_analyze_with_defaults() {
        let cmd = parse(&["analyze", "--arch", "a1"]).unwrap();
        match cmd {
            Command::Analyze {
                arch,
                topology,
                power_w,
                density,
            } => {
                assert_eq!(arch.name(), "A1");
                assert_eq!(topology, VrTopologyKind::Dsch);
                assert_eq!(power_w, 1000.0);
                assert_eq!(density, 2.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_two_stage_buses() {
        assert!(matches!(
            parse(&["analyze", "--arch", "a3-12"]).unwrap(),
            Command::Analyze {
                arch: Architecture::TwoStage { .. },
                ..
            }
        ));
        assert!(matches!(
            parse(&["droop", "--arch", "a0"]).unwrap(),
            Command::Droop {
                arch: Some(Architecture::Reference),
                sweep: false,
                ..
            }
        ));
    }

    #[test]
    fn parses_droop_sweeps() {
        assert_eq!(
            parse(&[
                "droop",
                "--arch",
                "a2",
                "--sweep",
                "--amps",
                "5",
                "--slews",
                "2",
                "--threads",
                "3"
            ])
            .unwrap(),
            Command::Droop {
                arch: Some(Architecture::InterposerEmbedded),
                sweep: true,
                amps: 5,
                slews: 2,
                threads: 3,
            }
        );
        assert!(matches!(
            parse(&["droop", "--arch", "all", "--sweep"]).unwrap(),
            Command::Droop {
                arch: None,
                sweep: true,
                amps: 4,
                slews: 3,
                threads: 0,
            }
        ));
        assert!(
            parse(&["droop", "--arch", "all"]).is_err(),
            "--arch all needs --sweep"
        );
    }

    #[test]
    fn rejects_unknown_inputs() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["analyze", "--arch", "a9"]).is_err());
        assert!(parse(&["analyze", "--arch", "a1", "--topology", "zeta"]).is_err());
        assert!(parse(&["analyze", "--arch", "a1", "--power", "lots"]).is_err());
        assert!(parse(&["analyze"]).is_err(), "--arch required");
        assert!(parse(&["sharing", "--placement", "sideways"]).is_err());
        assert!(parse(&["thermal", "--arch", "a2", "--tech", "sic"]).is_err());
    }

    #[test]
    fn parses_sharing_and_thermal() {
        assert_eq!(
            parse(&["sharing", "--placement", "below", "--modules", "24"]).unwrap(),
            Command::Sharing {
                placement: VrPlacement::BelowDie,
                modules: 24
            }
        );
        assert!(matches!(
            parse(&["thermal", "--arch", "a2", "--tech", "si"]).unwrap(),
            Command::Thermal {
                tech: DeviceTechnology::Si,
                ..
            }
        ));
    }

    #[test]
    fn parses_mc() {
        match parse(&["mc", "--arch", "a2", "--samples", "50", "--seed", "9"]).unwrap() {
            Command::Mc {
                arch,
                topology,
                samples,
                seed,
                threads,
            } => {
                assert_eq!(arch, Architecture::InterposerEmbedded);
                assert_eq!(topology, VrTopologyKind::Dsch);
                assert_eq!(samples, 50);
                assert_eq!(seed, 9);
                assert_eq!(threads, 0);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["mc"]).is_err(), "--arch required");
        assert!(parse(&["mc", "--arch", "a1", "--samples", "0"]).is_err());
    }

    #[test]
    fn parses_impedance_grid_flags() {
        let defaults = ImpedanceSweepSettings::default();
        match parse(&["impedance", "--arch", "a2"]).unwrap() {
            Command::Impedance {
                arch,
                fmin_hz,
                fmax_hz,
                points,
                profile,
            } => {
                assert_eq!(arch, Some(Architecture::InterposerEmbedded));
                assert_eq!(fmin_hz, defaults.fmin.value());
                assert_eq!(fmax_hz, defaults.fmax.value());
                assert_eq!(points, defaults.points);
                assert!(!profile);
            }
            other => panic!("{other:?}"),
        }
        match parse(&[
            "impedance",
            "--arch",
            "all",
            "--fmin",
            "1e4",
            "--fmax",
            "1e8",
            "--points",
            "64",
            "--profile",
        ])
        .unwrap()
        {
            Command::Impedance {
                arch,
                fmin_hz,
                fmax_hz,
                points,
                profile,
            } => {
                assert_eq!(arch, None);
                assert_eq!(fmin_hz, 1e4);
                assert_eq!(fmax_hz, 1e8);
                assert_eq!(points, 64);
                assert!(profile);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["impedance"]).is_err(), "--arch required");
        assert!(parse(&["impedance", "--arch", "a9"]).is_err());
        assert!(parse(&["impedance", "--arch", "a1", "--points", "many"]).is_err());
        // Bad grids parse fine and fail later with a typed solver error.
        assert!(parse(&["impedance", "--arch", "a1", "--points", "1"]).is_ok());
        assert!(parse(&["impedance", "--arch", "a1", "--fmin", "-3"]).is_ok());
    }

    #[test]
    fn bad_impedance_grids_error_instead_of_panicking() {
        for args in [
            ["impedance", "--arch", "a1", "--points", "1"].as_slice(),
            ["impedance", "--arch", "a1", "--points", "0"].as_slice(),
            ["impedance", "--arch", "a1", "--fmin", "-3"].as_slice(),
            ["impedance", "--arch", "a1", "--fmin", "0"].as_slice(),
            ["impedance", "--arch", "a1", "--fmax", "nan"].as_slice(),
            [
                "impedance",
                "--arch",
                "all",
                "--fmin",
                "1e9",
                "--fmax",
                "1e3",
            ]
            .as_slice(),
            ["impedance", "--arch", "a2", "--fmax", "inf"].as_slice(),
        ] {
            let cmd = parse(args).unwrap();
            let err = run(cmd, RenderFormat::Text).unwrap_err().to_string();
            assert!(err.contains("sweep"), "{args:?}: {err}");
        }
    }

    #[test]
    fn parses_faults_modes() {
        assert!(matches!(
            parse(&["faults", "--arch", "a2", "--n-minus-1"]).unwrap(),
            Command::Faults {
                arch: Architecture::InterposerEmbedded,
                random_k: None,
                ..
            }
        ));
        // N-1 is also the default mode.
        assert!(matches!(
            parse(&["faults", "--arch", "a1"]).unwrap(),
            Command::Faults { random_k: None, .. }
        ));
        match parse(&[
            "faults",
            "--arch",
            "a1",
            "--random-k",
            "3",
            "--count",
            "64",
            "--seed",
            "7",
        ])
        .unwrap()
        {
            Command::Faults {
                random_k,
                count,
                seed,
                ..
            } => {
                assert_eq!(random_k, Some(3));
                assert_eq!(count, 64);
                assert_eq!(seed, 7);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["faults"]).is_err(), "--arch required");
        assert!(parse(&["faults", "--arch", "a1", "--random-k", "three"]).is_err());
        assert!(parse(&["faults", "--arch", "a1", "--random-k", "0"]).is_err());
        assert!(parse(&["faults", "--arch", "a1", "--n-minus-1", "--random-k", "2"]).is_err());
    }

    #[test]
    fn parses_faults_dynamic_flag() {
        // The static sweep stays the default; --dynamic composes with
        // the existing scenario-selection flags.
        assert!(matches!(
            parse(&["faults", "--arch", "a1"]).unwrap(),
            Command::Faults { dynamic: false, .. }
        ));
        assert!(matches!(
            parse(&["faults", "--arch", "a2", "--dynamic"]).unwrap(),
            Command::Faults {
                arch: Architecture::InterposerEmbedded,
                dynamic: true,
                random_k: None,
                ..
            }
        ));
        match parse(&["faults", "--arch", "a1", "--dynamic", "--random-k", "2"]).unwrap() {
            Command::Faults {
                dynamic, random_k, ..
            } => {
                assert!(dynamic);
                assert_eq!(random_k, Some(2));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse(&["faults", "--arch", "a1", "--dynamic"])
                .unwrap()
                .label(),
            "faults"
        );
    }

    #[test]
    fn global_flags_parse_anywhere() {
        let inv = parse_invocation(&["--format", "json", "matrix"]).unwrap();
        assert_eq!(inv.format, RenderFormat::Json);
        assert_eq!(inv.command, Command::Matrix);
        assert_eq!(inv.metrics, None);

        // Globals are accepted after the subcommand too.
        let inv =
            parse_invocation(&["sharing", "--metrics", "m.ndjson", "--format", "text"]).unwrap();
        assert_eq!(inv.format, RenderFormat::Text);
        assert_eq!(inv.metrics, Some(PathBuf::from("m.ndjson")));
        assert!(matches!(inv.command, Command::Sharing { .. }));

        // Defaults: text, no metrics.
        let inv = parse_invocation(&["recommend"]).unwrap();
        assert_eq!(inv.format, RenderFormat::Text);
        assert_eq!(inv.metrics, None);
    }

    #[test]
    fn global_flags_reject_bad_values() {
        assert!(parse_invocation(&["--format", "yaml", "matrix"]).is_err());
        assert!(parse_invocation(&["matrix", "--format"]).is_err());
        assert!(parse_invocation(&["matrix", "--metrics"]).is_err());
    }

    #[test]
    fn command_labels_cover_every_variant() {
        assert_eq!(parse(&["matrix"]).unwrap().label(), "matrix");
        assert_eq!(parse(&["mc", "--arch", "a1"]).unwrap().label(), "mc");
        assert_eq!(
            parse(&["faults", "--arch", "a1"]).unwrap().label(),
            "faults"
        );
        assert_eq!(parse(&["serve"]).unwrap().label(), "serve");
        assert_eq!(parse(&["call", "--shutdown"]).unwrap().label(), "call");
        assert_eq!(parse(&["help"]).unwrap().label(), "help");
    }

    #[test]
    fn command_json_prepends_the_label() {
        let doc = command_json("analyze", [("x", Json::from(1.5))]);
        assert_eq!(doc.to_string(), r#"{"command":"analyze","x":1.5}"#);
        let empty = command_json("matrix", []);
        assert_eq!(empty.to_string(), r#"{"command":"matrix"}"#);
    }

    #[test]
    fn parses_serve_flags() {
        let defaults = ServeConfig::default();
        match parse(&["serve"]).unwrap() {
            Command::Serve {
                addr,
                workers,
                queue_depth,
                cache_size,
                max_batch,
                stdio,
            } => {
                assert_eq!(addr, DEFAULT_ADDR);
                assert_eq!(workers, defaults.workers);
                assert_eq!(queue_depth, defaults.queue_depth);
                assert_eq!(cache_size, defaults.cache_capacity);
                assert_eq!(max_batch, defaults.max_batch);
                assert!(!stdio);
            }
            other => panic!("{other:?}"),
        }
        match parse(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "4",
            "--queue-depth",
            "8",
            "--cache-size",
            "2",
            "--max-batch",
            "1",
            "--stdio",
        ])
        .unwrap()
        {
            Command::Serve {
                addr,
                workers,
                queue_depth,
                cache_size,
                max_batch,
                stdio,
            } => {
                assert_eq!(addr, "127.0.0.1:0");
                assert_eq!(workers, 4);
                assert_eq!(queue_depth, 8);
                assert_eq!(cache_size, 2);
                assert_eq!(max_batch, 1, "--max-batch 1 disables batching");
                assert!(stdio);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["serve", "--workers", "lots"]).is_err());
    }

    #[test]
    fn parses_call_with_repeated_requests() {
        match parse(&[
            "call",
            "--request",
            r#"{"kind":"ping"}"#,
            "--request",
            r#"{"kind":"stats"}"#,
        ])
        .unwrap()
        {
            Command::Call {
                addr,
                requests,
                shutdown,
            } => {
                assert_eq!(addr, DEFAULT_ADDR);
                assert_eq!(
                    requests,
                    vec![
                        r#"{"kind":"ping"}"#.to_owned(),
                        r#"{"kind":"stats"}"#.to_owned()
                    ]
                );
                assert!(!shutdown);
            }
            other => panic!("{other:?}"),
        }
        // --shutdown alone is a valid drain-only call.
        assert!(matches!(
            parse(&["call", "--shutdown"]).unwrap(),
            Command::Call { shutdown: true, .. }
        ));
        assert!(parse(&["call"]).is_err(), "needs a request or --shutdown");
        assert!(parse(&["call", "--request"]).is_err(), "dangling value");
    }

    #[test]
    fn parses_scenario_commands() {
        let cmd = parse(&["scenario", "check", "--name", "a2"]).unwrap();
        assert_eq!(
            cmd,
            Command::Scenario {
                action: ScenarioAction::Check,
                file: None,
                name: Some("a2".into()),
            }
        );
        assert_eq!(cmd.label(), "scenario");
        let cmd = parse(&["scenario", "run", "--file", "custom.vpd"]).unwrap();
        assert_eq!(
            cmd,
            Command::Scenario {
                action: ScenarioAction::Run,
                file: Some(PathBuf::from("custom.vpd")),
                name: None,
            }
        );
        assert!(matches!(
            parse(&["scenario", "render", "--name", "a0"]).unwrap(),
            Command::Scenario {
                action: ScenarioAction::Render,
                ..
            }
        ));
        assert!(parse(&["scenario"]).is_err(), "needs an action");
        assert!(parse(&["scenario", "frob", "--name", "a0"]).is_err());
        assert!(
            parse(&["scenario", "check"]).is_err(),
            "needs --file or --name"
        );
        assert!(
            parse(&["scenario", "check", "--file", "x.vpd", "--name", "a0"]).is_err(),
            "--file and --name are exclusive"
        );
    }

    #[test]
    fn help_variants() {
        for h in ["help", "--help", "-h"] {
            assert_eq!(parse(&[h]).unwrap(), Command::Help);
        }
    }
}
