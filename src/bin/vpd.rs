//! `vpd` — command-line front end for the vertical-power-delivery
//! models.
//!
//! ```sh
//! vpd analyze --arch a1 --topology dsch --power 1000
//! vpd matrix
//! vpd recommend
//! vpd sharing --placement below --modules 48
//! vpd mc --arch a2 --samples 200
//! vpd impedance --arch a2
//! vpd droop --arch a0
//! vpd thermal --arch a2 --tech si
//! vpd faults --arch a2 --n-minus-1
//! vpd --format json --metrics metrics.ndjson mc --arch a1
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use vertical_power_delivery::core::{
    compare_architectures, electro_thermal, explore_matrix, recommend, run_tolerance,
    simulate_droop, solve_sharing, ElectroThermalSettings, FaultScenario, FaultSweep,
    ImpedanceSweep, ImpedanceSweepSettings, LoadStep, McSettings, PdnModel,
};
use vertical_power_delivery::obs;
use vertical_power_delivery::prelude::*;
use vertical_power_delivery::report::Json;
use vertical_power_delivery::thermal::DeviceTechnology;
use vpd_units::Seconds;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let invocation = match Invocation::parse(&args) {
        Ok(inv) => inv,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if invocation.metrics.is_some() {
        obs::set_enabled(true);
    }
    let label = invocation.command.name();
    let outcome = run(invocation.command, invocation.format);
    if let Some(path) = &invocation.metrics {
        let snapshot = obs::snapshot();
        if let Err(e) = obs::append_ndjson(path, label, &snapshot) {
            eprintln!(
                "warning: could not write metrics to {}: {e}",
                path.display()
            );
        }
    }
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: vpd [--format <text|json>] [--metrics <path>] <command> [options]

global options:
  --format <text|json>  output format (default: text)
  --metrics <path>      record solver metrics and append one NDJSON
                        snapshot line per invocation to <path>

commands:
  analyze     --arch <a0|a1|a2|a3-12|a3-6> [--topology <dpmih|dsch|3lhd>]
              [--power <watts>] [--density <A/mm2>]
  matrix      full architecture x topology loss table
  recommend   designer ranking (no overload extrapolation)
  sharing     [--placement <periphery|below>] [--modules <n>]
  mc          --arch <a0|a1|a2|a3-12|a3-6> [--topology <dpmih|dsch|3lhd>]
              [--samples <n>] [--seed <s>] [--threads <n>]
  impedance   --arch <a0|a1|a2|a3-12|a3-6|all> [--fmin <hz>] [--fmax <hz>]
              [--points <n>] [--profile]
              (defaults: 200 points, 1 kHz – 1 GHz; --arch all compares
              A0/A1/A2 on one grid; --profile prints every swept point)
  droop       --arch <a0|a1|a2|a3-12|a3-6>
  thermal     --arch <a1|a2> [--tech <si|gan>]
  faults      --arch <a0|a1|a2|a3-12|a3-6> [--topology <dpmih|dsch|3lhd>]
              [--n-minus-1 | --random-k <k>] [--count <n>] [--seed <s>]
  help        print this message";

/// A full CLI invocation: global flags plus the subcommand.
#[derive(Clone, Debug, PartialEq)]
struct Invocation {
    command: Command,
    format: RenderFormat,
    metrics: Option<PathBuf>,
}

impl Invocation {
    /// Extracts the global `--format` / `--metrics` flags (accepted
    /// anywhere on the line) and parses the rest as a [`Command`].
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut format = RenderFormat::Text;
        let mut metrics = None;
        let mut rest = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--format" => {
                    let v = it.next().ok_or("--format expects text|json")?;
                    format = v.parse()?;
                }
                "--metrics" => {
                    let v = it.next().ok_or("--metrics expects a file path")?;
                    metrics = Some(PathBuf::from(v));
                }
                _ => rest.push(arg.clone()),
            }
        }
        Ok(Self {
            command: Command::parse(&rest)?,
            format,
            metrics,
        })
    }
}

/// A parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
enum Command {
    Analyze {
        arch: Architecture,
        topology: VrTopologyKind,
        power_w: f64,
        density: f64,
    },
    Matrix,
    Recommend,
    Sharing {
        placement: VrPlacement,
        modules: usize,
    },
    Mc {
        arch: Architecture,
        topology: VrTopologyKind,
        samples: usize,
        seed: u64,
        threads: usize,
    },
    Impedance {
        /// None = compare all single-stage architectures on one grid.
        arch: Option<Architecture>,
        fmin_hz: f64,
        fmax_hz: f64,
        points: usize,
        profile: bool,
    },
    Droop {
        arch: Architecture,
    },
    Thermal {
        arch: Architecture,
        tech: DeviceTechnology,
    },
    Faults {
        arch: Architecture,
        topology: VrTopologyKind,
        /// None = N-1 contingency; Some(k) = random scenarios of k
        /// simultaneous faults.
        random_k: Option<usize>,
        count: usize,
        seed: u64,
    },
    Help,
}

impl Command {
    /// The subcommand name, used as the metrics snapshot label.
    fn name(&self) -> &'static str {
        match self {
            Self::Analyze { .. } => "analyze",
            Self::Matrix => "matrix",
            Self::Recommend => "recommend",
            Self::Sharing { .. } => "sharing",
            Self::Mc { .. } => "mc",
            Self::Impedance { .. } => "impedance",
            Self::Droop { .. } => "droop",
            Self::Thermal { .. } => "thermal",
            Self::Faults { .. } => "faults",
            Self::Help => "help",
        }
    }

    fn parse(args: &[String]) -> Result<Self, String> {
        let mut it = args.iter();
        let cmd = it.next().ok_or("missing command")?;
        let rest: Vec<&String> = it.collect();
        let flag = |name: &str| -> Option<&str> {
            rest.iter()
                .position(|a| a.as_str() == name)
                .and_then(|i| rest.get(i + 1))
                .map(|s| s.as_str())
        };
        let parse_arch = |required: bool| -> Result<Architecture, String> {
            match flag("--arch") {
                Some("a0") => Ok(Architecture::Reference),
                Some("a1") => Ok(Architecture::InterposerPeriphery),
                Some("a2") => Ok(Architecture::InterposerEmbedded),
                Some("a3-12") => Ok(Architecture::TwoStage {
                    bus: Volts::new(12.0),
                }),
                Some("a3-6") => Ok(Architecture::TwoStage {
                    bus: Volts::new(6.0),
                }),
                Some(other) => Err(format!("unknown architecture '{other}'")),
                None if required => Err("--arch is required".into()),
                None => Ok(Architecture::InterposerPeriphery),
            }
        };
        let parse_topology = || -> Result<VrTopologyKind, String> {
            match flag("--topology") {
                Some("dpmih") => Ok(VrTopologyKind::Dpmih),
                Some("dsch") | None => Ok(VrTopologyKind::Dsch),
                Some("3lhd") => Ok(VrTopologyKind::ThreeLevelHybridDickson),
                Some(other) => Err(format!("unknown topology '{other}'")),
            }
        };
        let parse_f64 = |name: &str, default: f64| -> Result<f64, String> {
            match flag(name) {
                Some(v) => v
                    .parse::<f64>()
                    .map_err(|_| format!("{name} expects a number, got '{v}'")),
                None => Ok(default),
            }
        };
        match cmd.as_str() {
            "analyze" => Ok(Self::Analyze {
                arch: parse_arch(true)?,
                topology: parse_topology()?,
                power_w: parse_f64("--power", 1000.0)?,
                density: parse_f64("--density", 2.0)?,
            }),
            "matrix" => Ok(Self::Matrix),
            "recommend" => Ok(Self::Recommend),
            "sharing" => {
                let placement = match flag("--placement") {
                    Some("periphery") | None => VrPlacement::Periphery,
                    Some("below") => VrPlacement::BelowDie,
                    Some(other) => return Err(format!("unknown placement '{other}'")),
                };
                let modules = parse_f64("--modules", 48.0)? as usize;
                Ok(Self::Sharing { placement, modules })
            }
            "mc" => {
                let samples = parse_f64("--samples", 200.0)? as usize;
                if samples == 0 {
                    return Err("--samples must be at least 1".into());
                }
                Ok(Self::Mc {
                    arch: parse_arch(true)?,
                    topology: parse_topology()?,
                    samples,
                    seed: parse_f64("--seed", 0x5eed as f64)? as u64,
                    threads: parse_f64("--threads", 0.0)? as usize,
                })
            }
            "impedance" => {
                let arch = match flag("--arch") {
                    Some("all") => None,
                    _ => Some(parse_arch(true)?),
                };
                let defaults = ImpedanceSweepSettings::default();
                // Bounds and point counts are validated downstream by
                // the checked sweep builder, so every bad value becomes
                // a typed error instead of a panic.
                Ok(Self::Impedance {
                    arch,
                    fmin_hz: parse_f64("--fmin", defaults.fmin.value())?,
                    fmax_hz: parse_f64("--fmax", defaults.fmax.value())?,
                    points: parse_f64("--points", defaults.points as f64)? as usize,
                    profile: rest.iter().any(|a| a.as_str() == "--profile"),
                })
            }
            "droop" => Ok(Self::Droop {
                arch: parse_arch(true)?,
            }),
            "thermal" => {
                let tech = match flag("--tech") {
                    Some("si") => DeviceTechnology::Si,
                    Some("gan") | None => DeviceTechnology::GaN,
                    Some(other) => return Err(format!("unknown technology '{other}'")),
                };
                Ok(Self::Thermal {
                    arch: parse_arch(true)?,
                    tech,
                })
            }
            "faults" => {
                let n_minus_1 = rest.iter().any(|a| a.as_str() == "--n-minus-1");
                let random_k = match flag("--random-k") {
                    Some(v) => Some(
                        v.parse::<usize>()
                            .map_err(|_| format!("--random-k expects a count, got '{v}'"))?,
                    ),
                    None => None,
                };
                if n_minus_1 && random_k.is_some() {
                    return Err("--n-minus-1 and --random-k are mutually exclusive".into());
                }
                if random_k == Some(0) {
                    return Err("--random-k must be at least 1".into());
                }
                Ok(Self::Faults {
                    arch: parse_arch(true)?,
                    topology: parse_topology()?,
                    random_k,
                    count: parse_f64("--count", 32.0)? as usize,
                    seed: parse_f64("--seed", 64023.0)? as u64,
                })
            }
            "help" | "--help" | "-h" => Ok(Self::Help),
            other => Err(format!("unknown command '{other}'")),
        }
    }
}

/// Prints one document: the text rendering, or the context-wrapped JSON.
fn emit(format: RenderFormat, text: impl FnOnce() -> String, json: impl FnOnce() -> Json) {
    match format {
        RenderFormat::Text => print!("{}", text()),
        RenderFormat::Json => println!("{}", json()),
    }
}

fn run(cmd: Command, format: RenderFormat) -> Result<(), Box<dyn std::error::Error>> {
    let calib = Calibration::paper_default();
    match cmd {
        Command::Help => println!("{USAGE}"),
        Command::Analyze {
            arch,
            topology,
            power_w,
            density,
        } => {
            let spec = SystemSpec::new(
                Volts::new(48.0),
                Volts::new(1.0),
                Watts::new(power_w),
                CurrentDensity::from_amps_per_square_millimeter(density),
            )?;
            let report = analyze(arch, topology, &spec, &calib, &AnalysisOptions::default())?;
            emit(
                format,
                || {
                    format!(
                        "{} / {} at {:.0} W, {:.1} A/mm² (die {:.0} mm²)\n{}",
                        arch.name(),
                        topology,
                        power_w,
                        density,
                        spec.die_area().as_square_millimeters(),
                        report.breakdown.render_text(),
                    )
                },
                || {
                    Json::obj([
                        ("command", Json::from("analyze")),
                        ("architecture", Json::from(arch.name())),
                        ("topology", Json::from(topology.name())),
                        ("power_w", Json::from(power_w)),
                        ("density_a_per_mm2", Json::from(density)),
                        (
                            "die_area_mm2",
                            Json::from(spec.die_area().as_square_millimeters()),
                        ),
                        ("overloaded", Json::from(report.overloaded)),
                        ("breakdown", report.breakdown.render_json()),
                    ])
                },
            );
        }
        Command::Matrix => {
            let spec = SystemSpec::paper_default();
            let entries = explore_matrix(
                &VrTopologyKind::ALL,
                &spec,
                &calib,
                &AnalysisOptions::default(),
            );
            emit(
                format,
                || {
                    let mut out = String::new();
                    for e in &entries {
                        match &e.outcome {
                            Ok(r) => out.push_str(&format!(
                                "{:<8} {:<6} {:>5.1}%{}\n",
                                e.architecture.name(),
                                e.topology.name(),
                                r.loss_percent(),
                                if r.overloaded { "  [extrapolated]" } else { "" }
                            )),
                            Err(err) => out.push_str(&format!(
                                "{:<8} {:<6} excluded: {err}\n",
                                e.architecture.name(),
                                e.topology.name()
                            )),
                        }
                    }
                    out
                },
                || {
                    Json::obj([
                        ("command", Json::from("matrix")),
                        (
                            "entries",
                            Json::array(entries.iter().map(|e| {
                                let mut pairs = vec![
                                    ("architecture".to_owned(), Json::from(e.architecture.name())),
                                    ("topology".to_owned(), Json::from(e.topology.name())),
                                ];
                                match &e.outcome {
                                    Ok(r) => {
                                        pairs.push((
                                            "loss_percent".to_owned(),
                                            Json::from(r.loss_percent()),
                                        ));
                                        pairs.push((
                                            "overloaded".to_owned(),
                                            Json::from(r.overloaded),
                                        ));
                                    }
                                    Err(err) => pairs
                                        .push(("excluded".to_owned(), Json::from(err.to_string()))),
                                }
                                Json::Object(pairs)
                            })),
                        ),
                    ])
                },
            );
        }
        Command::Recommend => {
            let rec = recommend(&SystemSpec::paper_default(), &calib);
            emit(
                format,
                || {
                    let mut out = String::new();
                    for (i, c) in rec.ranked.iter().enumerate() {
                        out.push_str(&format!("#{}: {}\n", i + 1, c.rationale));
                    }
                    for (a, t, e) in &rec.rejected {
                        out.push_str(&format!("rejected {}/{t}: {e}\n", a.name()));
                    }
                    out
                },
                || {
                    Json::obj([
                        ("command", Json::from("recommend")),
                        (
                            "ranked",
                            Json::array(rec.ranked.iter().map(|c| {
                                Json::obj([
                                    ("architecture", Json::from(c.architecture.name())),
                                    ("topology", Json::from(c.topology.name())),
                                    ("loss_percent", Json::from(c.report.loss_percent())),
                                    ("rationale", Json::from(c.rationale.as_str())),
                                ])
                            })),
                        ),
                        (
                            "rejected",
                            Json::array(rec.rejected.iter().map(|(a, t, e)| {
                                Json::obj([
                                    ("architecture", Json::from(a.name())),
                                    ("topology", Json::from(t.name())),
                                    ("error", Json::from(e.to_string())),
                                ])
                            })),
                        ),
                    ])
                },
            );
        }
        Command::Sharing { placement, modules } => {
            let rep = solve_sharing(&SystemSpec::paper_default(), &calib, placement, modules)?;
            emit(
                format,
                || format!("{modules} modules {placement}: {}", rep.render_text()),
                || {
                    Json::obj([
                        ("command", Json::from("sharing")),
                        ("placement", Json::from(placement.to_string())),
                        ("report", rep.render_json()),
                    ])
                },
            );
        }
        Command::Mc {
            arch,
            topology,
            samples,
            seed,
            threads,
        } => {
            let settings = McSettings {
                samples,
                seed,
                threads,
                ..McSettings::default()
            };
            let summary = run_tolerance(
                arch,
                topology,
                &SystemSpec::paper_default(),
                &calib,
                &settings,
            )?;
            emit(
                format,
                || {
                    format!(
                        "{} / {topology}: {samples} samples (seed {seed}): {}",
                        arch.name(),
                        summary.render_text(),
                    )
                },
                || {
                    Json::obj([
                        ("command", Json::from("mc")),
                        ("architecture", Json::from(arch.name())),
                        ("topology", Json::from(topology.name())),
                        ("samples", Json::from(samples)),
                        ("seed", Json::from(i64::try_from(seed).unwrap_or(i64::MAX))),
                        ("summary", summary.render_json()),
                    ])
                },
            );
        }
        Command::Impedance {
            arch,
            fmin_hz,
            fmax_hz,
            points,
            profile,
        } => {
            let spec = SystemSpec::paper_default();
            let settings = ImpedanceSweepSettings {
                fmin: Hertz::new(fmin_hz),
                fmax: Hertz::new(fmax_hz),
                points,
                threads: 0,
            };
            match arch {
                None => {
                    let cmp = compare_architectures(
                        &[
                            Architecture::Reference,
                            Architecture::InterposerPeriphery,
                            Architecture::InterposerEmbedded,
                        ],
                        &spec,
                        &settings,
                    )?;
                    emit(
                        format,
                        || {
                            format!(
                                "impedance comparison, {points} points {} – {}:\n{}",
                                Hertz::new(fmin_hz),
                                Hertz::new(fmax_hz),
                                cmp.render_text()
                            )
                        },
                        || {
                            Json::obj([
                                ("command", Json::from("impedance")),
                                ("points", Json::from(points)),
                                ("fmin_hz", Json::from(fmin_hz)),
                                ("fmax_hz", Json::from(fmax_hz)),
                                ("comparison", cmp.render_json()),
                            ])
                        },
                    );
                }
                Some(arch) => {
                    let rep = ImpedanceSweep::for_architecture(arch, &spec)?.run(&settings)?;
                    if profile {
                        emit(
                            format,
                            || rep.render_text(),
                            || {
                                Json::obj([
                                    ("command", Json::from("impedance")),
                                    ("report", rep.render_json()),
                                ])
                            },
                        );
                    } else {
                        emit(
                            format,
                            || {
                                format!(
                                    "{}: peak |Z| = {} at {} vs target {} → {}\n",
                                    rep.label,
                                    rep.peak,
                                    rep.peak_frequency,
                                    rep.target,
                                    if rep.meets_target() {
                                        "meets target"
                                    } else {
                                        "violates target"
                                    }
                                )
                            },
                            || {
                                Json::obj([
                                    ("command", Json::from("impedance")),
                                    ("architecture", Json::from(rep.label.as_str())),
                                    ("points", Json::from(points)),
                                    ("peak_impedance_ohm", Json::from(rep.peak.value())),
                                    ("peak_frequency_hz", Json::from(rep.peak_frequency.value())),
                                    ("target_ohm", Json::from(rep.target.value())),
                                    ("margin", Json::from(rep.margin())),
                                    ("meets_target", Json::from(rep.meets_target())),
                                ])
                            },
                        );
                    }
                }
            }
        }
        Command::Droop { arch } => {
            let spec = SystemSpec::paper_default();
            let report = simulate_droop(
                &PdnModel::for_architecture(arch),
                &LoadStep::paper_default(&spec),
                Seconds::from_microseconds(60.0),
                Seconds::from_nanoseconds(10.0),
            )?;
            emit(
                format,
                || {
                    format!(
                        "{}: 250 A → 1 kA step: {}",
                        arch.name(),
                        report.render_text()
                    )
                },
                || {
                    Json::obj([
                        ("command", Json::from("droop")),
                        ("architecture", Json::from(arch.name())),
                        ("report", report.render_json()),
                    ])
                },
            );
        }
        Command::Thermal { arch, tech } => {
            let settings = ElectroThermalSettings {
                technology: tech,
                ..ElectroThermalSettings::default()
            };
            let r = electro_thermal(
                arch,
                VrTopologyKind::Dsch,
                &SystemSpec::paper_default(),
                &calib,
                &AnalysisOptions::default(),
                &settings,
            )?;
            emit(
                format,
                || {
                    format!(
                        "{} ({tech:?}): worst module {:.0} °C, VR loss {:.0} W → {:.0} W (+{:.1} W), within rating: {}\n",
                        arch.name(),
                        r.worst_module_temperature.value(),
                        r.nominal_conversion_loss.value(),
                        r.derated_conversion_loss.value(),
                        r.thermal_penalty().value(),
                        r.modules_within_rating
                    )
                },
                || {
                    Json::obj([
                        ("command", Json::from("thermal")),
                        ("architecture", Json::from(arch.name())),
                        ("technology", Json::from(format!("{tech:?}"))),
                        (
                            "worst_module_temperature_c",
                            Json::from(r.worst_module_temperature.value()),
                        ),
                        (
                            "nominal_conversion_loss_w",
                            Json::from(r.nominal_conversion_loss.value()),
                        ),
                        (
                            "derated_conversion_loss_w",
                            Json::from(r.derated_conversion_loss.value()),
                        ),
                        ("thermal_penalty_w", Json::from(r.thermal_penalty().value())),
                        ("within_rating", Json::from(r.modules_within_rating)),
                    ])
                },
            );
        }
        Command::Faults {
            arch,
            topology,
            random_k,
            count,
            seed,
        } => {
            let sweep = FaultSweep::new(arch, topology, &SystemSpec::paper_default(), &calib)?;
            let scenarios = match random_k {
                None => FaultScenario::n_minus_1(sweep.vr_count()),
                Some(k) => {
                    FaultScenario::random_k(k, count, seed, sweep.vr_count(), sweep.grid_side())
                }
            };
            let label = match random_k {
                None => format!("N-1 over {} modules", sweep.vr_count()),
                Some(k) => format!("{count} random {k}-fault scenarios (seed {seed})"),
            };
            let report = sweep.run(&scenarios, 0)?;
            emit(
                format,
                || {
                    format!(
                        "{} / {topology}: {label}\n  nominal:  worst drop {}, spread {:.2}x\n{}",
                        arch.name(),
                        sweep.nominal().worst_drop(),
                        sweep.nominal().max().value() / sweep.nominal().mean().value(),
                        report.render_text(),
                    )
                },
                || {
                    Json::obj([
                        ("command", Json::from("faults")),
                        ("mode", Json::from(label.as_str())),
                        ("topology", Json::from(topology.name())),
                        (
                            "nominal_worst_drop_v",
                            Json::from(sweep.nominal().worst_drop().value()),
                        ),
                        ("report", report.render_json()),
                    ])
                },
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, String> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        Command::parse(&owned)
    }

    fn parse_invocation(args: &[&str]) -> Result<Invocation, String> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        Invocation::parse(&owned)
    }

    #[test]
    fn parses_analyze_with_defaults() {
        let cmd = parse(&["analyze", "--arch", "a1"]).unwrap();
        match cmd {
            Command::Analyze {
                arch,
                topology,
                power_w,
                density,
            } => {
                assert_eq!(arch.name(), "A1");
                assert_eq!(topology, VrTopologyKind::Dsch);
                assert_eq!(power_w, 1000.0);
                assert_eq!(density, 2.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_two_stage_buses() {
        assert!(matches!(
            parse(&["analyze", "--arch", "a3-12"]).unwrap(),
            Command::Analyze {
                arch: Architecture::TwoStage { .. },
                ..
            }
        ));
        assert!(matches!(
            parse(&["droop", "--arch", "a0"]).unwrap(),
            Command::Droop {
                arch: Architecture::Reference
            }
        ));
    }

    #[test]
    fn rejects_unknown_inputs() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["analyze", "--arch", "a9"]).is_err());
        assert!(parse(&["analyze", "--arch", "a1", "--topology", "zeta"]).is_err());
        assert!(parse(&["analyze", "--arch", "a1", "--power", "lots"]).is_err());
        assert!(parse(&["analyze"]).is_err(), "--arch required");
        assert!(parse(&["sharing", "--placement", "sideways"]).is_err());
        assert!(parse(&["thermal", "--arch", "a2", "--tech", "sic"]).is_err());
    }

    #[test]
    fn parses_sharing_and_thermal() {
        assert_eq!(
            parse(&["sharing", "--placement", "below", "--modules", "24"]).unwrap(),
            Command::Sharing {
                placement: VrPlacement::BelowDie,
                modules: 24
            }
        );
        assert!(matches!(
            parse(&["thermal", "--arch", "a2", "--tech", "si"]).unwrap(),
            Command::Thermal {
                tech: DeviceTechnology::Si,
                ..
            }
        ));
    }

    #[test]
    fn parses_mc() {
        match parse(&["mc", "--arch", "a2", "--samples", "50", "--seed", "9"]).unwrap() {
            Command::Mc {
                arch,
                topology,
                samples,
                seed,
                threads,
            } => {
                assert_eq!(arch, Architecture::InterposerEmbedded);
                assert_eq!(topology, VrTopologyKind::Dsch);
                assert_eq!(samples, 50);
                assert_eq!(seed, 9);
                assert_eq!(threads, 0);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["mc"]).is_err(), "--arch required");
        assert!(parse(&["mc", "--arch", "a1", "--samples", "0"]).is_err());
    }

    #[test]
    fn parses_impedance_grid_flags() {
        let defaults = ImpedanceSweepSettings::default();
        match parse(&["impedance", "--arch", "a2"]).unwrap() {
            Command::Impedance {
                arch,
                fmin_hz,
                fmax_hz,
                points,
                profile,
            } => {
                assert_eq!(arch, Some(Architecture::InterposerEmbedded));
                assert_eq!(fmin_hz, defaults.fmin.value());
                assert_eq!(fmax_hz, defaults.fmax.value());
                assert_eq!(points, defaults.points);
                assert!(!profile);
            }
            other => panic!("{other:?}"),
        }
        match parse(&[
            "impedance",
            "--arch",
            "all",
            "--fmin",
            "1e4",
            "--fmax",
            "1e8",
            "--points",
            "64",
            "--profile",
        ])
        .unwrap()
        {
            Command::Impedance {
                arch,
                fmin_hz,
                fmax_hz,
                points,
                profile,
            } => {
                assert_eq!(arch, None);
                assert_eq!(fmin_hz, 1e4);
                assert_eq!(fmax_hz, 1e8);
                assert_eq!(points, 64);
                assert!(profile);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["impedance"]).is_err(), "--arch required");
        assert!(parse(&["impedance", "--arch", "a9"]).is_err());
        assert!(parse(&["impedance", "--arch", "a1", "--points", "many"]).is_err());
        // Bad grids parse fine and fail later with a typed solver error.
        assert!(parse(&["impedance", "--arch", "a1", "--points", "1"]).is_ok());
        assert!(parse(&["impedance", "--arch", "a1", "--fmin", "-3"]).is_ok());
    }

    #[test]
    fn bad_impedance_grids_error_instead_of_panicking() {
        for args in [
            ["impedance", "--arch", "a1", "--points", "1"].as_slice(),
            ["impedance", "--arch", "a1", "--points", "0"].as_slice(),
            ["impedance", "--arch", "a1", "--fmin", "-3"].as_slice(),
            ["impedance", "--arch", "a1", "--fmin", "0"].as_slice(),
            ["impedance", "--arch", "a1", "--fmax", "nan"].as_slice(),
            [
                "impedance",
                "--arch",
                "all",
                "--fmin",
                "1e9",
                "--fmax",
                "1e3",
            ]
            .as_slice(),
            ["impedance", "--arch", "a2", "--fmax", "inf"].as_slice(),
        ] {
            let cmd = parse(args).unwrap();
            let err = run(cmd, RenderFormat::Text).unwrap_err().to_string();
            assert!(err.contains("sweep"), "{args:?}: {err}");
        }
    }

    #[test]
    fn parses_faults_modes() {
        assert!(matches!(
            parse(&["faults", "--arch", "a2", "--n-minus-1"]).unwrap(),
            Command::Faults {
                arch: Architecture::InterposerEmbedded,
                random_k: None,
                ..
            }
        ));
        // N-1 is also the default mode.
        assert!(matches!(
            parse(&["faults", "--arch", "a1"]).unwrap(),
            Command::Faults { random_k: None, .. }
        ));
        match parse(&[
            "faults",
            "--arch",
            "a1",
            "--random-k",
            "3",
            "--count",
            "64",
            "--seed",
            "7",
        ])
        .unwrap()
        {
            Command::Faults {
                random_k,
                count,
                seed,
                ..
            } => {
                assert_eq!(random_k, Some(3));
                assert_eq!(count, 64);
                assert_eq!(seed, 7);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["faults"]).is_err(), "--arch required");
        assert!(parse(&["faults", "--arch", "a1", "--random-k", "three"]).is_err());
        assert!(parse(&["faults", "--arch", "a1", "--random-k", "0"]).is_err());
        assert!(parse(&["faults", "--arch", "a1", "--n-minus-1", "--random-k", "2"]).is_err());
    }

    #[test]
    fn global_flags_parse_anywhere() {
        let inv = parse_invocation(&["--format", "json", "matrix"]).unwrap();
        assert_eq!(inv.format, RenderFormat::Json);
        assert_eq!(inv.command, Command::Matrix);
        assert_eq!(inv.metrics, None);

        // Globals are accepted after the subcommand too.
        let inv =
            parse_invocation(&["sharing", "--metrics", "m.ndjson", "--format", "text"]).unwrap();
        assert_eq!(inv.format, RenderFormat::Text);
        assert_eq!(inv.metrics, Some(PathBuf::from("m.ndjson")));
        assert!(matches!(inv.command, Command::Sharing { .. }));

        // Defaults: text, no metrics.
        let inv = parse_invocation(&["recommend"]).unwrap();
        assert_eq!(inv.format, RenderFormat::Text);
        assert_eq!(inv.metrics, None);
    }

    #[test]
    fn global_flags_reject_bad_values() {
        assert!(parse_invocation(&["--format", "yaml", "matrix"]).is_err());
        assert!(parse_invocation(&["matrix", "--format"]).is_err());
        assert!(parse_invocation(&["matrix", "--metrics"]).is_err());
    }

    #[test]
    fn command_names_cover_every_variant() {
        assert_eq!(parse(&["matrix"]).unwrap().name(), "matrix");
        assert_eq!(parse(&["mc", "--arch", "a1"]).unwrap().name(), "mc");
        assert_eq!(parse(&["faults", "--arch", "a1"]).unwrap().name(), "faults");
        assert_eq!(parse(&["help"]).unwrap().name(), "help");
    }

    #[test]
    fn help_variants() {
        for h in ["help", "--help", "-h"] {
            assert_eq!(parse(&[h]).unwrap(), Command::Help);
        }
    }
}
