//! `vertical-power-delivery` — a Rust reproduction of *"Vertical Power
//! Delivery for Emerging Packaging and Integration Platforms — Power
//! Conversion and Distribution"* (Krishnakumar & Partin-Vaisband,
//! IEEE SOCC 2023).
//!
//! This facade re-exports the workspace crates under one roof:
//!
//! * [`units`] — strongly-typed electrical/geometric quantities;
//! * [`numeric`] — dense/sparse linear algebra (LU, Cholesky, CG);
//! * [`circuit`] — netlists, MNA DC solves, power-grid meshes,
//!   transient simulation;
//! * [`package`] — Table I interconnect technologies and via
//!   allocation;
//! * [`devices`] — Si/GaN transistors, inductors, capacitors;
//! * [`converters`] — DSCH / DPMIH / 3LHD converter models and SC
//!   output-impedance theory;
//! * [`thermal`] — steady-state thermal meshes and device derating;
//! * [`core`] — the architectures `A0`–`A3`, current sharing, loss
//!   breakdowns, PDN impedance, electro-thermal co-analysis,
//!   exploration, placement optimization, Monte-Carlo;
//! * [`report`] — tables/charts/CSV/JSON and the [`report::Render`]
//!   contract for the experiment harness;
//! * [`serve`] — the concurrent NDJSON analysis service with a
//!   compiled-plan scenario cache (`vpd serve` / `vpd call`);
//! * [`obs`] — the std-only observability layer: solver metrics
//!   (counters, gauges, histograms), timing spans, and NDJSON snapshot
//!   export, off by default and enabled by the CLI's `--metrics` flag.
//!
//! # Quickstart
//!
//! ```
//! use vertical_power_delivery::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = SystemSpec::paper_default();
//! let calib = Calibration::paper_default();
//! let report = analyze(
//!     Architecture::InterposerPeriphery,
//!     VrTopologyKind::Dsch,
//!     &spec,
//!     &calib,
//!     &AnalysisOptions::default(),
//! )?;
//! println!(
//!     "A1/DSCH delivers 1 kW at {:.1}% end-to-end efficiency",
//!     report.breakdown.end_to_end_efficiency().percent()
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vpd_circuit as circuit;
pub use vpd_converters as converters;
pub use vpd_core as core;
pub use vpd_devices as devices;
pub use vpd_numeric as numeric;
pub use vpd_obs as obs;
pub use vpd_package as package;
pub use vpd_report as report;
pub use vpd_scenario as scenario;
pub use vpd_serve as serve;
pub use vpd_thermal as thermal;
pub use vpd_units as units;

/// The most common imports in one place.
pub mod prelude {
    pub use vpd_converters::{Converter, MultiStageConverter, VrTopologyKind};
    pub use vpd_core::{
        analyze, recommend, solve_sharing, AnalysisOptions, Architecture, Calibration, CoreError,
        PowerMap, SystemSpec, VrPlacement,
    };
    pub use vpd_package::InterconnectTech;
    pub use vpd_report::{Render, RenderFormat};
    pub use vpd_units::{
        Amps, CurrentDensity, Efficiency, Farads, Henries, Hertz, Ohms, Seconds, SquareMeters,
        Volts, Watts,
    };
}
